"""Legacy setup shim.

The execution environment has setuptools but no ``wheel`` package, so
PEP 517 editable installs fail with "invalid command 'bdist_wheel'".
This shim lets ``pip install -e . --no-build-isolation --no-use-pep517``
take the classic ``setup.py develop`` path; all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
