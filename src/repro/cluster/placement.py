"""Catalog partitioning across shards, with optional hot-title replication.

The placement problem is Viennot et al.'s: split a movie catalog over
``N`` independent servers so that load balances and popular titles do
not bottleneck on a single machine.  The partitioner here is the
deterministic core of their practical algorithms:

* **primary placement** — greedy least-loaded by track count, walking
  the catalog in insertion order with ties broken toward the lowest
  shard id.  Insertion order is canonical catalog order everywhere in
  this repo, so the result is a pure function of the catalog;
* **hot-title replication** — the ``replicate_top_k`` hottest titles
  (by catalog popularity weight) each gain extra copies on other
  shards, giving the router a least-loaded-copy choice exactly where
  skewed demand needs one.  Replica shards are drawn from the
  ``cluster-placement`` named RNG stream, so the layout is fully
  determined by ``(catalog, shards, k, seed)`` — the Markov-chain
  replication strategies of arXiv:0912.1011 motivate the knob; dynamic
  re-replication stays out of scope (ROADMAP item 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.media.catalog import Catalog
from repro.media.objects import MediaObject
from repro.sim.rng import RandomSource


@dataclass(frozen=True)
class ShardPlacement:
    """Which shards hold which objects.

    ``copies`` maps object name to the shard ids holding it, primary
    first; ``names`` lists each shard's objects in catalog insertion
    order (the order its per-shard catalog is built in).
    """

    shards: int
    copies: dict[str, tuple[int, ...]]
    names: tuple[tuple[str, ...], ...]

    def holders(self, name: str) -> tuple[int, ...]:
        """Shard ids holding ``name``, primary first (KeyError if absent)."""
        return self.copies[name]

    def objects_for(self, shard: int,
                    catalog: Catalog) -> tuple[MediaObject, ...]:
        """The shard's catalog slice, in master-catalog insertion order."""
        return tuple(catalog.get(name) for name in self.names[shard])

    def replicated(self) -> tuple[str, ...]:
        """Names held by more than one shard, in catalog order."""
        return tuple(name for name, holders in self.copies.items()
                     if len(holders) > 1)


def partition_catalog(catalog: Catalog, shards: int,
                      replicate_top_k: int = 0, seed: int = 0,
                      replicas: int = 1) -> ShardPlacement:
    """Place a catalog onto ``shards`` shards (see module docstring).

    ``replicate_top_k`` titles (hottest first) each get ``replicas``
    extra copies on distinct shards drawn from the ``cluster-placement``
    stream; ``replicas`` saturates at ``shards - 1`` (a copy on every
    shard).
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if replicate_top_k < 0:
        raise ValueError(
            f"replicate_top_k must be >= 0, got {replicate_top_k}")
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    if len(catalog) < shards:
        raise ValueError(
            f"catalog has {len(catalog)} objects — cannot populate "
            f"{shards} shards")
    copies: dict[str, list[int]] = {}
    load = [0] * shards
    for obj in catalog:
        primary = min(range(shards), key=lambda s: (load[s], s))
        copies[obj.name] = [primary]
        load[primary] += obj.num_tracks
    if replicate_top_k and shards > 1:
        rng = RandomSource(seed)
        # Hottest first; insertion rank breaks weight ties so the order
        # is total and deterministic.
        ranked = sorted(
            enumerate(catalog.names()),
            key=lambda pair: (-catalog.popularity(pair[1]), pair[0]))
        for _, name in ranked[:replicate_top_k]:
            tracks = catalog.get(name).num_tracks
            for _ in range(min(replicas, shards - 1)):
                candidates = [s for s in range(shards)
                              if s not in copies[name]]
                if not candidates:
                    break
                pick = candidates[rng.integers("cluster-placement", 0,
                                               len(candidates))]
                copies[name].append(pick)
                load[pick] += tracks
    names: list[list[str]] = [[] for _ in range(shards)]
    for name in catalog.names():
        for shard in copies[name]:
            names[shard].append(name)
    return ShardPlacement(
        shards=shards,
        copies={name: tuple(holders) for name, holders in copies.items()},
        names=tuple(tuple(held) for held in names),
    )
