"""Drive N shards through the session pool; fold one ClusterReport.

The run alternates **routing barriers** (parent process: dispatch the
next trace window via :class:`~repro.cluster.router.ClusterRouter`) with
**shard windows** (session pool: every shard advances to the barrier
cycle in its own long-lived worker).  The shard servers are built once —
inside their workers, from frozen specs — and stepped in place, which is
what :class:`repro.parallel.SessionPool` exists for; per window, only
batch dicts go out and four-integer :class:`WindowResult` tuples come
back.

Determinism: every seed derives from ``spec.seed`` via
``SeedSequence.spawn`` *before* any process starts, routing happens
parent-side from barrier feedback that is identical for any worker
count, and the pool returns results in session order — so ``workers=1``
and ``workers=N`` produce bit-identical cluster metrics, which
:meth:`ClusterReport.digest` turns into a comparable fingerprint.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Optional

from repro.cluster.placement import ShardPlacement, partition_catalog
from repro.cluster.router import ClusterRouter
from repro.cluster.shard import (
    SLOTS_PER_DISK,
    ShardFault,
    ShardSpec,
    finalise_shard,
    init_shard,
    run_shard_window,
    shard_params,
)
from repro.media.catalog import Catalog
from repro.media.objects import MediaObject
from repro.parallel import SessionPool, TaskSpec, derive_seeds
from repro.sched.config import SchedulerConfig
from repro.schemes import Scheme
from repro.server.admission import cluster_capacity
from repro.server.metrics import SimulationReport
from repro.workload.compiler import CompiledTrace, compile_trace
from repro.workload.generator import WorkloadGenerator


@dataclass(frozen=True)
class ClusterFault:
    """A scripted disk fault addressed to one shard of the cluster."""

    shard: int
    cycle: int
    disk_id: int
    mid_cycle: bool = False
    repair_cycle: Optional[int] = None

    def __post_init__(self) -> None:
        if self.shard < 0:
            raise ValueError(f"shard must be >= 0, got {self.shard}")

    def local(self) -> ShardFault:
        """The shard-local view of this fault."""
        return ShardFault(self.cycle, self.disk_id, self.mid_cycle,
                          self.repair_cycle)


@dataclass(frozen=True)
class ClusterSpec:
    """One cluster experiment, fully determined by its fields.

    ``objects`` defaults to one per parity group cluster-wide (the
    scale-grid convention); ``arrivals_per_cycle`` is the cluster-wide
    Poisson rate; ``window`` is the routing-barrier interval in cycles.
    """

    scheme: Scheme
    shards: int
    disks_per_shard: int
    parity_group_size: int = 5
    objects: Optional[int] = None
    tracks_per_object: int = 100
    slots_per_disk: int = SLOTS_PER_DISK
    admission_limit: Optional[int] = None
    cycles: int = 20
    window: int = 10
    arrivals_per_cycle: float = 4.0
    zipf_theta: float = 1.0
    replicate_top_k: int = 0
    replicas: int = 1
    seed: int = 0
    fast_forward: bool = True
    faults: tuple[ClusterFault, ...] = ()

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.cycles < 1:
            raise ValueError(f"cycles must be >= 1, got {self.cycles}")
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.arrivals_per_cycle <= 0:
            raise ValueError(
                f"arrival rate must be positive, "
                f"got {self.arrivals_per_cycle}")
        for fault in self.faults:
            if fault.shard >= self.shards:
                raise ValueError(
                    f"fault addresses shard {fault.shard}; cluster has "
                    f"{self.shards}")

    def catalog_size(self) -> int:
        """Objects cluster-wide (default: one per parity group)."""
        if self.objects is not None:
            return self.objects
        return max(self.shards,
                   self.shards * self.disks_per_shard
                   // self.parity_group_size)


@dataclass(frozen=True)
class ShardSummary:
    """One shard's line in the cluster report.

    The fast-forward fields are diagnostic: they show how much of the
    shard's run stayed vectorised and why the engines declined the rest,
    and they are deliberately excluded from :meth:`ClusterReport.digest`
    (engine engagement must never shift a fingerprint).
    """

    shard_id: int
    routed: int
    admitted: int
    rejected: int
    effective_limit: int
    reads_digest: str
    ff_engaged_cycles: int = 0
    ff_disengagements: tuple[tuple[str, int], ...] = ()


@dataclass
class ClusterReport:
    """The merged outcome of one cluster run."""

    spec: ClusterSpec
    workers: int
    admitted: int
    rejected: int
    unarrived: int
    capacity: int
    report: SimulationReport
    per_shard: tuple[ShardSummary, ...]

    def digest(self) -> str:
        """SHA-256 over every deterministic metric (never wall clock —
        and never ``workers``, which the digest exists to vary)."""
        payload = {
            "scheme": self.spec.scheme.value,
            "shards": self.spec.shards,
            "disks_per_shard": self.spec.disks_per_shard,
            "cycles": self.spec.cycles,
            "seed": self.spec.seed,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "unarrived": self.unarrived,
            "capacity": self.capacity,
            "delivered": self.report.total_delivered,
            "hiccups": self.report.total_hiccups,
            "reconstructions": self.report.total_reconstructions,
            "parity_reads": self.report.total_parity_reads,
            "dropped_reads": self.report.total_dropped_reads,
            "streams_shed": self.report.total_streams_shed,
            "lost_tracks": self.report.total_lost_tracks,
            "per_shard": [[s.shard_id, s.routed, s.admitted, s.rejected,
                           s.effective_limit, s.reads_digest]
                          for s in self.per_shard],
        }
        canonical = json.dumps(payload, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def ff_disengagement_totals(self) -> dict[str, int]:
        """Cluster-wide fast-forward disengagement reasons, folded over
        shards (diagnostic; never part of :meth:`digest`)."""
        totals: dict[str, int] = {}
        for shard in self.per_shard:
            for reason, count in shard.ff_disengagements:
                totals[reason] = totals.get(reason, 0) + count
        return dict(sorted(totals.items()))

    def summary(self) -> str:
        """One human-readable line per run."""
        engaged = sum(s.ff_engaged_cycles for s in self.per_shard)
        return (
            f"{self.spec.scheme.value}: {self.spec.shards} shards x "
            f"{self.spec.disks_per_shard} disks, {self.workers} worker(s); "
            f"admitted {self.admitted}, rejected {self.rejected}, "
            f"unarrived {self.unarrived} of "
            f"{self.admitted + self.rejected + self.unarrived} requests; "
            f"capacity {self.capacity}; "
            f"{self.report.total_hiccups} hiccups; "
            f"ff {engaged} cycles; "
            f"digest {self.digest()[:12]}"
        )


def build_cluster_catalog(spec: ClusterSpec) -> Catalog:
    """The cluster-wide catalog with Zipf popularity weights."""
    params = shard_params(spec.disks_per_shard)
    catalog = Catalog()
    for index in range(spec.catalog_size()):
        catalog.add(MediaObject(f"m{index}", params.object_bandwidth_mb_s,
                                spec.tracks_per_object, seed=index))
    catalog.set_zipf_popularity(spec.zipf_theta)
    return catalog


def compile_cluster_trace(spec: ClusterSpec, catalog: Catalog,
                          seed: int) -> CompiledTrace:
    """The cluster-wide arrival trace, deterministic from ``seed``."""
    cycle_length_s = SchedulerConfig.build(
        shard_params(spec.disks_per_shard), spec.parity_group_size,
        spec.scheme, slots_per_disk=spec.slots_per_disk).cycle_length_s
    generator = WorkloadGenerator(
        catalog, spec.arrivals_per_cycle / cycle_length_s,
        zipf_theta=spec.zipf_theta, seed=seed)
    return compile_trace(generator.trace(spec.cycles * cycle_length_s),
                         cycle_length_s)


def plan_shards(spec: ClusterSpec, placement: ShardPlacement,
                catalog: Catalog,
                shard_seeds: tuple[int, ...]) -> list[ShardSpec]:
    """One frozen, spawn-safe spec per shard."""
    return [
        ShardSpec(
            shard_id=shard,
            scheme=spec.scheme,
            num_disks=spec.disks_per_shard,
            parity_group_size=spec.parity_group_size,
            objects=placement.objects_for(shard, catalog),
            slots_per_disk=spec.slots_per_disk,
            admission_limit=spec.admission_limit,
            faults=tuple(fault.local() for fault in spec.faults
                         if fault.shard == shard),
            seed=shard_seeds[shard],
            fast_forward=spec.fast_forward,
        )
        for shard in range(spec.shards)
    ]


def run_cluster(spec: ClusterSpec, workers: int = 1) -> ClusterReport:
    """Execute one cluster run end to end (see module docstring)."""
    seeds = derive_seeds(spec.seed, spec.shards + 2)
    placement_seed, trace_seed = seeds[0], seeds[1]
    catalog = build_cluster_catalog(spec)
    placement = partition_catalog(
        catalog, spec.shards, replicate_top_k=spec.replicate_top_k,
        seed=placement_seed, replicas=spec.replicas)
    trace = compile_cluster_trace(spec, catalog, trace_seed)
    shard_specs = plan_shards(spec, placement, catalog, seeds[2:])
    router = ClusterRouter(placement, catalog)
    sessions = [TaskSpec(init_shard, args=(shard_spec,),
                         label=f"shard-{shard_spec.shard_id}")
                for shard_spec in shard_specs]
    admitted = rejected = 0
    with SessionPool(sessions, workers=workers) as pool:
        for start in range(0, spec.cycles, spec.window):
            end = min(start + spec.window, spec.cycles)
            batches = router.route_window(trace.items(start, end))
            results = pool.step_all(
                run_shard_window,
                args=[(batches[shard], end)
                      for shard in range(spec.shards)],
                label=f"window-{start}")
            admitted += sum(result.admitted for result in results)
            rejected += sum(result.rejected for result in results)
            router.observe(end,
                           [result.streams_active for result in results],
                           [result.effective_limit for result in results])
        finals = pool.step_all(finalise_shard, label="finalise")
    merged = finals[0].report
    for shard_result in finals[1:]:
        merged = merged.merge(shard_result.report)
    return ClusterReport(
        spec=spec,
        workers=workers,
        admitted=admitted,
        rejected=rejected,
        unarrived=trace.unarrived_after(spec.cycles),
        capacity=cluster_capacity(
            [shard_result.effective_limit for shard_result in finals]),
        report=merged,
        per_shard=tuple(
            ShardSummary(
                shard_id=shard_result.shard_id,
                routed=router.routed[shard_result.shard_id],
                admitted=shard_result.admitted,
                rejected=shard_result.rejected,
                effective_limit=shard_result.effective_limit,
                reads_digest=shard_result.reads_digest,
                ff_engaged_cycles=shard_result.ff_engaged_cycles,
                ff_disengagements=shard_result.ff_disengagements,
            )
            for shard_result in finals),
    )
