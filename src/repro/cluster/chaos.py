"""Cluster-level chaos: seeded shard fault storms with a determinism gate.

The single-server campaigns in :mod:`repro.faults.chaos` storm one disk
farm; a cluster campaign storms *every shard at once*.  A script of
:class:`~repro.cluster.runner.ClusterFault` records is rolled
deterministically from a seed — per-shard whole-disk failures, some
striking mid-cycle, some with a scheduled repair — and replayed through
:func:`~repro.cluster.runner.run_cluster`, twice:

* once at ``workers=1`` (the serial baseline), and
* once at the requested pool width.

The gate is :meth:`~repro.cluster.runner.ClusterReport.digest` equality:
the digest folds every deterministic cluster metric *including each
shard's per-disk read-counter fingerprint*, so a worker-count-dependent
divergence anywhere in a shard — routing, admission, degraded-mode
reads, rebuild writes — fails the campaign.  Because every shard runs
with fast-forward on (unless the spec disables it), the storm also
exercises the degraded-churn and multi-failure epoch engines inside
shard windows; their scalar-equivalence is covered by the same digest.

Used by ``python -m repro cluster --chaos`` and the cluster tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.cluster.runner import (
    ClusterFault,
    ClusterReport,
    ClusterSpec,
    run_cluster,
)
from repro.sim.rng import RandomSource


@dataclass(frozen=True)
class ClusterChaosProfile:
    """Knobs of one cluster storm (probabilities per shard per cycle).

    The default keeps at most one concurrent failure per shard — the
    regime the paper's parity schemes are designed for, and the one the
    degraded epoch engines keep vectorised.  Raising
    ``max_concurrent_failures`` per shard scripts double-failure
    stretches, which may lose data (the CLI exit code reports it) but
    must still replay deterministically.
    """

    fail_probability: float = 0.12
    mid_cycle_probability: float = 0.25
    repair_probability: float = 0.60
    min_repair_delay: int = 4
    max_repair_delay: int = 12
    max_concurrent_failures: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.fail_probability <= 1.0:
            raise ValueError(
                f"fail_probability must be in [0, 1], "
                f"got {self.fail_probability}")
        if self.min_repair_delay < 1:
            raise ValueError(
                f"min_repair_delay must be >= 1 (a repair lands strictly "
                f"after its failure), got {self.min_repair_delay}")
        if self.max_repair_delay < self.min_repair_delay:
            raise ValueError(
                f"max_repair_delay {self.max_repair_delay} < "
                f"min_repair_delay {self.min_repair_delay}")
        if self.max_concurrent_failures < 0:
            raise ValueError("max_concurrent_failures must be >= 0")


def generate_cluster_script(spec: ClusterSpec, seed: int,
                            profile: ClusterChaosProfile,
                            ) -> tuple[ClusterFault, ...]:
    """Deterministically roll one cluster's fault script from a seed.

    Mirrors the per-shard fault-domain state (who is failed, and until
    when) so the script never exceeds the profile's concurrent-failure
    cap or strikes an already-failed disk; every draw comes from a
    shard-tagged :class:`~repro.sim.rng.RandomSource` stream, so the
    script is a pure function of ``(spec geometry, seed, profile)`` —
    adding a shard never perturbs the storms hitting the others.
    """
    rng = RandomSource(seed)
    faults: list[ClusterFault] = []
    for shard in range(spec.shards):
        tag = f"shard{shard}"
        # disk -> scripted repair cycle (None: failed for the whole run)
        failed: dict[int, Optional[int]] = {}
        for cycle in range(spec.cycles):
            for disk, repair in list(failed.items()):
                if repair is not None and repair <= cycle:
                    del failed[disk]
            if len(failed) >= profile.max_concurrent_failures:
                continue
            if rng.random(f"{tag}-fail") >= profile.fail_probability:
                continue
            candidates = [d for d in range(spec.disks_per_shard)
                          if d not in failed]
            if not candidates:
                continue
            disk = candidates[rng.integers(f"{tag}-fail-pick", 0,
                                           len(candidates))]
            mid = (rng.random(f"{tag}-mid")
                   < profile.mid_cycle_probability)
            repair_cycle: Optional[int] = None
            if rng.random(f"{tag}-repair") < profile.repair_probability:
                repair_cycle = cycle + rng.integers(
                    f"{tag}-repair-delay", profile.min_repair_delay,
                    profile.max_repair_delay + 1)
            faults.append(ClusterFault(shard, cycle, disk,
                                       mid_cycle=mid,
                                       repair_cycle=repair_cycle))
            failed[disk] = repair_cycle
    faults.sort(key=lambda f: (f.cycle, f.shard, f.disk_id))
    return tuple(faults)


@dataclass
class ClusterChaosResult:
    """Outcome of one cluster campaign."""

    spec: ClusterSpec
    seed: int
    workers: int
    events: int
    digest: str
    report: ClusterReport
    violations: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when the determinism gate held."""
        return not self.violations


def run_cluster_campaign(spec: ClusterSpec, seed: int,
                         profile: Optional[ClusterChaosProfile] = None,
                         workers: int = 1) -> ClusterChaosResult:
    """Roll a fault script onto ``spec`` and gate its determinism.

    The storm spec (``spec`` plus the scripted faults) runs twice —
    serial baseline, then at ``workers`` width (a straight replay when
    ``workers == 1``) — and the campaign passes iff both runs fold to
    the same :meth:`~repro.cluster.runner.ClusterReport.digest`.  The
    returned report is the pool-width run, so its shard summaries show
    what the campaign actually exercised (including each shard's
    fast-forward disengagement reasons).
    """
    profile = profile if profile is not None else ClusterChaosProfile()
    script = generate_cluster_script(spec, seed, profile)
    storm = replace(spec, faults=script)
    baseline = run_cluster(storm, workers=1)
    report = run_cluster(storm, workers=workers)
    violations: list[str] = []
    digest = baseline.digest()
    if report.digest() != digest:
        violations.append(
            f"workers=1 and workers={workers} replays diverged "
            f"({digest[:12]} != {report.digest()[:12]})")
    return ClusterChaosResult(
        spec=storm,
        seed=seed,
        workers=workers,
        events=len(script),
        digest=digest,
        report=report,
        violations=violations,
    )
