"""One cluster shard: a full server build, spawn-safe and windowed.

A shard is an ordinary :class:`~repro.server.server.MultimediaServer` —
its own layout, disk array, scheme scheduler, and catalog slice — that
the cluster runner drives through the trace in *windows* between routing
barriers.  Everything a shard's lifetime depends on rides in a frozen
:class:`ShardSpec`, so the session init obeys the ``repro.parallel``
spawn rules (R7): the spec is the only pickle, the server state is built
inside whichever worker owns the session, and it never crosses a process
boundary again.

The three module-level functions are the session protocol:

* :func:`init_shard` — build the server from a spec (session init);
* :func:`run_shard_window` — admit one routed batch dict and advance to
  the window barrier (session step, returns a tiny
  :class:`WindowResult`);
* :func:`finalise_shard` — extract the full :class:`ShardResult`,
  including the shard's :class:`~repro.server.metrics.SimulationReport`
  and a per-disk read-counter fingerprint (final session step).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Mapping, NamedTuple, Optional, Sequence

from repro.analysis.parameters import SystemParameters
from repro.faults.injector import FaultAction, FaultEvent, FaultSchedule
from repro.media.catalog import Catalog
from repro.media.objects import MediaObject
from repro.schemes import Scheme
from repro.server.metrics import SimulationReport
from repro.server.server import MultimediaServer
from repro.units import bytes_to_mb
from repro.workload.compiler import CompiledTrace

#: Toy 64-byte tracks, as in the scale grid: a 1000-disk shard
#: materialises in milliseconds while every cycle metric stays real.
TRACK_BYTES = 64
TRACKS_PER_DISK = 4000
SLOTS_PER_DISK = 8


def shard_params(num_disks: int) -> SystemParameters:
    """Table-1 parameters with toy 64-byte tracks for one shard."""
    return SystemParameters.paper_table1(
        num_disks=num_disks,
        track_size_mb=bytes_to_mb(TRACK_BYTES),
        disk_capacity_mb=bytes_to_mb(TRACK_BYTES * TRACKS_PER_DISK),
    )


@dataclass(frozen=True)
class ShardFault:
    """A scripted disk fault local to one shard."""

    cycle: int
    disk_id: int
    mid_cycle: bool = False
    repair_cycle: Optional[int] = None

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ValueError(f"fault cycle must be >= 0, got {self.cycle}")
        if self.disk_id < 0:
            raise ValueError(f"disk id must be >= 0, got {self.disk_id}")
        if self.repair_cycle is not None and self.repair_cycle <= self.cycle:
            raise ValueError(
                f"repair cycle {self.repair_cycle} must come after the "
                f"failure at cycle {self.cycle}")


@dataclass(frozen=True)
class ShardSpec:
    """Everything one shard's build depends on — and nothing else.

    Frozen and fully picklable (scheme enum, media objects, fault
    records are all module-level frozen types), so a spec is a valid
    :class:`~repro.parallel.TaskSpec` payload for a spawn worker.
    ``seed`` feeds nothing stochastic inside the shard today but pins
    the shard's identity in fingerprints; it is derived by the runner
    via ``SeedSequence.spawn`` so worker count can never perturb it.
    """

    shard_id: int
    scheme: Scheme
    num_disks: int
    parity_group_size: int
    objects: tuple[MediaObject, ...]
    slots_per_disk: int = SLOTS_PER_DISK
    admission_limit: Optional[int] = None
    faults: tuple[ShardFault, ...] = ()
    seed: int = 0
    fast_forward: bool = True

    def __post_init__(self) -> None:
        if self.shard_id < 0:
            raise ValueError(f"shard id must be >= 0, got {self.shard_id}")
        if self.num_disks < self.parity_group_size:
            raise ValueError(
                f"shard {self.shard_id} has {self.num_disks} disks, fewer "
                f"than one parity group ({self.parity_group_size})")
        if not self.objects:
            raise ValueError(f"shard {self.shard_id} holds no objects")

    def schedule(self) -> FaultSchedule:
        """The shard's scripted faults as a :class:`FaultSchedule`."""
        events: list[FaultEvent] = []
        for fault in self.faults:
            events.append(FaultEvent(fault.cycle, fault.disk_id,
                                     mid_cycle=fault.mid_cycle))
            if fault.repair_cycle is not None:
                events.append(FaultEvent(fault.repair_cycle, fault.disk_id,
                                         FaultAction.REPAIR))
        return FaultSchedule(events)


class WindowResult(NamedTuple):
    """What a shard reports back at a routing barrier.

    Deliberately tiny — these four integers are the *only* bytes that
    cross the process boundary per shard per window, and the only
    feedback the router's dispatch decisions may depend on (which is
    what keeps ``workers=1`` vs ``workers=N`` bit-identical: the same
    numbers arrive at the same barriers in the same session order).
    """

    admitted: int
    rejected: int
    streams_active: int
    effective_limit: int


@dataclass
class ShardState:
    """A live shard inside its owning worker: server plus running tallies."""

    spec: ShardSpec
    server: MultimediaServer
    schedule: FaultSchedule
    admitted: int = 0
    rejected: int = 0


@dataclass(frozen=True)
class ShardResult:
    """A finished shard's deterministic outcome.

    ``ff_engaged_cycles``/``ff_disengagements`` surface how much of the
    shard's run the fast-forward engines carried and why they declined
    the rest — diagnostic only, deliberately outside every digest (the
    engines are bit-equal to the scalar loop, so engagement must never
    shift a fingerprint), but folded into the cluster report so shard
    scalar fallbacks are visible in cluster benchmarks.
    """

    shard_id: int
    admitted: int
    rejected: int
    effective_limit: int
    report: SimulationReport
    reads_digest: str = field(repr=False, default="")
    ff_engaged_cycles: int = 0
    ff_disengagements: tuple[tuple[str, int], ...] = ()


def build_shard_server(spec: ShardSpec) -> MultimediaServer:
    """Assemble the shard's full server stack from its spec."""
    catalog = Catalog()
    for obj in spec.objects:
        catalog.add(obj)
    return MultimediaServer.build(
        shard_params(spec.num_disks), spec.parity_group_size, spec.scheme,
        catalog=catalog, slots_per_disk=spec.slots_per_disk,
        admission_limit=spec.admission_limit, verify_payloads=False)


def init_shard(spec: ShardSpec) -> ShardState:
    """Session init: build the shard server once, inside its worker."""
    return ShardState(spec=spec, server=build_shard_server(spec),
                      schedule=spec.schedule())


def run_shard_window(state: ShardState,
                     batches: Mapping[int, Sequence[str]],
                     end_cycle: int) -> WindowResult:
    """Session step: admit the routed batches, advance to the barrier.

    ``batches`` maps absolute arrival cycles within the window to the
    object names the router dispatched here; the window runs through
    :meth:`MultimediaServer.run_workload`, so fast-forward, churn
    batching, and the shard's scripted fault schedule all behave exactly
    as they would on a standalone server.
    """
    server = state.server
    cycles = end_cycle - server.cycle_index
    if cycles <= 0:
        raise ValueError(
            f"shard {state.spec.shard_id} asked to run to cycle "
            f"{end_cycle} but is already at {server.cycle_index}")
    trace = CompiledTrace.from_batches(dict(batches),
                                       server.config.cycle_length_s)
    result = server.run_workload(trace, cycles,
                                 fast_forward=state.spec.fast_forward,
                                 schedule=state.schedule)
    state.admitted += result.admitted
    state.rejected += result.rejected
    return WindowResult(
        admitted=result.admitted,
        rejected=result.rejected,
        streams_active=len(server.scheduler.active_streams),
        effective_limit=server.scheduler.effective_admission_limit(),
    )


def finalise_shard(state: ShardState) -> ShardResult:
    """Final session step: package the shard's deterministic outcome."""
    hasher = hashlib.sha256()
    for disk in state.server.array:
        hasher.update(f"{disk.disk_id}:{disk.reads}:{disk.writes}\n"
                      .encode("utf-8"))
    report = state.server.report
    return ShardResult(
        shard_id=state.spec.shard_id,
        admitted=state.admitted,
        rejected=state.rejected,
        effective_limit=state.server.scheduler.effective_admission_limit(),
        report=report,
        reads_digest=hasher.hexdigest(),
        ff_engaged_cycles=report.ff_engaged_cycles,
        ff_disengagements=tuple(sorted(report.ff_disengagements.items())),
    )
