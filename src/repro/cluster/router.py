"""The cluster front door: dispatch requests to shards holding the object.

The router owns every placement-aware decision, and it runs entirely in
the parent process at routing barriers — that is the cluster's
determinism argument in one sentence.  Shard feedback (active stream
counts, fault-aware admission limits) arrives only at barriers, in
session order, carrying identical values for any worker count; since
routing is a pure function of that feedback plus the placement, the
dispatched batches — and therefore every downstream shard metric — are
bit-identical for ``workers=1`` and ``workers=N``.

Between barriers the router *models* shard load: each dispatched stream
occupies its shard until its estimated end cycle (one track per cycle,
the paper's delivery model), tracked in a per-shard min-heap of end
cycles.  At each barrier :meth:`ClusterRouter.observe` rebases the model
onto the shards' actual active counts and refreshes their effective
limits, so degraded shards (failed disks, fail-slow drives) shrink their
headroom and the least-loaded-copy rule steers replicas' traffic away —
cluster-level degraded-mode admission without any cross-shard coupling.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence

from repro.cluster.placement import ShardPlacement
from repro.media.catalog import Catalog


class ClusterRouter:
    """Least-loaded-copy dispatch over a fixed placement."""

    def __init__(self, placement: ShardPlacement, catalog: Catalog) -> None:
        self.placement = placement
        self._durations = {obj.name: obj.num_tracks for obj in catalog}
        #: Modelled in-flight streams per shard: min-heaps of end cycles.
        self._ends: list[list[int]] = [[] for _ in range(placement.shards)]
        #: Barrier correction: actual minus modelled load, per shard.
        self._bias = [0] * placement.shards
        #: Fault-aware admission limits, refreshed at each barrier
        #: (None until the first observation: treat headroom as equal).
        self._limits: list[int] | None = None
        self.routed = [0] * placement.shards

    def _load(self, shard: int, cycle: int) -> int:
        """Modelled active streams on ``shard`` at ``cycle``."""
        ends = self._ends[shard]
        while ends and ends[0] <= cycle:
            heapq.heappop(ends)
        return len(ends) + self._bias[shard]

    def _headroom(self, shard: int, cycle: int) -> int:
        limit = self._limits[shard] if self._limits is not None else 0
        return limit - self._load(shard, cycle)

    def route(self, cycle: int, name: str) -> int:
        """Pick the least-loaded shard holding ``name`` and book the load."""
        holders = self.placement.holders(name)
        best = max(holders, key=lambda s: (self._headroom(s, cycle), -s))
        heapq.heappush(self._ends[best],
                       cycle + self._durations[name])
        self.routed[best] += 1
        return best

    def route_window(self, items: Iterable[tuple[int, str]],
                     ) -> list[dict[int, list[str]]]:
        """Dispatch one window of ``(cycle, name)`` arrivals.

        Returns one batch dict per shard — absolute arrival cycle to the
        names routed there, in arrival order — ready to ship to
        :func:`repro.cluster.shard.run_shard_window`.
        """
        batches: list[dict[int, list[str]]] = [
            {} for _ in range(self.placement.shards)]
        for cycle, name in items:
            shard = self.route(cycle, name)
            batches[shard].setdefault(cycle, []).append(name)
        return batches

    def observe(self, cycle: int, active: Sequence[int],
                limits: Sequence[int]) -> None:
        """Rebase the load model on barrier feedback from every shard.

        ``active``/``limits`` are per-shard actual stream counts and
        fault-aware admission limits at barrier ``cycle``, in shard
        order.  The modelled end-cycle heaps are kept (they still
        predict *when* load drains); the bias term absorbs everything
        the model missed — rejected admissions, shed streams, early
        completions.
        """
        if len(active) != self.placement.shards \
                or len(limits) != self.placement.shards:
            raise ValueError(
                f"expected feedback for {self.placement.shards} shards, "
                f"got {len(active)} active / {len(limits)} limits")
        for shard in range(self.placement.shards):
            self._bias[shard] = active[shard] - (self._load(shard, cycle)
                                                 - self._bias[shard])
        self._limits = list(limits)
