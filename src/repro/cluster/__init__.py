"""Sharded multi-node VoD cluster: scale-out over the session pool.

The paper sizes a single disk farm; ROADMAP item 3 asks what it takes to
serve the audience a single farm cannot.  This package answers with the
classic scale-out move, grounded in Viennot et al.'s distributed-VoD
bounds: run ``N`` fully independent shards — each a complete
layout/array/scheduler/server build — behind a deterministic front door.

* :mod:`repro.cluster.placement` — split the catalog over shards,
  optionally replicating the hottest titles k-way;
* :mod:`repro.cluster.shard` — the spawn-safe shard lifecycle
  (init / windowed step / finalise) for ``repro.parallel.SessionPool``;
* :mod:`repro.cluster.router` — least-loaded-copy dispatch with
  barrier-fed degraded-capacity awareness;
* :mod:`repro.cluster.runner` — orchestration and the merged
  :class:`~repro.cluster.runner.ClusterReport`;
* :mod:`repro.cluster.chaos` — seeded shard fault storms replayed
  through the runner, gated on worker-count digest invariance.

``workers=1`` and ``workers=N`` are bit-identical by construction; the
cluster benchmark gates its scaling numbers on that digest equality.
"""

from repro.cluster.chaos import (
    ClusterChaosProfile,
    ClusterChaosResult,
    generate_cluster_script,
    run_cluster_campaign,
)
from repro.cluster.placement import ShardPlacement, partition_catalog
from repro.cluster.router import ClusterRouter
from repro.cluster.runner import (
    ClusterFault,
    ClusterReport,
    ClusterSpec,
    ShardSummary,
    run_cluster,
)
from repro.cluster.shard import (
    ShardFault,
    ShardResult,
    ShardSpec,
    ShardState,
    WindowResult,
    build_shard_server,
    finalise_shard,
    init_shard,
    run_shard_window,
)

__all__ = [
    "ClusterChaosProfile",
    "ClusterChaosResult",
    "ClusterFault",
    "ClusterReport",
    "ClusterRouter",
    "ClusterSpec",
    "ShardFault",
    "ShardPlacement",
    "ShardResult",
    "ShardSpec",
    "ShardState",
    "ShardSummary",
    "WindowResult",
    "build_shard_server",
    "finalise_shard",
    "generate_cluster_script",
    "init_shard",
    "partition_catalog",
    "run_cluster",
    "run_cluster_campaign",
    "run_shard_window",
]
