"""Zipf popularity sampling.

Video-on-demand request popularity is classically modelled as Zipf-like:
the ``r``-th most popular title draws requests proportional to
``1 / r**theta``.  ``theta = 0`` degenerates to uniform.

All randomness flows through a named :class:`~repro.sim.rng.RandomSource`
stream (R1 determinism invariant): two samplers built from the same root
seed and stream name produce identical request sequences, independent of
any other component's draws.
"""

from __future__ import annotations

import numpy as np

from repro.sim.rng import RandomSource


class ZipfSampler:
    """Draws ranks 0..n-1 with probability proportional to 1/(rank+1)^theta."""

    def __init__(self, n: int, theta: float = 1.0,
                 rng: RandomSource | None = None, stream: str = "zipf") -> None:
        if n < 1:
            raise ValueError(f"need at least one item, got {n}")
        if theta < 0:
            raise ValueError(f"theta must be non-negative, got {theta}")
        self.n = n
        self.theta = theta
        self._rng = rng or RandomSource(0)
        self._stream = stream
        weights = np.array([1.0 / (rank + 1) ** theta for rank in range(n)])
        self._pmf = weights / weights.sum()
        self._cdf = np.cumsum(self._pmf)

    def pmf(self) -> list[float]:
        """The probability of each rank, most popular first."""
        return self._pmf.tolist()

    def probability(self, rank: int) -> float:
        """Probability of one rank (0-based, 0 = most popular)."""
        if not 0 <= rank < self.n:
            raise IndexError(f"rank {rank} out of range 0..{self.n - 1}")
        return float(self._pmf[rank])

    def sample(self) -> int:
        """Draw one rank."""
        u = self._rng.random(self._stream)
        return int(np.searchsorted(self._cdf, u, side="right"))

    def sample_many(self, count: int) -> list[int]:
        """Draw ``count`` ranks."""
        return self.sample_array(count).tolist()

    def sample_array(self, count: int) -> np.ndarray:
        """Draw ``count`` ranks as one numpy array, vectorised.

        Consumes exactly the uniforms ``count`` sequential :meth:`sample`
        calls would, in the same order, so the result is bit-identical to
        the scalar loop (numpy generators fill arrays from the same bit
        stream scalar draws consume).
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        draws = self._rng.random_array(self._stream, count)
        return np.searchsorted(self._cdf, draws, side="right")
