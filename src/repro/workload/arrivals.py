"""Poisson arrival process for stream requests."""

from __future__ import annotations

from typing import Iterator

from repro.sim.rng import RandomSource


class PoissonArrivals:
    """Exponential inter-arrival times with a given rate (arrivals/second)."""

    def __init__(self, rate_per_s: float, rng: RandomSource | None = None,
                 stream: str = "arrivals") -> None:
        if rate_per_s <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate_per_s}")
        self.rate_per_s = rate_per_s
        self._rng = rng or RandomSource(0)
        self._stream = stream

    def next_interarrival(self) -> float:
        """One inter-arrival gap in seconds."""
        return self._rng.exponential(self._stream, 1.0 / self.rate_per_s)

    def times_until(self, horizon_s: float) -> Iterator[float]:
        """Yield absolute arrival times in [0, horizon)."""
        if horizon_s <= 0:
            raise ValueError(f"horizon must be positive, got {horizon_s}")
        clock = 0.0
        while True:
            clock += self.next_interarrival()
            if clock >= horizon_s:
                return
            yield clock
