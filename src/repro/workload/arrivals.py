"""Poisson arrival process for stream requests.

Two equivalent sampling paths share one named RNG stream:

* :meth:`PoissonArrivals.times_until` — the scalar reference, one
  exponential gap per iteration;
* :meth:`PoissonArrivals.times_array` — chunked numpy draws
  (:meth:`~repro.sim.rng.RandomSource.exponential_array` + ``cumsum``),
  producing **bit-identical** arrival times because numpy generators
  fill arrays from the same bit stream sequential scalar draws consume.

The two paths may leave the underlying generator at *different* offsets
(the chunked path over-draws past the horizon), so equality is defined
per fresh generator/seed, which is how traces are built.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.sim.rng import RandomSource

#: Gap draws per chunk on the vectorised path.  Large enough to amortise
#: the numpy call, small enough that the tail over-draw stays cheap.
ARRIVAL_CHUNK = 4096


class PoissonArrivals:
    """Exponential inter-arrival times with a given rate (arrivals/second)."""

    def __init__(self, rate_per_s: float, rng: RandomSource | None = None,
                 stream: str = "arrivals") -> None:
        if rate_per_s <= 0:
            raise ValueError(f"arrival rate must be positive, got {rate_per_s}")
        self.rate_per_s = rate_per_s
        self._rng = rng or RandomSource(0)
        self._stream = stream

    def next_interarrival(self) -> float:
        """One inter-arrival gap in seconds."""
        return self._rng.exponential(self._stream, 1.0 / self.rate_per_s)

    def times_until(self, horizon_s: float) -> Iterator[float]:
        """Yield absolute arrival times in [0, horizon)."""
        if horizon_s <= 0:
            raise ValueError(f"horizon must be positive, got {horizon_s}")
        clock = 0.0
        while True:
            clock += self.next_interarrival()
            if clock >= horizon_s:
                return
            yield clock

    def times_array(self, horizon_s: float,
                    chunk: int = ARRIVAL_CHUNK) -> np.ndarray:
        """All arrival times in [0, horizon) as one array, vectorised.

        Gap draws come in chunks of ``chunk``; each chunk's running sum
        extends the arrival clock until it crosses the horizon.  Every
        arrival value equals the scalar path's bit for bit (same draws,
        same ``a + b`` summation order — ``cumsum`` accumulates left to
        right exactly as the scalar clock does).
        """
        if horizon_s <= 0:
            raise ValueError(f"horizon must be positive, got {horizon_s}")
        if chunk < 1:
            raise ValueError(f"chunk must be positive, got {chunk}")
        mean = 1.0 / self.rate_per_s
        pieces: list[np.ndarray] = []
        clock = 0.0
        while True:
            gaps = self._rng.exponential_array(self._stream, mean, chunk)
            # Seed the accumulation with the carried clock so every sum
            # associates exactly as the scalar loop's ``clock += gap``
            # (``(clock + g0) + g1``, never ``(g0 + g1) + clock``).
            steps = np.empty(chunk + 1)
            steps[0] = clock
            steps[1:] = gaps
            times = np.cumsum(steps)[1:]
            if times[-1] >= horizon_s:
                cut = int(np.searchsorted(times, horizon_s, side="left"))
                pieces.append(times[:cut])
                break
            pieces.append(times)
            clock = float(times[-1])
        if len(pieces) == 1:
            return pieces[0]
        return np.concatenate(pieces)
