"""Compile a request trace into per-cycle arrival batches, once.

``run_workload`` used to re-derive each request's arrival cycle inside
the per-cycle loop.  A :class:`CompiledTrace` does that work a single
time up front: requests are bucketed by arrival cycle into name batches,
ready for batch admission, and the bucket keys double as the *churn
event cycles* the fast-forward engine segments its epochs at.

The compiled form also settles the accounting question the scalar
runner fudged: requests arriving beyond the simulated horizon are
neither admitted nor rejected — they are **unarrived**, and
:meth:`CompiledTrace.unarrived_after` counts them explicitly.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Mapping, Optional, Sequence

from repro.workload.generator import StreamRequest


class CompiledTrace:
    """Per-cycle arrival batches for a time-ordered request trace."""

    __slots__ = ("cycle_length_s", "total", "_batches", "_cycles")

    def __init__(self, requests: Iterable[StreamRequest],
                 cycle_length_s: float) -> None:
        if cycle_length_s <= 0:
            raise ValueError(
                f"cycle length must be positive, got {cycle_length_s}")
        self.cycle_length_s = cycle_length_s
        batches: dict[int, list[str]] = {}
        total = 0
        previous = float("-inf")
        for request in requests:
            if request.arrival_time_s < previous:
                raise ValueError(
                    "trace is not time-ordered at "
                    f"t={request.arrival_time_s}")
            previous = request.arrival_time_s
            cycle = request.arrival_cycle(cycle_length_s)
            batches.setdefault(cycle, []).append(request.object_name)
            total += 1
        self.total = total
        self._batches: dict[int, tuple[str, ...]] = {
            cycle: tuple(names) for cycle, names in batches.items()
        }
        self._cycles: tuple[int, ...] = tuple(sorted(self._batches))

    @classmethod
    def from_batches(cls, batches: Mapping[int, Sequence[str]],
                     cycle_length_s: float) -> "CompiledTrace":
        """Build a trace directly from per-cycle arrival batches.

        The constructor for *derived* traces — per-shard partitions,
        routed windows — where arrival cycles are already known and
        re-synthesising arrival timestamps would only invite float
        rounding.  Batch order within a cycle is preserved; empty
        batches are dropped.
        """
        trace = cls((), cycle_length_s)
        clean: dict[int, tuple[str, ...]] = {}
        for cycle, names in batches.items():
            if int(cycle) != cycle or cycle < 0:
                raise ValueError(
                    f"arrival cycle must be a non-negative integer, "
                    f"got {cycle!r}")
            if names:
                clean[int(cycle)] = tuple(names)
        trace._batches = clean
        trace._cycles = tuple(sorted(clean))
        trace.total = sum(len(batch) for batch in clean.values())
        return trace

    def event_cycles(self) -> tuple[int, ...]:
        """Cycles with at least one arrival, ascending (churn events)."""
        return self._cycles

    def items(self, start: Optional[int] = None,
              end: Optional[int] = None) -> list[tuple[int, str]]:
        """``(cycle, name)`` pairs in arrival order, optionally windowed.

        ``start``/``end`` bound the arrival cycle (half-open, like
        ``range``); the global arrival order — ascending cycle, then
        batch order — defines each request's *trace index*, the handle
        :meth:`partition` assignments are keyed by.
        """
        return [(cycle, name)
                for cycle in self._cycles
                if (start is None or cycle >= start)
                and (end is None or cycle < end)
                for name in self._batches[cycle]]

    def partition(self, assignment: Sequence[int],
                  shards: int) -> list["CompiledTrace"]:
        """Split into per-shard traces by an arrival-order assignment.

        ``assignment[i]`` names the shard of the ``i``-th request in
        arrival order (the order :meth:`items` yields).  Every request
        must be assigned to exactly one shard in ``range(shards)``;
        concatenating the partitions' batches in shard order reproduces
        this trace's requests exactly — deterministic per-shard trace
        partitioning for the cluster front door.
        """
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if len(assignment) != self.total:
            raise ValueError(
                f"assignment covers {len(assignment)} requests, trace "
                f"has {self.total}")
        batches: list[dict[int, list[str]]] = [{} for _ in range(shards)]
        for (cycle, name), shard in zip(self.items(), assignment):
            if not 0 <= shard < shards:
                raise ValueError(
                    f"assignment names shard {shard}, valid range is "
                    f"0..{shards - 1}")
            batches[shard].setdefault(cycle, []).append(name)
        return [CompiledTrace.from_batches(shard_batches,
                                           self.cycle_length_s)
                for shard_batches in batches]

    def arrivals_in(self, cycle: int) -> tuple[str, ...]:
        """Object names requested during ``cycle``, in arrival order."""
        return self._batches.get(cycle, ())

    def arrivals_before(self, cycle: int) -> int:
        """How many requests arrive in cycles ``0 .. cycle - 1``."""
        return sum(len(self._batches[c]) for c in self._cycles if c < cycle)

    def unarrived_after(self, cycles: int) -> int:
        """Requests whose arrival cycle falls at or beyond ``cycles``.

        These never reached the front door during a ``cycles``-long run,
        so they belong in neither the admitted nor the rejected count.
        """
        return self.total - self.arrivals_before(cycles)

    def digest(self) -> str:
        """sha256 over (cycle, name) pairs — the trace-equality guard."""
        hasher = hashlib.sha256()
        for cycle in self._cycles:
            for name in self._batches[cycle]:
                hasher.update(f"{cycle}:{name}\n".encode("utf-8"))
        return hasher.hexdigest()

    def __len__(self) -> int:
        return self.total


def compile_trace(requests: Sequence[StreamRequest],
                  cycle_length_s: float) -> CompiledTrace:
    """Bucket a request trace by arrival cycle (see :class:`CompiledTrace`)."""
    return CompiledTrace(requests, cycle_length_s)
