"""Request-trace generation: Poisson arrivals over a Zipf-ranked catalog."""

from __future__ import annotations

from dataclasses import dataclass

from repro.media.catalog import Catalog
from repro.sim.rng import RandomSource
from repro.workload.arrivals import PoissonArrivals
from repro.workload.zipf import ZipfSampler


@dataclass(frozen=True)
class StreamRequest:
    """One viewer request: when it arrives and what it asks for."""

    arrival_time_s: float
    object_name: str

    def arrival_cycle(self, cycle_length_s: float) -> int:
        """The cycle in which this request should be admitted."""
        if cycle_length_s <= 0:
            raise ValueError("cycle length must be positive")
        return int(self.arrival_time_s / cycle_length_s)


class WorkloadGenerator:
    """Builds deterministic request traces from a catalog and a seed."""

    def __init__(self, catalog: Catalog, arrival_rate_per_s: float,
                 zipf_theta: float = 1.0, seed: int = 0) -> None:
        if len(catalog) == 0:
            raise ValueError("catalog is empty")
        self.catalog = catalog
        rng = RandomSource(seed)
        self._arrivals = PoissonArrivals(arrival_rate_per_s, rng)
        self._sampler = ZipfSampler(len(catalog), zipf_theta, rng)
        self._names = catalog.names()

    def trace(self, horizon_s: float) -> list[StreamRequest]:
        """All requests arriving within the horizon, in time order.

        Vectorised: all arrival times in one chunked draw
        (:meth:`PoissonArrivals.times_array`), then all ranks in one draw
        (:meth:`ZipfSampler.sample_array`).  Because arrivals and ranks
        live on *separate* named RNG streams, pulling each stream in bulk
        consumes exactly the values the interleaved scalar loop would —
        :meth:`trace_scalar` stays as the byte-identical reference.
        """
        times = self._arrivals.times_array(horizon_s)
        ranks = self._sampler.sample_array(len(times))
        return [StreamRequest(float(t), self._names[r])
                for t, r in zip(times, ranks)]

    def trace_scalar(self, horizon_s: float) -> list[StreamRequest]:
        """Reference implementation: one request at a time."""
        requests = []
        for arrival in self._arrivals.times_until(horizon_s):
            rank = self._sampler.sample()
            requests.append(StreamRequest(arrival, self._names[rank]))
        return requests

    def request_mix(self, horizon_s: float) -> dict[str, int]:
        """Requests per object over a horizon (popularity diagnostics)."""
        mix: dict[str, int] = {name: 0 for name in self._names}
        for request in self.trace(horizon_s):
            mix[request.object_name] += 1
        return mix
