"""Workload generation: Zipf popularity, Poisson arrivals, request traces."""

from repro.workload.arrivals import PoissonArrivals
from repro.workload.generator import StreamRequest, WorkloadGenerator
from repro.workload.zipf import ZipfSampler

__all__ = [
    "PoissonArrivals",
    "StreamRequest",
    "WorkloadGenerator",
    "ZipfSampler",
]
