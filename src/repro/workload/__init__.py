"""Workload generation: Zipf popularity, Poisson arrivals, request traces."""

from repro.workload.arrivals import PoissonArrivals
from repro.workload.compiler import CompiledTrace, compile_trace
from repro.workload.generator import StreamRequest, WorkloadGenerator
from repro.workload.zipf import ZipfSampler

__all__ = [
    "CompiledTrace",
    "PoissonArrivals",
    "StreamRequest",
    "WorkloadGenerator",
    "ZipfSampler",
    "compile_trace",
]
