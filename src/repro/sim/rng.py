"""Seeded random-number streams for reproducible simulations.

Every stochastic component (fault injector, workload generator, Zipf
sampler, ...) draws from its own named stream so that, e.g., changing the
arrival process does not perturb the failure times.  Streams are derived
from a root seed with stable hashing, so a simulation is fully determined
by ``(root_seed, stream names used)``.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RandomSource:
    """A factory of independent, named ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")
            ).digest()
            substream_seed = int.from_bytes(digest[:8], "little")
            self._streams[name] = np.random.default_rng(substream_seed)
        return self._streams[name]

    def exponential(self, name: str, mean: float) -> float:
        """One draw from Exp(mean) on the named stream."""
        if mean <= 0:
            raise ValueError(f"exponential mean must be positive, got {mean}")
        return float(self.stream(name).exponential(mean))

    def exponential_array(self, name: str, mean: float,
                          count: int) -> np.ndarray:
        """``count`` draws from Exp(mean) on the named stream.

        numpy's generators fill arrays by drawing sequentially from the
        bit stream, so ``exponential_array(n, m, k)`` yields exactly the
        values ``k`` successive :meth:`exponential` calls would — the
        invariant the vectorised workload path is built on.
        """
        if mean <= 0:
            raise ValueError(f"exponential mean must be positive, got {mean}")
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return self.stream(name).exponential(mean, size=count)

    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        """One draw from U[low, high) on the named stream."""
        return float(self.stream(name).uniform(low, high))

    def integers(self, name: str, low: int, high: int) -> int:
        """One integer draw from [low, high) on the named stream."""
        return int(self.stream(name).integers(low, high))

    def random(self, name: str) -> float:
        """One draw from U[0, 1) on the named stream."""
        return float(self.stream(name).random())

    def random_array(self, name: str, count: int) -> np.ndarray:
        """``count`` draws from U[0, 1) on the named stream."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return self.stream(name).random(count)

    def spawn(self, name: str) -> "RandomSource":
        """Derive a child RandomSource (e.g. one per simulation replica)."""
        digest = hashlib.sha256(f"{self.seed}/{name}".encode("utf-8")).digest()
        return RandomSource(int.from_bytes(digest[:8], "little"))
