"""A simpy-style discrete-event simulation kernel.

The kernel is deliberately small but complete enough for this project:

* :class:`Environment` owns the simulation clock and the event heap.
* :class:`Event` is a one-shot waitable; processes waiting on it are resumed
  when it succeeds (or receive the exception when it fails).
* :class:`Timeout` is an event that fires after a fixed delay.
* :class:`Process` wraps a generator; yielding an event suspends the process
  until the event fires; a process is itself an event that fires when the
  generator returns.
* :class:`AllOf` / :class:`AnyOf` compose events.
* :meth:`Process.interrupt` injects an :class:`Interrupt` exception into a
  suspended process (used by the fault injector to cancel repairs etc.).

Determinism: events scheduled for the same time fire in scheduling order
(FIFO), which makes simulations reproducible without tie-breaking hacks.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError

#: Type of the generators that implement simulation processes.
ProcessGenerator = Generator["Event", Any, Any]


class Interrupt(Exception):
    """Thrown inside a process when another process interrupts it."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*, becomes *triggered* when :meth:`succeed` or
    :meth:`fail` is called, and its callbacks run when the environment pops
    it off the schedule.  After that it is *processed* and its :attr:`value`
    is stable.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[[Event], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None

    @property
    def triggered(self) -> bool:
        """True once succeed()/fail() has been called."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event left the queue)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if self._ok is None:
            raise SimulationError("event value read before it was triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception."""
        if self._ok is None:
            raise SimulationError("event value read before it was triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional value."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.env._enqueue_triggered(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes receive the exception via ``throw``.
        """
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env._enqueue_triggered(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed."""
        if self.callbacks is None:
            # Already processed: run immediately so late waiters still fire.
            callback(self)
        else:
            self.callbacks.append(callback)

    def _process_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(self)


class Timeout(Event):
    """An event that fires ``delay`` time units after it is created."""

    __slots__ = ("delay", "_value_on_fire")

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        # The timeout only *triggers* when the clock reaches it (step()
        # fires it); until then it must look pending to AnyOf/AllOf.
        self._value_on_fire = value
        env._enqueue_at(env.now + delay, self)


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is itself an event: it triggers with the generator's return
    value when the generator finishes, or fails with the uncaught exception.
    """

    __slots__ = ("_generator", "name", "_waiting_on")

    def __init__(self, env: "Environment", generator: ProcessGenerator,
                 name: str = "") -> None:
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Bootstrap: resume the generator at the current simulation time.
        bootstrap = Event(env)
        bootstrap.succeed()
        bootstrap.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        if self._waiting_on is not None:
            # Detach from whatever it was waiting for.
            waited = self._waiting_on
            self._waiting_on = None
            if waited.callbacks is not None and self._resume in waited.callbacks:
                waited.callbacks.remove(self._resume)
        poke = Event(self.env)
        poke.fail(Interrupt(cause))
        poke.add_callback(self._resume)

    def _resume(self, event: Event) -> None:
        if not self.is_alive:
            return
        self._waiting_on = None
        try:
            if event._ok:
                target = self._generator.send(event._value)
            else:
                target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # An un-handled interrupt terminates the process abnormally.
            self.fail(exc)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must "
                "yield Event instances (Timeout, Process, ...)"
            )
        if target.env is not self.env:
            raise SimulationError("yielded an event from a different Environment")
        self._waiting_on = target
        target.add_callback(self._resume)


class _Condition(Event):
    """Base for AllOf/AnyOf composition events."""

    __slots__ = ("_events", "_pending")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._pending = 0
        for event in self._events:
            if event.processed:
                self._observe(event)
            else:
                self._pending += 1
                event.add_callback(self._observe)
        self._check()

    def _observe(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._pending = max(0, self._pending - 1)
        self._check()

    def _check(self) -> None:  # pragma: no cover - abstract hook
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every component event has fired; value is the list of values."""

    __slots__ = ()

    def _check(self) -> None:
        if not self.triggered and all(e.triggered for e in self._events):
            self.succeed([e._value for e in self._events])


class AnyOf(_Condition):
    """Fires when the first component event fires; value is that event's value."""

    __slots__ = ()

    def _check(self) -> None:
        for event in self._events:
            if event.triggered and not self.triggered:
                self.succeed(event._value)
                return


class Environment:
    """The simulation environment: clock, schedule, and run loop."""

    __slots__ = ("_now", "_heap", "_sequence")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, Event]] = []
        self._sequence = itertools.count()

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    # -- event construction helpers -------------------------------------

    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` time units."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a new process from ``generator`` at the current time."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event firing once all of ``events`` fire."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event firing once any of ``events`` fires."""
        return AnyOf(self, events)

    # -- scheduling internals --------------------------------------------

    def _enqueue_at(self, when: float, event: Event) -> None:
        heapq.heappush(self._heap, (when, next(self._sequence), event))

    def _enqueue_triggered(self, event: Event) -> None:
        self._enqueue_at(self._now, event)

    # -- run loop ---------------------------------------------------------

    def step(self) -> None:
        """Process the single next event.  Raises IndexError when empty."""
        when, _seq, event = heapq.heappop(self._heap)
        if when < self._now:
            raise SimulationError("event scheduled in the past")
        self._now = when
        if event._ok is None:
            # A delayed event (Timeout) fires when the clock reaches it.
            event._ok = True
            event._value = getattr(event, "_value_on_fire", None)
        event._process_callbacks()

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until no events remain;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event is processed and return
          its value (raising its exception if it failed).
        """
        if isinstance(until, Event):
            sentinel = until
            while not sentinel.processed:
                if not self._heap:
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        "event triggered"
                    )
                self.step()
            if sentinel._ok:
                return sentinel._value
            raise sentinel._value
        horizon = float("inf") if until is None else float(until)
        if horizon < self._now:
            raise ValueError("cannot run to a time in the past")
        while self._heap and self._heap[0][0] <= horizon:
            self.step()
        if horizon != float("inf"):
            self._now = horizon
        return None
