"""Discrete-event simulation substrate.

A small, dependency-free, simpy-style kernel: simulation *processes* are
Python generators that ``yield`` events (timeouts, signals, other processes)
and are resumed by the :class:`~repro.sim.kernel.Environment` when those
events fire.  The multimedia-server simulator in :mod:`repro.server` drives
cycles, stream lifecycles, and fault injection on top of this kernel.
"""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    Timeout,
)
from repro.sim.rng import RandomSource

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "RandomSource",
    "Timeout",
]
