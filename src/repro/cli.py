"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``table2`` / ``table3``
    Print the paper's scheme-comparison tables from the closed forms.
``ksweep``
    The Section 2 in-text N/D' versus k sweep.
``fig9``
    The Figure 9 cost and stream series.
``reliability``
    MTTF/MTTDS for a given geometry, plus the in-text claims.
``simulate``
    Run the cycle simulator for one scheme, optionally failing a disk,
    and print the delivery report.
``rebuild``
    Compare tape versus on-line parity rebuild for a failed disk.
``chaos``
    Seeded randomized fault campaigns with invariant checks.
``cluster``
    Run a sharded multi-node cluster over the session pool and print
    (or emit as JSON) the merged cluster report.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis import (
    SystemParameters,
    compare_schemes,
    figure9_cost_series,
    figure9_stream_series,
    format_comparison_table,
)
from repro.analysis.reliability import mttds_years, mttf_catastrophic_years
from repro.analysis.streams import k_sweep
from repro.schemes import ALL_SCHEMES, Scheme
from repro.units import seconds_to_hours


def _scheme(value: str) -> Scheme:
    try:
        return Scheme(value.upper())
    except ValueError:
        choices = ", ".join(s.value for s in Scheme)
        raise argparse.ArgumentTypeError(
            f"unknown scheme {value!r} (choose from {choices})")


def build_parser() -> argparse.ArgumentParser:
    """The repro command-line argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fault Tolerant Design of Multimedia Servers "
                    "(SIGMOD 1995) — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, group_size in [("table2", 5), ("table3", 7)]:
        table = sub.add_parser(name, help=f"paper Table {name[-1]} "
                                          f"(C = {group_size})")
        table.set_defaults(group_size=group_size)
        table.add_argument("--disks", type=int, default=100,
                           help="total disks D (default 100)")

    sub.add_parser("ksweep", help="Section 2 N/D' versus k sweep")

    fig9 = sub.add_parser("fig9", help="Figure 9 cost and stream series")
    fig9.add_argument("--working-set-mb", type=float, default=100_000.0)

    reliability = sub.add_parser("reliability",
                                 help="MTTF/MTTDS for a geometry")
    reliability.add_argument("--disks", type=int, default=1000)
    reliability.add_argument("--group-size", type=int, default=10)
    reliability.add_argument("--replications", type=int, default=0,
                             help="also run an accelerated Monte-Carlo "
                                  "cross-check with this many replications")
    reliability.add_argument("--seed", type=int, default=11,
                             help="Monte-Carlo root seed (default 11)")
    reliability.add_argument("--workers", type=int, default=1,
                             help="process-pool width for the Monte-Carlo "
                                  "(default 1: in-process)")

    simulate = sub.add_parser("simulate", help="run the cycle simulator")
    simulate.add_argument("--scheme", type=_scheme, default=Scheme.STREAMING_RAID,
                          help="SR, SG, NC, or IB (default SR)")
    simulate.add_argument("--disks", type=int, default=10)
    simulate.add_argument("--group-size", type=int, default=5)
    simulate.add_argument("--streams", type=int, default=2)
    simulate.add_argument("--cycles", type=int, default=30)
    simulate.add_argument("--fail-disk", type=int, default=None)
    simulate.add_argument("--fail-cycle", type=int, default=2)
    simulate.add_argument("--repair-cycle", type=int, default=None)
    simulate.add_argument("--metadata-only", action="store_true",
                          help="skip payload bytes (counters only)")
    simulate.add_argument("--fast-forward", action="store_true",
                          help="batch quiescent cycles (requires "
                               "--metadata-only)")

    rebuild = sub.add_parser("rebuild",
                             help="tape vs on-line rebuild estimate")
    rebuild.add_argument("--disks", type=int, default=20)
    rebuild.add_argument("--group-size", type=int, default=5)
    rebuild.add_argument("--movies", type=int, default=40)
    rebuild.add_argument("--idle-fraction", type=float, default=0.2)

    design = sub.add_parser("design",
                            help="recommend the cheapest feasible design")
    design.add_argument("--working-set-mb", type=float, default=100_000.0)
    design.add_argument("--streams", type=int, default=1200)
    design.add_argument("--min-mttf-years", type=float, default=0.0)

    scale = sub.add_parser("scale",
                           help="Section 1 system-scale arithmetic")
    scale.add_argument("--disks", type=int, default=1000)
    scale.add_argument("--disk-capacity-mb", type=float, default=1000.0)
    scale.add_argument("--disk-bandwidth-mb-s", type=float, default=4.0)

    sub.add_parser("verify",
                   help="self-check the reproduction against the paper")

    chaos = sub.add_parser(
        "chaos", help="seeded fault campaigns with invariant checks")
    chaos.add_argument("--seed", type=int, default=7,
                       help="campaign seed (default 7)")
    chaos.add_argument("--scheme", default="all",
                       help="SR, SG, NC, IB, or all (default all)")
    chaos.add_argument("--cycles", type=int, default=40,
                       help="campaign length in cycles (default 40)")
    chaos.add_argument("--max-failures", type=int, default=2,
                       help="max concurrent whole-disk failures (default 2)")
    chaos.add_argument("--skip-payload-check", action="store_true",
                       help="skip the byte-verified equivalence replay")
    chaos.add_argument("--runs", type=int, default=1,
                       help="campaigns per scheme, seeds derived from "
                            "--seed (default 1)")
    chaos.add_argument("--workers", type=int, default=1,
                       help="process-pool width (default 1: in-process)")

    cluster = sub.add_parser(
        "cluster", help="run a sharded multi-node cluster")
    cluster.add_argument("--shards", type=int, default=2,
                         help="number of independent server shards "
                              "(default 2)")
    cluster.add_argument("--workers", type=int, default=1,
                         help="session-pool width; results are "
                              "bit-identical for any value (default 1)")
    cluster.add_argument("--disks", type=int, default=20,
                         help="disks per shard (default 20)")
    cluster.add_argument("--scheme", type=_scheme,
                         default=Scheme.STREAMING_RAID,
                         help="SR, SG, NC, IB, or PD (default SR)")
    cluster.add_argument("--group-size", type=int, default=5,
                         help="parity group size C (default 5)")
    cluster.add_argument("--cycles", type=int, default=40,
                         help="simulated cycles (default 40)")
    cluster.add_argument("--arrivals-per-cycle", type=float, default=4.0,
                         help="cluster-wide Poisson arrival rate "
                              "(default 4.0)")
    cluster.add_argument("--replicate-top-k", type=int, default=0,
                         help="replicate the k hottest titles onto an "
                              "extra shard (default 0)")
    cluster.add_argument("--fast-forward", action="store_true",
                         help="vectorise quiescent stretches inside "
                              "each shard window")
    cluster.add_argument("--seed", type=int, default=0,
                         help="root seed; every shard/trace/placement "
                              "seed derives from it (default 0)")
    cluster.add_argument("--chaos", action="store_true",
                         help="roll a seeded shard fault storm onto the "
                              "cluster and gate the run on workers=1 vs "
                              "workers=N digest equality")
    cluster.add_argument("--chaos-max-failures", type=int, default=1,
                         help="max concurrent scripted failures per "
                              "shard (default 1)")
    cluster.add_argument("--json", action="store_true",
                         help="emit the cluster report as JSON")

    experiments = sub.add_parser(
        "experiments", help="regenerate paper experiments as data")
    experiments.add_argument("name", nargs="?", default=None,
                             help="experiment id (omit to run all)")
    experiments.add_argument("--json", action="store_true",
                             help="emit rows as JSON")
    return parser


def cmd_table(args: argparse.Namespace) -> int:
    """Print Table 2 or 3 from the closed forms."""
    params = SystemParameters.paper_table1(num_disks=args.disks)
    print(f"Scheme comparison at C = {args.group_size}, D = {args.disks}")
    print(format_comparison_table(compare_schemes(params, args.group_size)))
    return 0


def cmd_ksweep(_args: argparse.Namespace) -> int:
    """Print the Section 2 N/D' versus k sweep."""
    ks = [1, 2, 4, 6, 8, 10]
    mpeg2 = k_sweep(SystemParameters.paper_section2(4.5), ks)
    mpeg1 = k_sweep(SystemParameters.paper_section2(1.5), ks)
    print("N/D' versus k (Section 2 drive: 100 KB, 30/10 ms)")
    print(f"{'k':>4}{'MPEG-2':>10}{'MPEG-1':>10}")
    for k in ks:
        print(f"{k:>4}{mpeg2[k]:>10.2f}{mpeg1[k]:>10.2f}")
    return 0


def cmd_fig9(args: argparse.Namespace) -> int:
    """Print the Figure 9 cost and stream series."""
    params = SystemParameters.paper_table1(reserve_k=5)
    sizes = range(2, 11)
    costs = figure9_cost_series(params, args.working_set_mb, sizes)
    streams = figure9_stream_series(params, args.working_set_mb, sizes)
    header = "C    " + "".join(f"{s.value:>12}" for s in ALL_SCHEMES)
    print(f"Figure 9(a): total cost ($), W = {args.working_set_mb:,.0f} MB")
    print(header)
    for i, c in enumerate(sizes):
        print(f"{c:<5}" + "".join(f"{costs[s][i].total:>12,.0f}"
                                  for s in ALL_SCHEMES))
    print()
    print("Figure 9(b): supported streams")
    print(header)
    for i, c in enumerate(sizes):
        print(f"{c:<5}" + "".join(f"{streams[s][i][1]:>12}"
                                  for s in ALL_SCHEMES))
    return 0


def cmd_reliability(args: argparse.Namespace) -> int:
    """Print MTTF/MTTDS for one geometry."""
    params = SystemParameters.paper_table1(num_disks=args.disks)
    print(f"Reliability at D = {args.disks}, C = {args.group_size} "
          "(MTTF 300,000 h, MTTR 1 h per disk)")
    for scheme in ALL_SCHEMES:
        mttf = mttf_catastrophic_years(params, args.group_size, scheme)
        mttds = mttds_years(params, args.group_size, scheme)
        print(f"  {scheme.display_name:<16} MTTF {mttf:>14,.1f} y   "
              f"MTTDS {mttds:>16,.1f} y")
    if args.replications > 0:
        from repro.analysis import mttf_catastrophic_hours
        from repro.faults.reliability import (
            catastrophic_condition, simulate_mean_time_to)
        from repro.layout import ClusteredParityLayout
        # Accelerated per-disk MTTF so the replications finish quickly;
        # the ratio to eq. (4) is scale-free.
        mttf_h, mttr_h = 200.0, 1.0
        fast = SystemParameters.paper_table1(
            num_disks=args.disks, mttf_disk_hours=mttf_h,
            mttr_disk_hours=mttr_h)
        expected_h = mttf_catastrophic_hours(fast, args.group_size,
                                             Scheme.STREAMING_RAID)
        layout = ClusteredParityLayout(args.disks, args.group_size)
        estimate = simulate_mean_time_to(
            args.disks, mttf_h, mttr_h, catastrophic_condition(layout),
            replications=args.replications, seed=args.seed,
            workers=args.workers)
        print(f"Monte-Carlo cross-check ({estimate.samples} replications, "
              f"accelerated MTTF {mttf_h:.0f} h, workers={args.workers}):")
        print(f"  simulated {estimate.mean_hours:,.1f} h "
              f"+/- {estimate.ci95_hours:,.1f} h   "
              f"eq. (4) {expected_h:,.1f} h")
        return 0 if estimate.consistent_with(expected_h) else 1
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    """Run the cycle simulator and print the delivery report."""
    from repro.server import MultimediaServer
    if args.fast_forward and not args.metadata_only:
        print("--fast-forward requires --metadata-only (payload "
              "verification forces the scalar path)")
        return 2
    params = SystemParameters.paper_table1(
        num_disks=args.disks,
        track_size_mb=512 / 1e6,
        disk_capacity_mb=512 * 2000 / 1e6,
    )
    server = MultimediaServer.build(
        params, args.group_size, args.scheme,
        slots_per_disk=8, verify_payloads=not args.metadata_only)
    names = server.catalog.names()
    for index in range(args.streams):
        server.admit(names[index % len(names)])
    boundaries = sorted({
        cycle for cycle in (
            args.fail_cycle if args.fail_disk is not None else None,
            args.repair_cycle if args.fail_disk is not None else None)
        if cycle is not None and 0 <= cycle < args.cycles})
    previous = 0
    for boundary in boundaries:
        server.run_cycles(boundary - previous,
                          fast_forward=args.fast_forward)
        if boundary == args.fail_cycle:
            server.fail_disk(args.fail_disk)
            print(f"[cycle {boundary}] disk {args.fail_disk} failed")
        if boundary == args.repair_cycle:
            server.repair_disk(args.fail_disk)
            print(f"[cycle {boundary}] disk {args.fail_disk} repaired")
        previous = boundary
    server.run_cycles(args.cycles - previous,
                      fast_forward=args.fast_forward)
    report = server.report
    print(f"{args.scheme.display_name}: {report.summary()}")
    for cause, count in sorted(report.hiccups_by_cause().items(),
                               key=lambda item: item[0].value):
        print(f"  {cause.value}: {count}")
    print(f"payload mismatches: {report.payload_mismatches}")
    return 0 if report.payload_mismatches == 0 else 1


def cmd_rebuild(args: argparse.Namespace) -> int:
    """Compare tape reload with on-line parity rebuild."""
    from repro.layout import ClusteredParityLayout
    from repro.media import MediaObject
    from repro.tertiary import TapeLibrary, compare_rebuild_paths
    params = SystemParameters.paper_table1(num_disks=args.disks)
    layout = ClusteredParityLayout(args.disks, args.group_size)
    tracks_per_movie = max(args.group_size - 1,
                           20_000 // max(args.movies, 1))
    for index in range(args.movies):
        layout.place(MediaObject(f"movie-{index}", 0.1875,
                                 tracks_per_movie, seed=index))
    comparison = compare_rebuild_paths(layout, 0, params, TapeLibrary(),
                                       idle_fraction=args.idle_fraction)
    print(f"Failed disk 0 holds {comparison.tracks} tracks")
    print(f"  tape reload   : {seconds_to_hours(comparison.tape_time_s):,.1f} hours")
    print(f"  parity rebuild: {seconds_to_hours(comparison.online_time_s):,.2f} hours "
          f"(idle fraction {args.idle_fraction})")
    print(f"  speedup       : {comparison.speedup:,.0f}x")
    return 0


def cmd_design(args: argparse.Namespace) -> int:
    """Recommend the cheapest feasible design (Section 5 workflow)."""
    from repro.analysis import recommend_design
    params = SystemParameters.paper_table1(reserve_k=5)
    best = recommend_design(params, args.working_set_mb, args.streams,
                            min_mttf_years=args.min_mttf_years)
    print(f"requirement: {args.streams} streams over "
          f"{args.working_set_mb:,.0f} MB of content")
    if best is None:
        print("no feasible design — relax the requirement or add disks")
        return 1
    print(f"recommended: {best.describe()}")
    print(f"  MTTDS {best.mttds_years:,.0f} years")
    return 0


def cmd_scale(args: argparse.Namespace) -> int:
    """Print the Section 1 system-scale arithmetic."""
    from repro.analysis.sizing import section1_scale
    scale = section1_scale(args.disks, args.disk_capacity_mb,
                           args.disk_bandwidth_mb_s)
    print(f"{args.disks} disks x {args.disk_capacity_mb:,.0f} MB at "
          f"{args.disk_bandwidth_mb_s} MB/s each:")
    print(f"  storage : {scale.mpeg2_movies} MPEG-2 movies or "
          f"{scale.mpeg1_movies} MPEG-1 movies (90 min)")
    print(f"  bandwidth: {scale.mpeg2_users:,} MPEG-2 users or "
          f"{scale.mpeg1_users:,} MPEG-1 users")
    return 0


def cmd_verify(_args: argparse.Namespace) -> int:
    """Self-check the reproduction's headline numbers against the paper."""
    from repro.analysis import compare_schemes
    from repro.analysis.sizing import section1_scale
    from repro.analysis.streams import k_sweep

    checks: list[tuple[str, bool]] = []

    def check(label: str, condition: bool) -> None:
        checks.append((label, condition))
        print(f"  [{'ok' if condition else 'FAIL'}] {label}")

    print("Verifying the reproduction against the paper's numbers:")
    params = SystemParameters.paper_table1()
    table2 = compare_schemes(params, 5)
    expected2 = {"SR": (1041, 10410), "SG": (966, 3623),
                 "NC": (966, 2612), "IB": (1263, 10104)}
    for scheme, metrics in table2.items():
        streams, buffers = expected2[scheme.value]
        check(f"Table 2 {scheme.value}: {streams} streams, "
              f"{buffers} buffer tracks",
              metrics.streams == streams
              and metrics.buffer_tracks == buffers)
    table3 = compare_schemes(params, 7)
    check("Table 3 streams row: 1125/1035/1035/1273",
          [m.streams for m in table3.values()] == [1125, 1035, 1035, 1273])
    check("Table 2 MTTDS (NC): 3,176,862.3 years",
          abs(table2[Scheme.NON_CLUSTERED].mttds_years - 3_176_862.3) < 1)
    sweep = k_sweep(SystemParameters.paper_section2(4.5), [1, 2, 10])
    check("Section 2 k-sweep: 14.7 / 16.2 / 17.4",
          abs(sweep[1] - 14.78) < 0.05 and abs(sweep[2] - 16.28) < 0.05
          and abs(sweep[10] - 17.48) < 0.05)
    big = SystemParameters.paper_table1(num_disks=1000)
    check("Section 2 MTTF (D=1000, C=10): ~1141 years",
          abs(mttf_catastrophic_years(big, 10, Scheme.STREAMING_RAID)
              - 1141.6) < 1)
    scale = section1_scale()
    check("Section 1 scale: 329/987 movies, 7111/21333 users",
          (scale.mpeg2_movies, scale.mpeg1_movies,
           scale.mpeg2_users, scale.mpeg1_users) == (329, 987, 7111, 21333))
    failures = [label for label, ok in checks if not ok]
    print(f"{len(checks) - len(failures)}/{len(checks)} checks passed")
    return 1 if failures else 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Run seeded chaos campaigns; non-zero exit on invariant violations."""
    from repro.faults.chaos import (
        ChaosProfile, campaign_seeds, run_campaign_grid, run_campaigns)
    if args.scheme.lower() == "all":
        schemes = None
    else:
        schemes = [_scheme(args.scheme)]
    profile = ChaosProfile(cycles=args.cycles,
                           max_concurrent_failures=args.max_failures)
    if args.runs > 1:
        results = run_campaign_grid(
            campaign_seeds(args.seed, args.runs), schemes=schemes,
            profile=profile,
            check_payload_mode=not args.skip_payload_check,
            workers=args.workers)
    else:
        results = run_campaigns(
            args.seed, schemes=schemes, profile=profile,
            check_payload_mode=not args.skip_payload_check,
            workers=args.workers)
    failed = 0
    for result in results:
        flag = "ok" if result.passed else "FAIL"
        print(f"[{flag}] {result.scheme.display_name}: seed {result.seed}, "
              f"{result.cycles} cycles, {result.events} fault events")
        print(f"       hiccups {result.total_hiccups}, media errors "
              f"{result.total_media_errors}, streams shed "
              f"{result.total_streams_shed}, data-loss events "
              f"{result.data_loss_events}, scrub repairs "
              f"{result.scrub_repairs}")
        print(f"       digest {result.digest[:16]}")
        for violation in result.violations:
            print(f"       violation: {violation}")
        failed += 0 if result.passed else 1
    print(f"{len(results) - failed}/{len(results)} campaigns clean")
    return 1 if failed else 0


def cmd_cluster(args: argparse.Namespace) -> int:
    """Run one sharded cluster and print (or JSON-dump) the report."""
    import json as json_module
    from repro.cluster import (ClusterChaosProfile, ClusterSpec,
                               run_cluster, run_cluster_campaign)
    spec = ClusterSpec(
        scheme=args.scheme,
        shards=args.shards,
        disks_per_shard=args.disks,
        parity_group_size=args.group_size,
        cycles=args.cycles,
        arrivals_per_cycle=args.arrivals_per_cycle,
        replicate_top_k=args.replicate_top_k,
        seed=args.seed,
        fast_forward=args.fast_forward,
    )
    campaign = None
    if args.chaos:
        profile = ClusterChaosProfile(
            max_concurrent_failures=args.chaos_max_failures)
        campaign = run_cluster_campaign(spec, args.seed, profile=profile,
                                        workers=args.workers)
        result = campaign.report
    else:
        result = run_cluster(spec, workers=args.workers)
    if args.json:
        payload = {
            "shards": result.spec.shards,
            "workers": result.workers,
            "admitted": result.admitted,
            "rejected": result.rejected,
            "unarrived": result.unarrived,
            "capacity": result.capacity,
            "hiccups": result.report.total_hiccups,
            "digest": result.digest(),
            "ff_disengagements": result.ff_disengagement_totals(),
            "per_shard": [
                {"shard": s.shard_id, "routed": s.routed,
                 "admitted": s.admitted, "rejected": s.rejected,
                 "effective_limit": s.effective_limit,
                 "ff_engaged_cycles": s.ff_engaged_cycles,
                 "ff_disengagements": dict(s.ff_disengagements)}
                for s in result.per_shard],
        }
        if campaign is not None:
            payload["chaos"] = {
                "events": campaign.events,
                "deterministic": campaign.passed,
                "violations": campaign.violations,
            }
        print(json_module.dumps(payload, indent=2))
    else:
        print(result.summary())
        for shard in result.per_shard:
            print(f"  shard {shard.shard_id}: routed {shard.routed}, "
                  f"admitted {shard.admitted}, rejected {shard.rejected}, "
                  f"effective limit {shard.effective_limit}, "
                  f"ff {shard.ff_engaged_cycles} cycles")
        if campaign is not None:
            verdict = ("deterministic" if campaign.passed
                       else "DIVERGED: " + "; ".join(campaign.violations))
            print(f"  chaos: {campaign.events} scripted faults, {verdict}")
    if campaign is not None and not campaign.passed:
        return 1
    return 0 if result.report.total_lost_tracks == 0 else 1


def cmd_experiments(args: argparse.Namespace) -> int:
    """Regenerate registered experiments; non-zero exit on any mismatch."""
    import json as json_module
    from repro.experiments import list_experiments, run_all, run_experiment
    if args.name is None:
        results = run_all()
    else:
        if args.name not in list_experiments():
            print(f"unknown experiment {args.name!r}; known: "
                  + ", ".join(list_experiments()))
            return 2
        results = [run_experiment(args.name)]
    all_match = True
    for result in results:
        flag = "ok" if result.matches_paper else "MISMATCH"
        print(f"[{flag}] {result.experiment_id}: {result.title}")
        if args.json:
            print(json_module.dumps(result.rows, indent=2))
        if result.notes:
            print(f"       note: {result.notes}")
        all_match &= result.matches_paper
    return 0 if all_match else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "table2": cmd_table,
        "table3": cmd_table,
        "ksweep": cmd_ksweep,
        "fig9": cmd_fig9,
        "reliability": cmd_reliability,
        "simulate": cmd_simulate,
        "rebuild": cmd_rebuild,
        "design": cmd_design,
        "scale": cmd_scale,
        "verify": cmd_verify,
        "chaos": cmd_chaos,
        "cluster": cmd_cluster,
        "experiments": cmd_experiments,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
