"""Unit conversion helpers.

The paper quotes object bandwidths in megabits per second (Mb/s) but all of
its equations use megabytes per second (MB/s), track sizes in kilobytes, and
timings in milliseconds.  Mixing these silently is the single easiest way to
get every downstream number wrong, so this module provides one tiny, explicit
vocabulary used throughout the package:

* canonical data unit: **megabyte (MB)**, decimal (1 MB = 1000 KB), matching
  the paper's arithmetic (B = 50 KB = 0.05 MB).
* canonical time unit: **second**.
* canonical rate unit: **MB/s**.

Example
-------
>>> mbits_per_sec(1.5)
0.1875
>>> kilobytes(50)
0.05
"""

from __future__ import annotations

BITS_PER_BYTE = 8

#: Hours in a (non-leap) year; used by the paper's reliability numbers
#: (e.g. 2.25e8 hours -> 25,684.9 years).
HOURS_PER_YEAR = 8760.0


def mbits_per_sec(value_mbps: float) -> float:
    """Convert megabits/second to megabytes/second.

    >>> mbits_per_sec(4.5)
    0.5625
    """
    return value_mbps / BITS_PER_BYTE


def mbytes_per_sec_to_mbits(value_mBps: float) -> float:
    """Convert megabytes/second to megabits/second."""
    return value_mBps * BITS_PER_BYTE


def kilobytes(value_kb: float) -> float:
    """Convert (decimal) kilobytes to megabytes.

    The paper uses decimal units: 50 KB tracks are 0.05 MB.
    """
    return value_kb / 1000.0


def megabytes(value_mb: float) -> float:
    """Identity helper so call sites can name their unit explicitly."""
    return float(value_mb)


def mb_to_bytes(value_mb: float) -> int:
    """Convert (decimal) megabytes to whole bytes.

    >>> mb_to_bytes(0.05)
    50000
    """
    return int(round(value_mb * 1_000_000))


def bytes_to_mb(value_bytes: float) -> float:
    """Convert whole bytes to (decimal) megabytes.

    >>> bytes_to_mb(50000)
    0.05
    """
    return value_bytes / 1_000_000


def gigabytes(value_gb: float) -> float:
    """Convert (decimal) gigabytes to megabytes."""
    return value_gb * 1000.0


def milliseconds(value_ms: float) -> float:
    """Convert milliseconds to seconds.

    >>> milliseconds(25)
    0.025
    """
    return value_ms / 1000.0


def seconds(value_s: float) -> float:
    """Identity helper so call sites can name their unit explicitly."""
    return float(value_s)


def minutes(value_min: float) -> float:
    """Convert minutes to seconds."""
    return value_min * 60.0


def hours(value_h: float) -> float:
    """Convert hours to seconds."""
    return value_h * 3600.0


def seconds_to_microseconds(value_s: float) -> float:
    """Convert seconds to microseconds (per-cycle timing reports).

    >>> seconds_to_microseconds(0.002)
    2000.0
    """
    return value_s * 1_000_000


def seconds_to_hours(value_s: float) -> float:
    """Convert seconds to hours (for human-facing report lines).

    >>> seconds_to_hours(7200)
    2.0
    """
    return value_s / 3600.0


def hours_to_years(value_h: float) -> float:
    """Convert hours to years, as the paper's reliability tables do.

    >>> round(hours_to_years(2.25e8), 1)
    25684.9
    """
    return value_h / HOURS_PER_YEAR


def years_to_hours(value_y: float) -> float:
    """Convert years to hours."""
    return value_y * HOURS_PER_YEAR
