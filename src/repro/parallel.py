"""Deterministic sharded process-pool execution for ensemble runs.

The paper's headline numbers come from *ensembles* — Monte-Carlo
reliability replications, chaos campaigns, C/D/scheme benchmark grids —
that are embarrassingly parallel.  This module runs them across worker
processes without giving up the repo's core contract: **a run is fully
determined by its seeds**, regardless of worker count.

Three design rules make parallel runs bit-identical to serial ones:

1. **Self-seeded tasks.**  Each :class:`TaskSpec` carries everything its
   result depends on; nothing is read from shared mutable state.  Seeds
   for shards are derived ahead of time (:func:`derive_seeds`, built on
   ``numpy.random.SeedSequence.spawn``) so shard *i*'s stream is a pure
   function of ``(root_seed, i)``.
2. **Spawn-safety at construction.**  Pools use the ``spawn`` start
   method (fresh interpreters — the only portable choice, and the one
   that cannot silently fork half-mutated state).  Task callables must
   therefore be picklable: module-level functions in importable modules.
   Lambdas, closures and ``__main__``-only functions are rejected when
   the :class:`TaskSpec` is built — loudly, and identically for
   ``workers=1`` — so a workload never *becomes* unparallelisable.
   Rule R7 of ``repro.checks`` enforces the same contract statically.
3. **Ordered merge.**  Results are returned (or streamed into a
   reducer) strictly in task-submission order, whatever order workers
   finish in.  Aggregations are therefore independent of scheduling.

``workers=1`` never creates a pool: tasks run in-process, in order, so
small runs and debugging sessions pay zero multiprocessing overhead.

For stateful shards — a cluster of servers stepped through many trace
segments — re-pickling the server per task would dominate the run.
:class:`SessionPool` is the **persistent-worker session mode**: each
session's state is built *once*, inside a long-lived spawn worker, from
a self-contained :class:`TaskSpec`; subsequent steps ship only the step
function and its (small) arguments, and the state never crosses a
process boundary again.  Sessions are multiplexed round-robin over the
worker processes, results always come back in session order, and
``workers=1`` keeps every state in-process — so, exactly like
:class:`ParallelRunner`, the two modes are interchangeable bit for bit.
"""

from __future__ import annotations

import functools
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing.connection import Connection
from typing import Any, Callable, Iterable, Optional, Sequence

from numpy.random import SeedSequence

from repro.errors import SpawnSafetyError


def spawn_safety_violation(value: object) -> Optional[str]:
    """Why ``value`` cannot ride in a spawn-based task, or ``None``.

    Checks the properties pickling relies on without actually pickling
    (payloads can be large): the callable must be addressable as
    ``module.qualname`` in a freshly spawned interpreter.
    """
    target = value.func if isinstance(value, functools.partial) else value
    if not callable(target):
        return None
    qualname = getattr(target, "__qualname__", "")
    module = getattr(target, "__module__", "")
    if "<lambda>" in qualname:
        return "lambdas are not picklable under the spawn start method"
    if "<locals>" in qualname:
        return (f"{qualname!r} is defined inside a function; spawn "
                "workers cannot import it")
    if module == "__main__":
        return (f"{qualname!r} lives in __main__; spawn workers "
                "re-import the script and will not find it")
    return None


@dataclass(frozen=True, slots=True)
class TaskSpec:
    """One self-contained unit of ensemble work.

    ``fn(*args, **kwargs)`` must depend only on its arguments (plus
    imported module code), so running it in another process — or another
    week — gives the same answer.  Construction validates spawn-safety
    of ``fn`` and of every callable argument; see
    :func:`spawn_safety_violation`.
    """

    fn: Callable[..., Any]
    args: tuple[Any, ...] = ()
    kwargs: dict[str, Any] = field(default_factory=dict)
    label: str = ""

    def __post_init__(self) -> None:
        problem = spawn_safety_violation(self.fn)
        if problem is not None:
            raise SpawnSafetyError(f"task {self.label or '?'}: {problem}")
        for position, value in enumerate(self.args):
            problem = spawn_safety_violation(value)
            if problem is not None:
                raise SpawnSafetyError(
                    f"task {self.label or '?'} argument {position}: "
                    f"{problem}")
        for name, value in self.kwargs.items():
            problem = spawn_safety_violation(value)
            if problem is not None:
                raise SpawnSafetyError(
                    f"task {self.label or '?'} argument {name!r}: "
                    f"{problem}")


def _execute(spec: TaskSpec) -> Any:
    """Run one task (module-level so the spec itself is the only pickle)."""
    return spec.fn(*spec.args, **spec.kwargs)


class ParallelRunner:
    """Runs :class:`TaskSpec` batches with deterministic, ordered merge.

    ``workers=1`` executes in-process (no pool, no pickling at run time);
    ``workers>1`` fans out over a spawn-context process pool.  Either
    way, results come back in task order, so the two modes are
    interchangeable bit for bit.
    """

    __slots__ = ("workers",)

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def run(self, tasks: Iterable[TaskSpec],
            reducer: Optional[Callable[[Any, Any], Any]] = None,
            initial: Any = None) -> Any:
        """Execute every task; return ordered results or a reduction.

        Without ``reducer``: a list of results in task order.  With
        ``reducer``: results are folded as ``acc = reducer(acc, result)``
        strictly in task order, starting from ``initial`` — but
        *streamingly*, so completed shards are merged (and freed) while
        slower shards still run.
        """
        specs = list(tasks)
        for spec in specs:
            if not isinstance(spec, TaskSpec):
                raise TypeError(
                    f"ParallelRunner.run takes TaskSpec items, got "
                    f"{type(spec).__name__}")
        if self.workers == 1 or len(specs) <= 1:
            return self._run_serial(specs, reducer, initial)
        return self._run_pool(specs, reducer, initial)

    def _run_serial(self, specs: Sequence[TaskSpec],
                    reducer: Optional[Callable[[Any, Any], Any]],
                    initial: Any) -> Any:
        if reducer is None:
            return [_execute(spec) for spec in specs]
        accumulator = initial
        for spec in specs:
            accumulator = reducer(accumulator, _execute(spec))
        return accumulator

    def _run_pool(self, specs: Sequence[TaskSpec],
                  reducer: Optional[Callable[[Any, Any], Any]],
                  initial: Any) -> Any:
        width = min(self.workers, len(specs))
        with ProcessPoolExecutor(max_workers=width,
                                 mp_context=get_context("spawn")) as pool:
            futures = {pool.submit(_execute, spec): index
                       for index, spec in enumerate(specs)}
            if reducer is None:
                results: list[Any] = [None] * len(specs)
                for future in as_completed(futures):
                    results[futures[future]] = future.result()
                return results
            # Stream the fold in task order: buffer only the shards that
            # finished ahead of the merge frontier.
            accumulator = initial
            frontier = 0
            ready: dict[int, Any] = {}
            for future in as_completed(futures):
                ready[futures[future]] = future.result()
                while frontier in ready:
                    accumulator = reducer(accumulator, ready.pop(frontier))
                    frontier += 1
            return accumulator


def _session_worker(conn: Connection) -> None:
    """Long-lived worker loop: hold session states, run steps against them.

    All state lives in locals (never at module scope — rule R7), so a
    spawned worker cannot silently diverge from its parent: everything
    it knows arrived through an explicit, validated :class:`TaskSpec`.

    Protocol (parent -> worker):

    * ``("init", sid, spec)``  — build session ``sid``'s state as
      ``spec.fn(*spec.args, **spec.kwargs)``;
    * ``("step", sid, spec)``  — run ``spec.fn(state, *spec.args,
      **spec.kwargs)`` against the held state;
    * ``("stop",)``            — drop every state and exit.

    Every init/step is answered with ``(sid, ok, payload)`` where
    ``payload`` is the result or, on failure, the exception.
    """
    states: dict[int, Any] = {}
    while True:
        message = conn.recv()
        kind = message[0]
        if kind == "stop":
            conn.close()
            return
        _, sid, spec = message
        try:
            if kind == "init":
                states[sid] = _execute(spec)
                result: Any = None
            else:
                result = spec.fn(states[sid], *spec.args, **spec.kwargs)
            conn.send((sid, True, result))
        except Exception as exc:
            conn.send((sid, False, exc))


class SessionPool:
    """Persistent per-session state over long-lived spawn workers.

    ``sessions`` is one :class:`TaskSpec` per session; each is executed
    exactly once to *build* that session's state (e.g. a fully loaded
    shard server) inside whichever worker owns the session.  Sessions
    are assigned round-robin: session ``i`` lives in worker ``i % W``
    for the whole pool lifetime, so its state is built once and stepped
    in place — never re-pickled between steps.

    ``workers=1`` builds every state in-process and steps it directly:
    no processes, no pickling, and — because steps are applied to each
    session in the same order either way — results bit-identical to any
    other worker count.

    Use as a context manager, or call :meth:`close` explicitly.
    """

    __slots__ = ("workers", "_specs", "_states", "_conns", "_procs",
                 "_owner", "_closed")

    def __init__(self, sessions: Sequence[TaskSpec],
                 workers: int = 1) -> None:
        specs = list(sessions)
        for spec in specs:
            if not isinstance(spec, TaskSpec):
                raise TypeError(
                    f"SessionPool takes TaskSpec sessions, got "
                    f"{type(spec).__name__}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if not specs:
            raise ValueError("SessionPool needs at least one session")
        self.workers = min(workers, len(specs))
        self._specs = specs
        self._states: list[Any] = []
        self._conns: list[Connection] = []
        self._procs: list[Any] = []
        #: session index -> owning worker index (round-robin pinning).
        self._owner = [index % self.workers for index in range(len(specs))]
        self._closed = False
        if self.workers == 1:
            self._states = [_execute(spec) for spec in specs]
            return
        context = get_context("spawn")
        for _ in range(self.workers):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(target=_session_worker,
                                      args=(child_conn,), daemon=True)
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(process)
        # Ship every session's build spec to its owner, then collect the
        # acknowledgements — builds proceed concurrently across workers.
        for sid, spec in enumerate(specs):
            self._conns[self._owner[sid]].send(("init", sid, spec))
        self._collect(len(specs))

    def __len__(self) -> int:
        return len(self._specs)

    def __enter__(self) -> "SessionPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def step_all(self, fn: Callable[..., Any],
                 args: Optional[Sequence[tuple[Any, ...]]] = None,
                 label: str = "") -> list[Any]:
        """Run ``fn(state, *args[i])`` against every session's state.

        Returns results in session order.  ``fn`` must be a module-level
        function (spawn workers import it by qualified name); spawn
        safety of the function and of every argument is validated up
        front via :class:`TaskSpec`, identically for ``workers=1``.  All
        step messages are dispatched before any result is awaited, so
        sessions owned by different workers run concurrently.
        """
        if self._closed:
            raise RuntimeError("SessionPool is closed")
        count = len(self._specs)
        if args is None:
            args = [()] * count
        if len(args) != count:
            raise ValueError(
                f"step_all got {len(args)} argument tuples for "
                f"{count} sessions")
        specs = [TaskSpec(fn, args=tuple(step_args),
                          label=label or getattr(fn, "__name__", "step"))
                 for step_args in args]
        if self.workers == 1:
            return [spec.fn(state, *spec.args)
                    for state, spec in zip(self._states, specs)]
        for sid, spec in enumerate(specs):
            self._conns[self._owner[sid]].send(("step", sid, spec))
        return self._collect(count)

    def _collect(self, expected: int) -> list[Any]:
        """Gather ``expected`` replies, restored to session order.

        Each worker answers its own messages in the order they were
        sent, so draining per-worker queues round-robin is deadlock-free
        and deterministic.
        """
        results: list[Any] = [None] * len(self._specs)
        pending = expected
        per_worker = [0] * self.workers
        for sid in range(len(self._specs)):
            per_worker[self._owner[sid]] += 1
        for worker, conn in enumerate(self._conns):
            for _ in range(per_worker[worker]):
                if pending == 0:
                    break
                sid, ok, payload = conn.recv()
                if not ok:
                    self.close()
                    raise payload
                results[sid] = payload
                pending -= 1
        return results

    def close(self) -> None:
        """Stop every worker and drop the held states (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._states = []
        for conn in self._conns:
            try:
                conn.send(("stop",))
                conn.close()
            except (BrokenPipeError, OSError):  # worker already gone
                pass
        for process in self._procs:
            process.join(timeout=10.0)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=5.0)
        self._conns = []
        self._procs = []


def derive_seeds(root_seed: int, count: int) -> tuple[int, ...]:
    """``count`` independent shard seeds derived from one root seed.

    Built on ``numpy.random.SeedSequence.spawn``: child *i* is a pure
    function of ``(root_seed, i)``, statistically independent of its
    siblings, and stable across platforms and numpy versions — the same
    ensemble sharded differently still sees the same seeds.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    children = SeedSequence(root_seed).spawn(count)
    return tuple(int(child.generate_state(1, dtype="uint64")[0])
                 for child in children)


def shard_ranges(total: int, shards: int) -> tuple[tuple[int, int], ...]:
    """Split ``range(total)`` into up to ``shards`` contiguous spans.

    Spans are balanced (sizes differ by at most one) and returned in
    order, so concatenating per-span results reproduces the serial
    sequence exactly.  Empty spans are omitted.
    """
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    shards = min(shards, total) if total else 0
    spans: list[tuple[int, int]] = []
    start = 0
    for index in range(shards):
        size = total // shards + (1 if index < total % shards else 0)
        spans.append((start, start + size))
        start += size
    return tuple(spans)
