"""The four fault-tolerance schemes the paper compares (Section 5)."""

from __future__ import annotations

import enum


class Scheme(enum.Enum):
    """One of the paper's four data-layout/scheduling schemes."""

    #: Streaming RAID (Tobagi et al. 1993; paper Section 2): clusters with a
    #: dedicated parity disk; a full parity group is read per stream per
    #: cycle (k = k' = C - 1).
    STREAMING_RAID = "SR"

    #: Staggered group (Section 2): same layout as SR, but a stream's group
    #: read is staggered and delivered over the following C - 1 cycles
    #: (k = C - 1, k' = 1), roughly halving the memory requirement.
    STAGGERED_GROUP = "SG"

    #: Non-clustered with a shared buffer pool (Section 3): only the next
    #: track per stream is read each cycle (k = k' = 1); a disk failure
    #: triggers a transition to degraded (group-at-a-time) reads.
    NON_CLUSTERED = "NC"

    #: Improved bandwidth (Section 4): parity of cluster i lives on cluster
    #: i + 1, so all D disks serve data in normal mode; failures shift load
    #: to the right (k = k' = C - 1).
    IMPROVED_BANDWIDTH = "IB"

    #: Parity-declustered (extension; Dau et al., arXiv:1209.6152): parity
    #: groups map to C-subsets of *all* D disks through a balanced block
    #: design, so a failed disk's reconstruction reads spread uniformly
    #: over every survivor and the rebuild window shrinks by the
    #: declustering ratio alpha = (C - 1) / (D - 1).  Reads are
    #: group-at-a-time like SR (k = k' = C - 1).
    PARITY_DECLUSTERED = "PD"

    @property
    def display_name(self) -> str:
        """The scheme's human-readable name as used in the paper's tables."""
        return {
            Scheme.STREAMING_RAID: "Streaming RAID",
            Scheme.STAGGERED_GROUP: "Staggered-group",
            Scheme.NON_CLUSTERED: "Non-clustered",
            Scheme.IMPROVED_BANDWIDTH: "Improved BW",
            Scheme.PARITY_DECLUSTERED: "Parity-declustered",
        }[self]

    @property
    def uses_dedicated_parity_disks(self) -> bool:
        """True for the clustered layouts (SR/SG/NC)."""
        return self not in (Scheme.IMPROVED_BANDWIDTH,
                            Scheme.PARITY_DECLUSTERED)

    def read_granularity(self, parity_group_size: int) -> tuple[int, int]:
        """``(k, k')`` for this scheme at parity-group size ``C``.

        Section 5: SR and IB use k = k' = C - 1; SG uses k = C - 1 with
        k' = 1; NC uses k = k' = 1.  PD reads whole groups like SR.
        """
        stripe = parity_group_size - 1
        if self in (Scheme.STREAMING_RAID, Scheme.IMPROVED_BANDWIDTH,
                    Scheme.PARITY_DECLUSTERED):
            return stripe, stripe
        if self is Scheme.STAGGERED_GROUP:
            return stripe, 1
        return 1, 1


#: The paper's four schemes, in its presentation order.  Registry tables
#: and Figure-9 shape assertions encode the paper's published numbers for
#: exactly these four, so the PD extension is wired in explicitly where it
#: is compared (chaos, scale grid, benchmarks) rather than appended here.
ALL_SCHEMES = (
    Scheme.STREAMING_RAID,
    Scheme.STAGGERED_GROUP,
    Scheme.NON_CLUSTERED,
    Scheme.IMPROVED_BANDWIDTH,
)

#: Every scheme the simulator implements: the paper's four plus the
#: parity-declustered extension.
ALL_IMPLEMENTED_SCHEMES = ALL_SCHEMES + (Scheme.PARITY_DECLUSTERED,)
