"""Reproduction of *Fault Tolerant Design of Multimedia Servers*
(Berson, Golubchik, Muntz — SIGMOD 1995).

The package provides:

* :mod:`repro.analysis` — the paper's closed-form models (Tables 2–3,
  Figure 9, and the in-text capacity/reliability claims);
* :mod:`repro.server` — a discrete-event simulator of the whole server
  (disks, layouts, cycle schedulers for the four schemes, buffer
  accounting, byte-accurate parity, fault injection);
* substrates: :mod:`repro.disk`, :mod:`repro.layout`, :mod:`repro.parity`,
  :mod:`repro.media`, :mod:`repro.sched`, :mod:`repro.buffers`,
  :mod:`repro.faults`, :mod:`repro.workload`, :mod:`repro.tertiary`,
  :mod:`repro.sim`.

Quickstart::

    from repro.analysis import SystemParameters, compare_schemes
    rows = compare_schemes(SystemParameters.paper_table1(), parity_group_size=5)
"""

__version__ = "1.0.0"
