"""Exception hierarchy for the multimedia-server reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while still
being able to distinguish configuration mistakes from runtime failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this package."""


class ConfigurationError(ReproError):
    """A server/scheme configuration is internally inconsistent.

    Examples: a cluster size that does not divide the disk count, a
    non-positive track size, or ``k`` not an integer multiple of ``k'``.
    """


class AdmissionError(ReproError):
    """A stream could not be admitted (no capacity under the scheme bound)."""


class LayoutError(ReproError):
    """A block address could not be resolved (object/track out of range)."""


class DiskFailedError(ReproError):
    """A read was issued to a disk that is currently failed.

    Schedulers are expected to consult :attr:`repro.disk.drive.Disk.is_failed`
    and reroute to parity reconstruction; hitting this exception means a
    scheduler bug, so it is deliberately loud.
    """


class MediaReadError(ReproError):
    """A read hit a media (latent-sector) error at one track position.

    Unlike :class:`DiskFailedError` this is *expected* during operation —
    the robust read path catches it and recovers via retry (transient
    glitches) or per-track parity reconstruction (latent sector errors).
    """

    def __init__(self, disk_id: int, position: int,
                 transient: bool) -> None:
        kind = "transient" if transient else "latent"
        super().__init__(
            f"{kind} media error on disk {disk_id} position {position}")
        self.disk_id = disk_id
        self.position = position
        self.transient = transient


class FaultStateError(ReproError):
    """An illegal fault-domain state transition was requested.

    The per-disk state machine only admits
    operational -> degraded -> failed -> rebuilding -> operational edges
    (plus direct fail/repair); e.g. degrading a failed disk is a driver
    bug and is rejected loudly.
    """


class ReconstructionError(ReproError):
    """Parity reconstruction was attempted with insufficient surviving blocks."""


class CatastrophicFailure(ReproError):
    """Two (or more) disks in one parity group failed: data loss.

    The paper (Section 1) defines this as the failure mode requiring a
    rebuild from tertiary storage.
    """


class DegradationOfService(ReproError):
    """Insufficient disk bandwidth/buffer space to keep all streams going.

    Raised (or recorded, depending on the scheduler's policy) when the
    conditions of the paper's "degradation of service" arise, e.g. the
    Improved-bandwidth shift-to-the-right finds no idle capacity.
    """


class BufferExhausted(ReproError):
    """The shared buffer pool has no free buffer server (Non-clustered)."""


class SimulationError(ReproError):
    """Internal discrete-event-simulation invariant violated."""


class SpawnSafetyError(ReproError):
    """A parallel task payload cannot survive the spawn start method.

    Process pools use ``spawn`` (fresh interpreters, no forked state), so
    every task function and callable argument must be picklable: defined
    at module level in an importable module — no lambdas, no closures, no
    ``__main__``-only functions.  Rejecting these at task construction
    keeps ``workers=1`` and ``workers=N`` runs interchangeable.
    """
