"""The disk-resident working set and the tertiary staging path.

:class:`ContentManager` decides, per request, whether an object is already
disk-resident (a *hit* — a stream can start immediately) or must be staged
from the tape library (a *miss* — the viewer waits for the load, and one
or more cold objects may be purged to make room).

Purge rules follow the paper's constraints:

* an object with active streams is *pinned* and never purged;
* victims are chosen by the configured policy — least-recently-requested
  (LRU) or least-popular (the catalog's popularity weights);
* staging time comes from the tape model: one robot exchange + seek plus
  the transfer at tape bandwidth (objects are stored contiguously on
  tertiary, unlike their striped disk layout).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.disk.drive import DiskArray
from repro.errors import ConfigurationError, LayoutError
from repro.layout.base import DataLayout
from repro.media.catalog import Catalog
from repro.media.objects import MediaObject
from repro.tertiary.tape import TapeLibrary


class EvictionPolicy(enum.Enum):
    """How purge victims are chosen."""

    LRU = "lru"                  # least-recently-requested first
    POPULARITY = "popularity"    # least-popular (catalog weight) first


class RequestOutcome(enum.Enum):
    """What happened to a content request."""

    HIT = "hit"          # resident; stream can start now
    MISS = "miss"        # staged from tape; ready at ``ready_time_s``
    REJECTED = "rejected"  # nothing evictable; request cannot be served


@dataclass(frozen=True)
class LoadTicket:
    """The answer to one content request."""

    object_name: str
    outcome: RequestOutcome
    ready_time_s: float
    evicted: tuple[str, ...] = ()


@dataclass
class _Residency:
    """Book-keeping for one disk-resident object."""

    obj: MediaObject
    last_request_s: float = 0.0
    pins: int = 0


class ContentManager:
    """Manages the disk-resident subset of a (tertiary) library."""

    def __init__(self, layout: DataLayout, array: DiskArray,
                 library: Catalog,
                 tape: Optional[TapeLibrary] = None,
                 policy: EvictionPolicy = EvictionPolicy.LRU) -> None:
        if layout.num_disks != len(array):
            raise ConfigurationError(
                "layout and array disagree on the disk count"
            )
        self.layout = layout
        self.array = array
        self.library = library
        self.tape = tape or TapeLibrary()
        self.policy = policy
        self._resident: dict[str, _Residency] = {
            obj.name: _Residency(obj) for obj in layout.objects
        }
        for name in self._resident:
            if name not in library:
                raise ConfigurationError(
                    f"resident object {name!r} is not in the library"
                )
        self.hits = 0
        self.misses = 0
        self.rejections = 0
        self.evictions = 0
        self.bytes_staged_mb = 0.0

    # -- queries -----------------------------------------------------------------

    def is_resident(self, name: str) -> bool:
        """True if the object is currently on disk."""
        return name in self._resident

    @property
    def resident_names(self) -> list[str]:
        """Disk-resident objects, unordered guarantees aside."""
        return list(self._resident)

    def hit_rate(self) -> float:
        """Fraction of requests served without a tape load."""
        total = self.hits + self.misses + self.rejections
        return self.hits / total if total else 0.0

    # -- pinning (active streams) ---------------------------------------------------

    def pin(self, name: str) -> None:
        """Mark an object in active delivery (never purged while pinned)."""
        self._residency(name).pins += 1

    def unpin(self, name: str) -> None:
        """Release one pin."""
        residency = self._residency(name)
        if residency.pins == 0:
            raise ConfigurationError(f"object {name!r} is not pinned")
        residency.pins -= 1

    def _residency(self, name: str) -> _Residency:
        try:
            return self._resident[name]
        except KeyError:
            raise LayoutError(f"object {name!r} is not resident") from None

    # -- the request path --------------------------------------------------------------

    def request(self, name: str, now_s: float = 0.0) -> LoadTicket:
        """Serve one content request; stage from tape on a miss."""
        obj = self.library.get(name)
        if name in self._resident:
            self.hits += 1
            self._resident[name].last_request_s = now_s
            return LoadTicket(name, RequestOutcome.HIT, now_s)
        evicted = []
        while not self._fits(obj):
            victim = self._choose_victim()
            if victim is None:
                self.rejections += 1
                return LoadTicket(name, RequestOutcome.REJECTED, now_s,
                                  tuple(evicted))
            self._purge(victim)
            evicted.append(victim)
        self._stage(obj, now_s)
        self.misses += 1
        size_mb = obj.size_mb(self.array.spec.track_size_mb)
        self.bytes_staged_mb += size_mb
        ready = now_s + self.tape.fragment_fetch_time_s(size_mb)
        return LoadTicket(name, RequestOutcome.MISS, ready, tuple(evicted))

    def _fits(self, obj: MediaObject) -> bool:
        demand = self.layout.placement_demand(obj)
        capacity = self.array.spec.tracks_per_disk
        return all(
            self.layout.occupied_positions(disk_id) + count <= capacity
            for disk_id, count in demand.items()
        )

    def _choose_victim(self) -> Optional[str]:
        candidates = [name for name, residency in self._resident.items()
                      if residency.pins == 0]
        if not candidates:
            return None
        if self.policy is EvictionPolicy.LRU:
            return min(candidates,
                       key=lambda n: self._resident[n].last_request_s)
        return min(candidates, key=self.library.popularity)

    def _purge(self, name: str) -> None:
        freed = self.layout.remove(name)
        for address in freed:
            self.array[address.disk_id].discard(address.position)
        del self._resident[name]
        self.evictions += 1

    def _stage(self, obj: MediaObject, now_s: float) -> None:
        self.layout.place(obj)
        self.layout.materialise_object(self.array, obj.name)
        self._resident[obj.name] = _Residency(obj, last_request_s=now_s)
