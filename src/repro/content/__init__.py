"""Content management: which objects live on disk, and churn to tertiary.

The paper's architecture (Section 1, Figure 1): "The entire database
permanently resides on tertiary storage, from which objects are retrieved
and placed on disk drives for delivery on demand.  If the secondary
storage capacity is exhausted when an object, which is not on the disks,
is requested then one or more disk-resident objects must be purged to make
space for the requested object."
"""

from repro.content.manager import (
    ContentManager,
    EvictionPolicy,
    LoadTicket,
    RequestOutcome,
)

__all__ = [
    "ContentManager",
    "EvictionPolicy",
    "LoadTicket",
    "RequestOutcome",
]
