"""Project-wide call graph for the interprocedural rules (R8–R10).

The per-file rules of PRs 2–6 see one AST at a time; the flow rules need
to know *who calls whom* across the repo.  This module builds that graph
from the already-parsed module set:

* every module-level function and every method becomes a
  :class:`FunctionDecl`, keyed by a dotted qualname
  (``repro.sched.base.CycleScheduler._ff_classify``);
* direct calls, ``from``-imports, and module-alias calls resolve to the
  target module's functions;
* ``self.``/``cls.``/``super().`` method calls resolve through the class
  hierarchy — conservatively to *every* override in the receiver's
  hierarchy family (ancestors and descendants), because the scheduler /
  layout / disk hierarchies dispatch dynamically;
* attribute receivers with known types (``self.array.fail(...)`` where
  ``__init__`` stored an annotated ``array: DiskArray`` parameter) and
  annotated locals/parameters resolve the same way;
* attribute *loads* that hit a known ``@property`` add an edge to the
  getter (eligibility probes read properties, and a property with side
  effects must not hide from R8).

Resolution is deliberately best-effort: an unresolvable call contributes
no edge (rules built on the graph under-approximate rather than guess),
but every resolved edge records its call site so rules can honour
call-site suppressions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

#: Receivers that bind to the enclosing class.
_SELF_NAMES = frozenset({"self", "cls"})


@dataclass
class FunctionDecl:
    """One module-level function or method in the project."""

    qualname: str
    module: str
    path: str
    name: str
    cls: Optional[str]
    node: ast.AST
    lineno: int
    is_property: bool = False


@dataclass(frozen=True)
class CallEdge:
    """One resolved call site: ``caller`` invokes ``callee``."""

    caller: str
    callee: str
    path: str
    line: int


def module_name(path: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/repro/sched/base.py`` -> ``repro.sched.base``;
    ``tests/checks/test_cli.py`` -> ``tests.checks.test_cli``.
    """
    parts = [p for p in path.replace("\\", "/").split("/") if p]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def subsystem_of(path: str) -> str:
    """The subsystem a file belongs to (R10's sharing boundary).

    For ``src/repro/<pkg>/...`` it is ``<pkg>``; for a top-level module
    ``src/repro/<mod>.py`` it is ``<mod>``; anything else keeps its
    first path component (``tests``, ``benchmarks``).
    """
    parts = [p for p in path.replace("\\", "/").split("/") if p]
    # Locate ``src/repro`` anywhere in the path, not only at the start:
    # analysis may run on an absolute copy of the tree (mutation audit).
    for i in range(len(parts) - 2):
        if parts[i] == "src" and parts[i + 1] == "repro":
            head = parts[i + 2]
            return head[:-3] if head.endswith(".py") else head
    return parts[0] if parts else ""


def annotation_class(node: Optional[ast.expr]) -> Optional[str]:
    """The bare class name an annotation refers to, if recognisable.

    Unwraps ``Optional[T]``, ``T | None``, and string annotations;
    returns None for containers and unresolvable shapes.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        if text.replace(".", "").replace("_", "").isalnum():
            return text.rsplit(".", 1)[-1] or None
        return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        base = annotation_class(node.value)
        if base == "Optional":
            return annotation_class(node.slice)
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = annotation_class(node.left)
        right = annotation_class(node.right)
        if left in (None, "None"):
            return right if right != "None" else None
        if right in (None, "None"):
            return left if left != "None" else None
        return None
    return None


@dataclass
class _ModuleScope:
    """Per-module name resolution context."""

    #: local name -> (module, member) for ``from x import y [as z]``.
    from_imports: dict[str, tuple[str, str]] = field(default_factory=dict)
    #: local alias -> module for ``import x.y [as z]``.
    module_aliases: dict[str, str] = field(default_factory=dict)


class CallGraph:
    """Functions, classes, and resolved call edges for one project."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionDecl] = {}
        #: class name -> {method name -> qualname}.
        self.methods: dict[str, dict[str, str]] = {}
        #: class name -> declared base-class names.
        self.bases: dict[str, tuple[str, ...]] = {}
        #: class name -> direct subclasses.
        self.derived: dict[str, set[str]] = {}
        #: (class, attribute) -> inferred class of the attribute value.
        self.attr_types: dict[tuple[str, str], str] = {}
        #: (module, function name) -> qualname for module-level defs.
        self.module_functions: dict[tuple[str, str], str] = {}
        self.edges_from: dict[str, list[CallEdge]] = {}
        self.edges_to: dict[str, list[CallEdge]] = {}
        self._scopes: dict[str, _ModuleScope] = {}
        self._family_cache: dict[str, frozenset[str]] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def build(cls, parsed: Iterable[tuple[str, ast.Module]]) -> "CallGraph":
        """Build the graph from ``(repo-relative path, parsed tree)``."""
        graph = cls()
        modules = list(parsed)
        for path, tree in modules:
            graph._index_module(path, tree)
        # Attribute types need the full class catalog (``self.x = Cls()``
        # may construct a class indexed later), so infer in a second pass.
        for _path, tree in modules:
            for node in tree.body:
                if isinstance(node, ast.ClassDef):
                    for statement in node.body:
                        if isinstance(statement, (ast.FunctionDef,
                                                  ast.AsyncFunctionDef)):
                            graph._infer_attr_types(node.name, statement)
        for path, tree in modules:
            graph._resolve_module(path, tree)
        return graph

    def _index_module(self, path: str, tree: ast.Module) -> None:
        module = module_name(path)
        scope = self._scopes.setdefault(module, _ModuleScope())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    scope.from_imports[alias.asname or alias.name] = (
                        node.module, alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    scope.module_aliases[
                        alias.asname or alias.name.split(".")[0]
                    ] = alias.name
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(path, module, node, cls_name=None)
            elif isinstance(node, ast.ClassDef):
                self._index_class(path, module, node)

    def _index_class(self, path: str, module: str,
                     node: ast.ClassDef) -> None:
        cls_name = node.name
        bases = tuple(_bare_name(base) for base in node.bases)
        self.bases.setdefault(cls_name, bases)
        for base in bases:
            if base:
                self.derived.setdefault(base, set()).add(cls_name)
        for statement in node.body:
            if isinstance(statement, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                self._add_function(path, module, statement, cls_name)

    def _add_function(self, path: str, module: str, node: ast.AST,
                      cls_name: Optional[str]) -> None:
        name = node.name  # type: ignore[attr-defined]
        qual = (f"{module}.{cls_name}.{name}" if cls_name
                else f"{module}.{name}")
        decl = FunctionDecl(
            qualname=qual, module=module, path=path, name=name,
            cls=cls_name, node=node,
            lineno=node.lineno,  # type: ignore[attr-defined]
            is_property=any(
                _bare_name(d) == "property" or _bare_name(d) == "cached_property"
                for d in node.decorator_list),  # type: ignore[attr-defined]
        )
        # First definition wins (mirrors ProjectIndex's bare-name policy).
        self.functions.setdefault(qual, decl)
        if cls_name:
            self.methods.setdefault(cls_name, {}).setdefault(name, qual)
        else:
            self.module_functions.setdefault((module, name), qual)

    def _infer_attr_types(self, cls_name: str, method: ast.AST) -> None:
        """Record ``self.X`` value types visible in one method body.

        ``self.X: T = ...`` records T anywhere; inside ``__init__``,
        ``self.X = <annotated param>`` and ``self.X = ClassName(...)``
        record the parameter annotation / constructed class.
        """
        params: dict[str, str] = {}
        if method.name == "__init__":  # type: ignore[attr-defined]
            args = method.args  # type: ignore[attr-defined]
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                annotated = annotation_class(arg.annotation)
                if annotated:
                    params[arg.arg] = annotated
        for node in ast.walk(method):
            if isinstance(node, ast.AnnAssign) \
                    and isinstance(node.target, ast.Attribute) \
                    and _receiver_name(node.target.value) in _SELF_NAMES:
                annotated = annotation_class(node.annotation)
                if annotated:
                    self.attr_types.setdefault(
                        (cls_name, node.target.attr), annotated)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Attribute) \
                    and _receiver_name(node.targets[0].value) in _SELF_NAMES:
                attr = node.targets[0].attr
                value = node.value
                if isinstance(value, ast.Name) and value.id in params:
                    self.attr_types.setdefault((cls_name, attr),
                                               params[value.id])
                elif isinstance(value, ast.Call):
                    callee = _bare_name(value.func)
                    if callee in self.bases or callee in self.methods:
                        self.attr_types.setdefault((cls_name, attr), callee)

    # -- hierarchy queries ---------------------------------------------------

    def family(self, cls_name: str) -> frozenset[str]:
        """The class plus all its known ancestors and descendants."""
        cached = self._family_cache.get(cls_name)
        if cached is not None:
            return cached
        members = {cls_name}
        frontier = [cls_name]
        while frontier:
            current = frontier.pop()
            for base in self.bases.get(current, ()):
                if base and base not in members and base in self.bases:
                    members.add(base)
                    frontier.append(base)
        frontier = list(members)
        while frontier:
            current = frontier.pop()
            for sub in self.derived.get(current, ()):
                if sub not in members:
                    members.add(sub)
                    frontier.append(sub)
        result = frozenset(members)
        self._family_cache[cls_name] = result
        return result

    def ancestors(self, cls_name: str) -> frozenset[str]:
        """All known base classes, transitively (excludes the class)."""
        members: set[str] = set()
        frontier = list(self.bases.get(cls_name, ()))
        while frontier:
            current = frontier.pop()
            if current and current not in members:
                members.add(current)
                frontier.extend(self.bases.get(current, ()))
        return frozenset(members)

    def resolve_method(self, cls_name: str, method: str,
                       ancestors_only: bool = False) -> list[str]:
        """Qualnames a ``<cls>.method(...)`` dispatch may reach."""
        pool = (self.ancestors(cls_name) if ancestors_only
                else self.family(cls_name))
        found = [self.methods[c][method] for c in sorted(pool)
                 if method in self.methods.get(c, {})]
        return found

    def property_getter(self, cls_name: str,
                        attribute: str) -> Optional[str]:
        """The property getter an attribute load would invoke, if any."""
        for candidate in self.resolve_method(cls_name, attribute):
            if self.functions[candidate].is_property:
                return candidate
        return None

    # -- call resolution -----------------------------------------------------

    def _resolve_module(self, path: str, tree: ast.Module) -> None:
        module = module_name(path)
        for decl_body, cls_name in _iter_functions(tree):
            name = decl_body.name
            qual = (f"{module}.{cls_name}.{name}" if cls_name
                    else f"{module}.{name}")
            caller = self.functions.get(qual)
            if caller is None or caller.node is not decl_body:
                continue
            self._resolve_function(caller)

    def _resolve_function(self, caller: FunctionDecl) -> None:
        scope = self._scopes.get(caller.module, _ModuleScope())
        local_types = _local_types(caller.node, self)
        edges: list[CallEdge] = []
        seen: set[tuple[str, int]] = set()

        def add(callee: str, line: int) -> None:
            key = (callee, line)
            if callee in self.functions and key not in seen:
                seen.add(key)
                edges.append(CallEdge(caller=caller.qualname, callee=callee,
                                      path=caller.path, line=line))

        for node in ast.walk(caller.node):
            if isinstance(node, ast.Call):
                for target in self._call_targets(node, caller, scope,
                                                 local_types):
                    add(target, node.lineno)
            elif isinstance(node, ast.Attribute) \
                    and isinstance(node.ctx, ast.Load):
                receiver = self._receiver_class(node.value, caller, scope,
                                                local_types)
                if receiver:
                    getter = self.property_getter(receiver, node.attr)
                    if getter:
                        add(getter, node.lineno)
        self.edges_from[caller.qualname] = edges
        for edge in edges:
            self.edges_to.setdefault(edge.callee, []).append(edge)

    def _call_targets(self, node: ast.Call, caller: FunctionDecl,
                      scope: _ModuleScope,
                      local_types: dict[str, str]) -> list[str]:
        func = node.func
        if isinstance(func, ast.Name):
            return self._name_targets(func.id, caller, scope)
        if isinstance(func, ast.Attribute):
            receiver = func.value
            # super().method(...)
            if isinstance(receiver, ast.Call) \
                    and isinstance(receiver.func, ast.Name) \
                    and receiver.func.id == "super" and caller.cls:
                return self.resolve_method(caller.cls, func.attr,
                                           ancestors_only=True)
            # module_alias.func(...)
            rec_name = _receiver_name(receiver)
            if isinstance(receiver, ast.Name) \
                    and rec_name in scope.module_aliases:
                target = self.module_functions.get(
                    (scope.module_aliases[rec_name], func.attr))
                return [target] if target else []
            receiver_cls = self._receiver_class(receiver, caller, scope,
                                                local_types)
            if receiver_cls:
                return self.resolve_method(receiver_cls, func.attr)
        return []

    def _name_targets(self, name: str, caller: FunctionDecl,
                      scope: _ModuleScope) -> list[str]:
        target = self.module_functions.get((caller.module, name))
        if target:
            return [target]
        imported = scope.from_imports.get(name)
        if imported:
            module, member = imported
            target = self.module_functions.get((module, member))
            if target:
                return [target]
            if member in self.methods and "__init__" in self.methods[member]:
                return [self.methods[member]["__init__"]]
        if name in self.methods and "__init__" in self.methods[name]:
            return [self.methods[name]["__init__"]]
        return []

    def _receiver_class(self, receiver: ast.expr, caller: FunctionDecl,
                        scope: _ModuleScope,
                        local_types: dict[str, str]) -> Optional[str]:
        """The class a call/attribute receiver expression is known to be."""
        if isinstance(receiver, ast.Name):
            if receiver.id in _SELF_NAMES and caller.cls:
                return caller.cls
            return local_types.get(receiver.id)
        if isinstance(receiver, ast.Attribute) \
                and _receiver_name(receiver.value) in _SELF_NAMES \
                and caller.cls:
            for cls_name in sorted(self.family(caller.cls)):
                inferred = self.attr_types.get((cls_name, receiver.attr))
                if inferred:
                    return inferred
        return None

    # -- file-level views (incremental mode) ---------------------------------

    def file_dependents(self, targets: set[str]) -> set[str]:
        """Files whose functions (transitively) call into ``targets``.

        The reverse closure at file granularity: the result includes the
        target files themselves.
        """
        calls_into: dict[str, set[str]] = {}
        for edges in self.edges_from.values():
            for edge in edges:
                callee_path = self.functions[edge.callee].path
                if edge.path != callee_path:
                    calls_into.setdefault(callee_path, set()).add(edge.path)
        result = set(targets)
        frontier = list(targets)
        while frontier:
            current = frontier.pop()
            for dependent in calls_into.get(current, ()):
                if dependent not in result:
                    result.add(dependent)
                    frontier.append(dependent)
        return result


def _iter_functions(tree: ast.Module,
                    ) -> Iterator[tuple[ast.AST, Optional[str]]]:
    """Yield ``(function node, enclosing class name)`` for every
    module-level function and method (nested defs belong to their
    enclosing function and are not yielded separately)."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, None
        elif isinstance(node, ast.ClassDef):
            for statement in node.body:
                if isinstance(statement, (ast.FunctionDef,
                                          ast.AsyncFunctionDef)):
                    yield statement, node.name


def _local_types(func: ast.AST, graph: CallGraph) -> dict[str, str]:
    """Best-effort local-variable and parameter types for one function."""
    types: dict[str, str] = {}
    args = func.args  # type: ignore[attr-defined]
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        annotated = annotation_class(arg.annotation)
        if annotated:
            types[arg.arg] = annotated
    for node in ast.walk(func):
        if isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name):
            annotated = annotation_class(node.annotation)
            if annotated:
                types.setdefault(node.target.id, annotated)
        elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Call):
            constructed = _bare_name(node.value.func)
            if constructed in graph.bases:
                types.setdefault(node.targets[0].id, constructed)
    return types


def _bare_name(node: ast.expr) -> str:
    """Bare trailing name of a Name/Attribute/Call expression."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _receiver_name(node: ast.expr) -> str:
    return node.id if isinstance(node, ast.Name) else ""
