"""Mutation audit: canned bugs that must not survive the analyzer.

A linter only earns trust by demonstrating it *catches things*: every
rule here is exercised by planting a realistic bug — in a known-clean
fixture snippet and in a copy of the real source tree — and asserting
the expected rule kills the mutant.  A surviving mutant means a rule
regressed (or an idiom drifted out from under it) and fails the audit.

Two operator kinds:

* :data:`FIXTURE_OPS` mutate the *good* fixtures from
  :mod:`repro.checks.fixtures` in memory;
* :data:`REAL_OPS` mutate a temp-tree copy of ``src/repro`` itself —
  including ``repro.checks``'s own source — so the audit also covers
  resolution against real project structure (class hierarchies,
  cross-file call paths, subsystem boundaries).

Determinism: operators are plain substring replacements; when a target
substring occurs more than once, the site is chosen as
``(seed + operator_index) % occurrences`` — arithmetic, not RNG, because
R1 bans stdlib ``random`` and ambient RNG in this tree.  Same seed, same
mutants, same verdicts.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.checks.core import Analyzer
from repro.checks.fixtures import FIXTURES, PROJECT_FIXTURES
from repro.checks.rules import rules_by_id

#: Default audit seed (CI pins this; any seed must yield 100% kills).
DEFAULT_SEED = 20260808


@dataclass(frozen=True)
class FixtureOp:
    """Mutate one known-clean fixture; ``kill`` must fire."""

    name: str
    base: str  # label in FIXTURES or PROJECT_FIXTURES
    old: str
    new: str
    kill: str  # rule ID expected to kill the mutant


@dataclass(frozen=True)
class RealSourceOp:
    """Mutate one real source file (in a temp copy); ``kill`` must fire."""

    name: str
    file: str  # path relative to the repo root
    old: str
    new: str
    kill: str


FIXTURE_OPS: tuple[FixtureOp, ...] = (
    FixtureOp("import-stdlib-random", "R1-good-random-source",
              "from repro.sim.rng import RandomSource",
              "import random\nfrom repro.sim.rng import RandomSource",
              "R1"),
    FixtureOp("import-wall-clock", "R1-good-random-source",
              "from repro.sim.rng import RandomSource",
              "from time import time\nfrom repro.sim.rng import RandomSource",
              "R1"),
    FixtureOp("inline-mb-conversion", "R2-good-units-vocabulary",
              "return mb_to_bytes(track_size_mb)",
              "return int(track_size_mb * 1_000_000)",
              "R2"),
    FixtureOp("inline-mbit-conversion", "R2-good-units-vocabulary",
              "return mbits_per_sec(bandwidth_mbits)",
              "return bandwidth_mbits / 8",
              "R2"),
    FixtureOp("drop-epoch-bump", "R3-good-bumped",
              "        self._invalidate_caches()\n", "",
              "R3"),
    FixtureOp("drop-state-change-bump", "R3-good-fault-domain-bumped",
              "        self.state_changes += 1\n", "",
              "R3"),
    FixtureOp("drop-cache-rekey", "R3-good-cache-evict-rekeyed",
              "        self._plan_cache_key = key\n", "",
              "R3"),
    FixtureOp("empty-subclass-slots", "R4-good-slotted-hierarchy",
              '__slots__ = ("cause",)', "__slots__ = ()",
              "R4"),
    FixtureOp("drop-class-slots", "R4-good-slotted-hierarchy",
              '    __slots__ = ("disk_id", "kind")\n', "",
              "R4"),
    FixtureOp("float-equality", "R5-good-isclose",
              "math.isclose(total_cost, other_cost, rel_tol=1e-9)",
              "total_cost == other_cost",
              "R5"),
    FixtureOp("drop-param-annotation", "R6-good-annotated",
              "def cost(disks: int, price_per_disk: float) -> float:",
              "def cost(disks, price_per_disk: float) -> float:",
              "R6"),
    FixtureOp("drop-return-annotation", "R6-good-annotated",
              "def resize(self, streams: int) -> None:",
              "def resize(self, streams: int):",
              "R6"),
    FixtureOp("untyped-lambda-def", "R6-good-annotated-lambda",
              "cost: Callable[[int], float] = lambda disks: disks * 2.0",
              "cost = lambda disks: disks * 2.0",
              "R6"),
    FixtureOp("lambda-task-payload", "R7-good-module-payload",
              'return TaskSpec(cell, args=(1,), label="ok")',
              'return TaskSpec(lambda: cell(1), label="ok")',
              "R7"),
    FixtureOp("probe-mutates-state", "R8-good-probe-writes-report",
              '        self.report.setdefault("probes", 0)\n',
              '        self.report.setdefault("probes", 0)\n'
              '        self.active.clear()\n',
              "R8"),
    FixtureOp("narrow-guard-key", "R9-good-caller-guards-read",
              "key = (self.layout.epoch, self.array.state_epoch)",
              "key = (self.layout.epoch,)",
              "R9"),
    FixtureOp("drop-guard-block", "R9-good-caller-guards-read",
              "        key = (self.layout.epoch, self.array.state_epoch)\n"
              "        if self._plan_cache_key != key:\n"
              "            self._plan_cache = {}\n"
              "            self._plan_cache_key = key\n",
              "",
              "R9"),
    FixtureOp("steal-fault-stream", "R10-good-isolated-streams",
              'rng.exponential("arrivals", 1.0)',
              'rng.exponential("events", 1.0)',
              "R10"),
    FixtureOp("steal-workload-stream", "R10-good-isolated-streams",
              'rng.exponential("events", 100.0)',
              'rng.exponential("arrivals", 100.0)',
              "R10"),
    FixtureOp("drop-bincount-minlength", "R11-good-real-idioms",
              ", minlength=n", "",
              "R11"),
    FixtureOp("drop-reduceat-cast", "R11-good-real-idioms",
              "down.astype(np.int64)", "down",
              "R11"),
    FixtureOp("drop-buffer-seed-tail", "R11-good-real-idioms",
              "    steps[1:] = gaps\n", "",
              "R11"),
)


REAL_OPS: tuple[RealSourceOp, ...] = (
    RealSourceOp("real-import-random", "src/repro/workload/arrivals.py",
                 "import numpy as np",
                 "import numpy as np\nimport random",
                 "R1"),
    RealSourceOp("real-drop-fault-bump", "src/repro/disk/drive.py",
                 "self.state_changes += 1", "pass",
                 "R3"),
    RealSourceOp("real-untype-param", "src/repro/checks/callgraph.py",
                 "def subsystem_of(path: str) -> str:",
                 "def subsystem_of(path) -> str:",
                 "R6"),
    RealSourceOp("real-impure-ff-probe",
                 "src/repro/sched/improved_bandwidth.py",
                 "        return not self.proactive_parity and "
                 "not self.mirror_read_balance",
                 "        self.proactive_parity = False\n"
                 "        return not self.proactive_parity and "
                 "not self.mirror_read_balance",
                 "R8"),
    RealSourceOp("real-unsuppress-layout-memo", "src/repro/layout/base.py",
                 "  # repro: allow(R8)", "",
                 "R8"),
    RealSourceOp("real-narrow-plan-key", "src/repro/sched/base.py",
                 "key = (self.layout.epoch, self.array.state_epoch)",
                 "key = (self.layout.epoch,)",
                 "R9"),
    RealSourceOp("real-drop-plan-refresh", "src/repro/sched/base.py",
                 "        self._refresh_plan_cache()\n"
                 "        report = CycleReport(cycle=self.cycle_index)\n",
                 "        report = CycleReport(cycle=self.cycle_index)\n",
                 "R9"),
    RealSourceOp("real-steal-workload-stream",
                 "src/repro/faults/reliability.py",
                 '"events"', '"arrivals"',
                 "R10"),
    RealSourceOp("real-chaos-static-collision", "src/repro/faults/chaos.py",
                 'rng.random(f"{tag}-fail")', 'rng.random("arrivals")',
                 "R10"),
    RealSourceOp("real-drop-bincount-minlength", "src/repro/sched/base.py",
                 ", minlength=num_disks", "",
                 "R11"),
    RealSourceOp("real-drop-reduceat-cast", "src/repro/sched/base.py",
                 "np.add.reduceat(down.astype(np.int64), ptr[:-1])",
                 "np.add.reduceat(down, ptr[:-1])",
                 "R11"),
    RealSourceOp("real-drop-empty-seed", "src/repro/workload/arrivals.py",
                 "            steps[1:] = gaps\n", "",
                 "R11"),
)


@dataclass(frozen=True)
class MutantResult:
    """Verdict for one operator at one (seed-chosen) site."""

    op: str
    kind: str  # "fixture" | "real"
    kill: str
    site: int  # chosen occurrence index
    occurrences: int
    killed: bool
    detail: str = ""


@dataclass
class AuditReport:
    """All mutant verdicts for one seed."""

    seed: int
    results: list[MutantResult]

    @property
    def ok(self) -> bool:
        return all(result.killed for result in self.results)

    @property
    def killed(self) -> int:
        return sum(1 for result in self.results if result.killed)

    def to_dict(self) -> dict[str, object]:
        return {
            "ok": self.ok,
            "seed": self.seed,
            "mutants": len(self.results),
            "killed": self.killed,
            "results": [
                {"op": r.op, "kind": r.kind, "kill": r.kill,
                 "site": r.site, "occurrences": r.occurrences,
                 "killed": r.killed, "detail": r.detail}
                for r in self.results
            ],
        }


class MutationError(Exception):
    """An operator's target text is missing — the idiom drifted."""


def _replace_occurrence(text: str, old: str, new: str,
                        index: int) -> tuple[str, int, int]:
    """Replace the ``index``-th (mod count) occurrence of ``old``.

    Returns (mutated text, chosen index, occurrence count).
    """
    positions: list[int] = []
    start = 0
    while True:
        at = text.find(old, start)
        if at < 0:
            break
        positions.append(at)
        start = at + len(old)
    if not positions:
        raise MutationError(f"target text not found: {old!r}")
    chosen = index % len(positions)
    at = positions[chosen]
    return text[:at] + new + text[at + len(old):], chosen, len(positions)


def _fixture_by_label(label: str) -> Union[object, None]:
    for fixture in FIXTURES:
        if fixture.label == label:
            return fixture
    for fixture in PROJECT_FIXTURES:
        if fixture.label == label:
            return fixture
    return None


def _run_fixture_op(op: FixtureOp, index: int, seed: int) -> MutantResult:
    base = _fixture_by_label(op.base)
    if base is None:
        return MutantResult(op=op.name, kind="fixture", kill=op.kill,
                            site=0, occurrences=0, killed=False,
                            detail=f"base fixture {op.base!r} not found")
    analyzer = Analyzer(rules_by_id([op.kill]))
    try:
        if hasattr(base, "files"):  # ProjectFixture
            files = list(base.files)
            holders = [i for i, (_path, source) in enumerate(files)
                       if op.old in source]
            if not holders:
                raise MutationError(f"target text not found: {op.old!r}")
            mutated_files = []
            site = occurrences = 0
            for i, (path, source) in enumerate(files):
                if i == holders[0]:
                    source, site, occurrences = _replace_occurrence(
                        source, op.old, op.new, seed + index)
                mutated_files.append((path, source))
            findings = analyzer.check_sources(mutated_files)
        else:
            code, site, occurrences = _replace_occurrence(
                base.code, op.old, op.new, seed + index)
            findings = analyzer.check_source(code, base.path)
    except MutationError as exc:
        return MutantResult(op=op.name, kind="fixture", kill=op.kill,
                            site=0, occurrences=0, killed=False,
                            detail=str(exc))
    except SyntaxError as exc:
        return MutantResult(op=op.name, kind="fixture", kill=op.kill,
                            site=0, occurrences=0, killed=False,
                            detail=f"mutant does not parse: {exc}")
    killed = any(finding.rule_id == op.kill for finding in findings)
    detail = "" if killed else "no finding from expected rule"
    return MutantResult(op=op.name, kind="fixture", kill=op.kill,
                        site=site, occurrences=occurrences, killed=killed,
                        detail=detail)


def _run_real_op(op: RealSourceOp, index: int, seed: int,
                 tree_root: Path) -> MutantResult:
    target = tree_root / op.file
    if not target.is_file():
        return MutantResult(op=op.name, kind="real", kill=op.kill,
                            site=0, occurrences=0, killed=False,
                            detail=f"missing file {op.file}")
    original = target.read_text(encoding="utf-8")
    try:
        mutated, site, occurrences = _replace_occurrence(
            original, op.old, op.new, seed + index)
    except MutationError as exc:
        return MutantResult(op=op.name, kind="real", kill=op.kill,
                            site=0, occurrences=0, killed=False,
                            detail=str(exc))
    try:
        target.write_text(mutated, encoding="utf-8")
        analyzer = Analyzer(rules_by_id([op.kill]))
        report = analyzer.check_paths([tree_root / "src"])
        killed = any(finding.rule_id == op.kill
                     for finding in report.findings)
    finally:
        target.write_text(original, encoding="utf-8")
    detail = "" if killed else "no finding from expected rule"
    return MutantResult(op=op.name, kind="real", kill=op.kill,
                        site=site, occurrences=occurrences, killed=killed,
                        detail=detail)


def run_mutation_audit(seed: int = DEFAULT_SEED,
                       repo_root: Optional[Path] = None) -> AuditReport:
    """Run every operator; the audit passes only on a 100% kill rate."""
    root = repo_root if repo_root is not None else Path(".")
    results: list[MutantResult] = []
    for index, fixture_op in enumerate(FIXTURE_OPS):
        results.append(_run_fixture_op(fixture_op, index, seed))
    source_root = root / "src" / "repro"
    if REAL_OPS and source_root.is_dir():
        with tempfile.TemporaryDirectory(prefix="repro-mutants-") as tmp:
            tree_root = Path(tmp)
            shutil.copytree(source_root, tree_root / "src" / "repro")
            for index, real_op in enumerate(REAL_OPS):
                results.append(_run_real_op(real_op, index, seed,
                                            tree_root))
    elif REAL_OPS:
        for real_op in REAL_OPS:
            results.append(MutantResult(
                op=real_op.name, kind="real", kill=real_op.kill,
                site=0, occurrences=0, killed=False,
                detail=f"source tree not found under {source_root}"))
    return AuditReport(seed=seed, results=results)
