"""Per-function effect summaries propagated over the call graph.

Each function gets a :class:`EffectSummary` describing what it does to
simulator state *directly*; a fixpoint pass then unions summaries along
resolved call edges so a rule can ask "what can calling this function
*transitively* do?".  The effect lattice is small and join-only:

* ``writes`` — instance fields the function mutates (assignment,
  ``del``, in-place container mutators, including through one level of
  local aliasing: ``tally = self.report.x; tally[k] = v`` records
  ``report``);
* ``array_calls`` — fault-domain transitions routed through an array
  reference (``...array.fail(...)`` et al., matching R3's vocabulary);
* ``rng_draws`` — named-stream draws on a ``RandomSource`` receiver
  (stream name literal, a static f-string prefix like ``disk-*``, or
  ``<dynamic>``);
* ``stream_handles`` — raw ``.stream(...)`` generator acquisitions
  (R10's taint sources);
* ``cache_reads`` — loads of the epoch-keyed scheduler caches;
* ``epoch_bump`` — moves an epoch counter or calls an invalidator.

Everything is a conservative *under*-approximation on the call-graph
side (unresolved calls add no effects) and a mild *over*-approximation
on the receiver side (a write through ``self.X`` counts even when ``X``
is a scratch container), which is the right bias for rules that feed an
allow-list escape hatch.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.checks.callgraph import CallGraph, FunctionDecl, annotation_class

#: In-place container mutators (shared vocabulary with R3).
MUTATOR_METHODS = frozenset({
    "pop", "popleft", "append", "appendleft", "extend", "insert", "clear",
    "update", "setdefault", "add", "discard", "remove", "fill", "sort",
})

#: Fault-domain transitions reachable through an array reference.
ARRAY_STATE_CALLS = frozenset({
    "fail", "repair", "degrade", "restore", "inject_media_error",
    "begin_rebuild",
})

#: Epoch-keyed scheduler caches (the guarded reads R9 cares about).
CACHE_FIELDS = frozenset({
    "_plan_cache", "_ff_tables", "_ff_flat", "_ff_deg_tables",
    "_ff_deg_flat", "_ff_geom",
})

#: Calls that count as bumping an epoch / invalidating plan caches.
BUMP_CALLS = frozenset({
    "_invalidate_caches", "_invalidate_plan_cache", "_record_delta",
})

#: Attributes whose assignment *is* the epoch bump.
EPOCH_FIELDS = frozenset({"_epoch", "state_changes"})

#: ``RandomSource`` draw methods taking a stream name first.
RNG_DRAW_METHODS = frozenset({
    "exponential", "exponential_array", "uniform", "integers", "random",
    "random_array",
})

#: Receiver names treated as RandomSource even without type info.
RNG_RECEIVER_NAMES = frozenset({"rng", "_rng", "source", "random_source"})

#: Marker for draws whose stream name is not statically known.
DYNAMIC_STREAM = "<dynamic>"


@dataclass(frozen=True)
class EffectSummary:
    """What one function does to simulator state."""

    writes: frozenset[str] = frozenset()
    array_calls: frozenset[str] = frozenset()
    rng_draws: frozenset[str] = frozenset()
    stream_handles: frozenset[str] = frozenset()
    cache_reads: frozenset[str] = frozenset()
    epoch_bump: bool = False

    EMPTY: "EffectSummary" = None  # type: ignore[assignment]

    def union(self, other: "EffectSummary") -> "EffectSummary":
        """Join of two summaries (the lattice is union-only)."""
        if other == EffectSummary.EMPTY:
            return self
        return EffectSummary(
            writes=self.writes | other.writes,
            array_calls=self.array_calls | other.array_calls,
            rng_draws=self.rng_draws | other.rng_draws,
            stream_handles=self.stream_handles | other.stream_handles,
            cache_reads=self.cache_reads | other.cache_reads,
            epoch_bump=self.epoch_bump or other.epoch_bump,
        )

    @property
    def is_state_pure(self) -> bool:
        """True when the function touches no mutable simulator state."""
        return (not self.writes and not self.array_calls
                and not self.rng_draws and not self.epoch_bump)


EffectSummary.EMPTY = EffectSummary()


def stream_name_of(node: ast.expr) -> str:
    """The static stream-name key of a draw call's first argument.

    A string literal is exact; an f-string with a leading literal part
    becomes a ``prefix*`` pattern; anything else is ``<dynamic>``.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr) and node.values:
        head = node.values[0]
        if isinstance(head, ast.Constant) and isinstance(head.value, str) \
                and head.value:
            return f"{head.value}*"
    return DYNAMIC_STREAM


def is_rng_receiver(receiver: ast.expr, decl: FunctionDecl,
                    graph: CallGraph,
                    local_types: dict[str, str]) -> bool:
    """Whether a draw-call receiver is (likely) a RandomSource."""
    if isinstance(receiver, ast.Name):
        if local_types.get(receiver.id) == "RandomSource":
            return True
        return receiver.id in RNG_RECEIVER_NAMES
    if isinstance(receiver, ast.Attribute):
        if receiver.attr in RNG_RECEIVER_NAMES:
            return True
        if isinstance(receiver.value, ast.Name) \
                and receiver.value.id in ("self", "cls") and decl.cls:
            for cls_name in sorted(graph.family(decl.cls)):
                if graph.attr_types.get(
                        (cls_name, receiver.attr)) == "RandomSource":
                    return True
    return False


def _self_alias_map(func: ast.AST) -> dict[str, str]:
    """Locals bound to ``self.<attr>...`` chains -> root attribute."""
    aliases: dict[str, str] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            root = _self_root(node.value)
            if root:
                aliases[node.targets[0].id] = root
    return aliases


def _self_root(node: ast.expr) -> Optional[str]:
    """The first attribute after ``self`` in an attribute chain."""
    chain: list[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id in ("self", "cls") and chain:
        return chain[-1]
    return None


def _store_root(target: ast.expr, aliases: dict[str, str],
                inplace: bool = False) -> Optional[str]:
    """The instance field an assignment target ultimately mutates.

    A *bare* local name that aliases an attribute only counts when the
    store mutates through it (subscript store, in-place op, container
    mutator): plain reassignment just rebinds the local.
    """
    through = inplace
    while isinstance(target, (ast.Subscript, ast.Starred)):
        target = target.value
        through = True
    root = _self_root(target)
    if root is not None:
        return root
    if isinstance(target, ast.Name) and through:
        return aliases.get(target.id)
    return None


def _expr_names(node: ast.expr) -> set[str]:
    """All Name ids and Attribute attrs appearing in an expression."""
    names: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.add(child.id)
        elif isinstance(child, ast.Attribute):
            names.add(child.attr)
    return names


def _local_types_of(decl: FunctionDecl) -> dict[str, str]:
    """Parameter/local annotations (class names only) for one function."""
    types: dict[str, str] = {}
    args = decl.node.args  # type: ignore[attr-defined]
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        annotated = annotation_class(arg.annotation)
        if annotated:
            types[arg.arg] = annotated
    for node in ast.walk(decl.node):
        if isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name):
            annotated = annotation_class(node.annotation)
            if annotated:
                types.setdefault(node.target.id, annotated)
    return types


def direct_effects(decl: FunctionDecl, graph: CallGraph) -> EffectSummary:
    """The effects one function performs in its own body."""
    func = decl.node
    aliases = _self_alias_map(func)
    local_types = _local_types_of(decl)
    writes: set[str] = set()
    array_calls: set[str] = set()
    rng_draws: set[str] = set()
    stream_handles: set[str] = set()
    cache_reads: set[str] = set()
    epoch_bump = False
    store_targets: set[int] = set()

    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                for child in ast.walk(target):
                    store_targets.add(id(child))
                root = _store_root(target, aliases,
                                   inplace=isinstance(node, ast.AugAssign))
                if root is None:
                    continue
                if root in EPOCH_FIELDS:
                    epoch_bump = True
                # __init__ constructs state; it mutates nothing live.
                if decl.name != "__init__":
                    writes.add(root)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                root = _store_root(target, aliases)
                if root is not None and decl.name != "__init__":
                    writes.add(root)
        elif isinstance(node, ast.Call):
            callee = node.func
            if not isinstance(callee, ast.Attribute):
                continue
            method = callee.attr
            receiver = callee.value
            if method in BUMP_CALLS:
                epoch_bump = True
            if method in ARRAY_STATE_CALLS \
                    and "array" in _expr_names(receiver):
                array_calls.add(method)
            if method in MUTATOR_METHODS:
                root = _store_root(receiver, aliases, inplace=True)
                if root is not None and decl.name != "__init__":
                    writes.add(root)
            if method == "stream" and node.args \
                    and is_rng_receiver(receiver, decl, graph, local_types):
                stream_handles.add(stream_name_of(node.args[0]))
            if method in RNG_DRAW_METHODS and node.args \
                    and is_rng_receiver(receiver, decl, graph, local_types):
                rng_draws.add(stream_name_of(node.args[0]))

    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) \
                and isinstance(node.ctx, ast.Load) \
                and node.attr in CACHE_FIELDS \
                and id(node) not in store_targets \
                and _self_root(node) == node.attr:
            cache_reads.add(node.attr)

    # A pure cache *write* is not a read: drop fields only ever stored.
    return EffectSummary(
        writes=frozenset(writes),
        array_calls=frozenset(array_calls),
        rng_draws=frozenset(rng_draws),
        stream_handles=frozenset(stream_handles),
        cache_reads=frozenset(cache_reads),
        epoch_bump=epoch_bump,
    )


def propagate(graph: CallGraph,
              direct: dict[str, EffectSummary]) -> dict[str, EffectSummary]:
    """Fixpoint of summary propagation over the call graph.

    Worklist over reverse edges: when a callee's summary grows, its
    callers are revisited.  Terminates because the lattice is finite and
    join-only.
    """
    transitive = dict(direct)
    worklist = list(graph.functions)
    pending = set(worklist)
    while worklist:
        qual = worklist.pop()
        pending.discard(qual)
        summary = direct.get(qual, EffectSummary.EMPTY)
        for edge in graph.edges_from.get(qual, ()):
            summary = summary.union(
                transitive.get(edge.callee, EffectSummary.EMPTY))
        if summary != transitive.get(qual):
            transitive[qual] = summary
            for edge in graph.edges_to.get(qual, ()):
                if edge.caller not in pending:
                    pending.add(edge.caller)
                    worklist.append(edge.caller)
    return transitive


@dataclass
class ProjectAnalysis:
    """Everything the interprocedural rules need, built once per run."""

    graph: CallGraph
    direct: dict[str, EffectSummary]
    transitive: dict[str, EffectSummary]
    #: path -> {line -> allow() tokens} for call-site suppression checks.
    suppressions: dict[str, dict[int, frozenset[str]]] = field(
        default_factory=dict)

    @classmethod
    def build(cls, parsed: Iterable[tuple[str, str, ast.Module]],
              ) -> "ProjectAnalysis":
        """Build from ``(path, source, tree)`` triples."""
        from repro.checks.core import collect_suppressions
        triples = list(parsed)
        graph = CallGraph.build((path, tree) for path, _src, tree in triples)
        direct = {qual: direct_effects(decl, graph)
                  for qual, decl in graph.functions.items()}
        transitive = propagate(graph, direct)
        suppressions = {path: collect_suppressions(source)
                        for path, source, _tree in triples}
        return cls(graph=graph, direct=direct, transitive=transitive,
                   suppressions=suppressions)

    def edge_suppressed(self, edge_path: str, edge_line: int,
                        rule_id: str, rule_name: str) -> bool:
        """Whether a call site carries ``# repro: allow(<rule>)``.

        A suppressed call edge vouches for the callee *in this context*:
        flow rules skip the edge but still follow other paths to the
        same callee.
        """
        per_file = self.suppressions.get(edge_path, {})
        for line in (edge_line, edge_line - 1):
            tokens = per_file.get(line)
            if tokens and ("*" in tokens or rule_id in tokens
                           or rule_name in tokens):
                return True
        return False

    def functions_in(self, path: str) -> list[FunctionDecl]:
        """Declarations living in one file, in line order."""
        return sorted((decl for decl in self.graph.functions.values()
                       if decl.path == path), key=lambda d: d.lineno)
