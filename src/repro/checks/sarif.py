"""SARIF 2.1.0 serialisation of an analyzer :class:`Report`.

SARIF (Static Analysis Results Interchange Format) is what code-scanning
UIs ingest: one ``run`` with a ``tool.driver`` rule catalog and one
``result`` per finding, each anchored by a ``physicalLocation``.  The
output is deterministic — findings are already sorted by the analyzer,
rules are emitted in catalog order, and ``json.dumps`` keeps insertion
order — so identical trees produce identical SARIF bytes.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.checks.core import Finding, Report, Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")
TOOL_NAME = "repro.checks"
TOOL_URI = "https://example.invalid/repro/docs/STATIC_ANALYSIS.md"


def _rule_descriptor(rule: Rule) -> dict[str, object]:
    return {
        "id": rule.rule_id,
        "name": rule.name,
        "shortDescription": {"text": rule.name},
        "fullDescription": {"text": rule.description},
        "defaultConfiguration": {"level": "error"},
    }


def _result(finding: Finding, rule_index: dict[str, int]) -> dict[str, object]:
    result: dict[str, object] = {
        "ruleId": finding.rule_id,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path,
                    "uriBaseId": "SRCROOT",
                },
                "region": {
                    "startLine": finding.line,
                    # SARIF columns are 1-based; ast columns are 0-based.
                    "startColumn": finding.col + 1,
                },
            },
        }],
    }
    if finding.rule_id in rule_index:
        result["ruleIndex"] = rule_index[finding.rule_id]
    return result


def report_to_sarif(report: Report,
                    rules: Sequence[Rule]) -> dict[str, object]:
    """The SARIF log object for one analyzer run."""
    catalog = sorted(rules, key=lambda rule: rule.rule_id)
    rule_index = {rule.rule_id: i for i, rule in enumerate(catalog)}
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "informationUri": TOOL_URI,
                    "rules": [_rule_descriptor(rule) for rule in catalog],
                },
            },
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///./"}},
            "results": [_result(finding, rule_index)
                        for finding in report.findings],
        }],
    }


def render_sarif(report: Report, rules: Sequence[Rule]) -> str:
    """The SARIF log serialised to stable, indented JSON."""
    return json.dumps(report_to_sarif(report, rules), indent=2,
                      sort_keys=False)
