"""The rule framework behind ``repro.checks``.

The analyzer parses every target file once, builds a project-wide class
index (so rules can resolve ``__slots__`` chains across modules), runs
each :class:`Rule` over each file it applies to, and filters the resulting
:class:`Finding` list through suppression comments.

Suppression syntax
------------------
A finding is suppressed by a comment on the reported line or on the line
directly above it::

    self._next_position[disk_id] += 1  # repro: allow(epoch-cache)

``allow(...)`` takes a comma-separated list of rule names or rule IDs;
``allow(*)`` suppresses every rule on that line.  Suppressions are the
escape hatch for the rare call site where the invariant is enforced by a
caller — use them with a justifying comment.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import ClassVar, Iterable, Iterator, Optional, Sequence

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\(([^)]*)\)")

#: Base classes whose subclasses are exempt from the slots rule: enums and
#: exceptions carry class-level machinery, Protocols are structural-only,
#: NamedTuple/TypedDict generate their own storage.
EXEMPT_BASE_NAMES = frozenset({
    "Enum", "IntEnum", "StrEnum", "Flag", "IntFlag",
    "Exception", "BaseException", "Protocol", "Generic",
    "NamedTuple", "TypedDict",
})

#: Bases that contribute no instance dictionary and no slots of their own.
SLOT_NEUTRAL_BASES = frozenset({"object", "ABC"})


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    rule_name: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable form (the ``--format json`` record)."""
        return {
            "rule_id": self.rule_id,
            "rule": self.rule_name,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        """The one-line human form: ``path:line:col: R1 [name] message``."""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule_id} [{self.rule_name}] {self.message}")


@dataclass(frozen=True)
class ClassInfo:
    """What the project index knows about one class definition."""

    name: str
    path: str
    line: int
    #: Declared ``__slots__`` names, or None when the class declares none.
    slots: Optional[tuple[str, ...]]
    #: Base-class names as written (``Enum`` for ``enum.Enum``).
    bases: tuple[str, ...]
    #: True for ``@dataclass(slots=True)`` classes (fields become slots).
    dataclass_slots: bool = False
    #: True for plain ``@dataclass`` without ``slots=True``.
    plain_dataclass: bool = False


class ProjectIndex:
    """Cross-file class lookup, keyed by bare class name.

    Bare-name keying is a deliberate simplification: this project has no
    duplicate class names across modules, and the index only backs
    best-effort slot-chain resolution (rules skip what they cannot
    resolve rather than guessing).
    """

    def __init__(self) -> None:
        self.classes: dict[str, ClassInfo] = {}

    def add_tree(self, path: str, tree: ast.AST) -> None:
        """Index every class defined in one parsed module."""
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                info = _class_info(path, node)
                self.classes.setdefault(info.name, info)

    def lookup(self, name: str) -> Optional[ClassInfo]:
        """The indexed class of that bare name, if any."""
        return self.classes.get(name)

    def is_exempt(self, info: ClassInfo, _seen: Optional[set[str]] = None,
                  ) -> bool:
        """True if the class descends from an exempt base (enum, ...)."""
        seen = _seen if _seen is not None else set()
        if info.name in seen:
            return False
        seen.add(info.name)
        for base in info.bases:
            if base in EXEMPT_BASE_NAMES:
                return True
            parent = self.lookup(base)
            if parent is not None and self.is_exempt(parent, seen):
                return True
        return False

    def slot_union(self, info: ClassInfo) -> Optional[frozenset[str]]:
        """All slot names along the class's base chain.

        Returns None when any base is unresolvable or unslotted — callers
        must then skip slot-membership checks rather than guess.
        """
        if info.slots is None:
            return None
        names = set(info.slots)
        for base in info.bases:
            if base in SLOT_NEUTRAL_BASES:
                continue
            parent = self.lookup(base)
            if parent is None:
                return None
            inherited = self.slot_union(parent)
            if inherited is None:
                return None
            names.update(inherited)
        return frozenset(names)


def _decorator_name(node: ast.expr) -> str:
    """The bare name of a decorator expression (``dataclass`` for all of
    ``@dataclass``, ``@dataclasses.dataclass(...)``)."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _base_name(node: ast.expr) -> str:
    """The bare name of a base-class expression."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Subscript):  # Generic[...] / Protocol[...]
        return _base_name(node.value)
    return ""


def _class_info(path: str, node: ast.ClassDef) -> ClassInfo:
    slots: Optional[tuple[str, ...]] = None
    for statement in node.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    slots = _slot_names(statement.value)
    dataclass_slots = False
    plain_dataclass = False
    for decorator in node.decorator_list:
        if _decorator_name(decorator) != "dataclass":
            continue
        wants_slots = (
            isinstance(decorator, ast.Call)
            and any(kw.arg == "slots"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in decorator.keywords))
        if wants_slots:
            dataclass_slots = True
            slots = tuple(
                statement.target.id for statement in node.body
                if isinstance(statement, ast.AnnAssign)
                and isinstance(statement.target, ast.Name))
        else:
            plain_dataclass = True
    return ClassInfo(
        name=node.name,
        path=path,
        line=node.lineno,
        slots=slots,
        bases=tuple(_base_name(base) for base in node.bases),
        dataclass_slots=dataclass_slots,
        plain_dataclass=plain_dataclass,
    )


def _slot_names(value: ast.expr) -> tuple[str, ...]:
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return (value.value,)
    if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
        return tuple(element.value for element in value.elts
                     if isinstance(element, ast.Constant)
                     and isinstance(element.value, str))
    return ()


@dataclass
class FileContext:
    """Everything a rule needs to inspect one file."""

    path: str
    source: str
    tree: ast.Module
    index: ProjectIndex
    lines: list[str] = field(default_factory=list)
    #: Project-wide call graph + effect summaries (``ProjectAnalysis``).
    #: Always set by the analyzer; typed loosely to avoid an import
    #: cycle with :mod:`repro.checks.effects`.
    project: Optional[object] = None

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()


class Rule:
    """Base class for one invariant check.

    Subclasses set the three class attributes and implement
    :meth:`check`; :meth:`applies_to` narrows the rule to the code that
    carries its invariant (hot-path dirs, analysis modules, ...).
    """

    rule_id: ClassVar[str] = ""
    name: ClassVar[str] = ""
    description: ClassVar[str] = ""

    def applies_to(self, path: str) -> bool:
        """Whether this rule runs on the given (posix-style) path."""
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file."""
        raise NotImplementedError
        yield  # pragma: no cover

    def finding(self, ctx: FileContext, node: ast.AST, message: str,
                ) -> Finding:
        """Build a finding anchored at one AST node."""
        return Finding(
            rule_id=self.rule_id,
            rule_name=self.name,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


# -- path scope helpers (shared by the rules) --------------------------------

def normalise(path: str) -> str:
    """Posix-style path with a leading slash for fragment matching."""
    return "/" + Path(path).as_posix().lstrip("/")


def in_project_source(path: str) -> bool:
    """True for files under ``src/repro`` (not tests, not benchmarks)."""
    return "/src/repro/" in normalise(path)


def in_tests(path: str) -> bool:
    """True for files under a ``tests`` directory."""
    return "/tests/" in normalise(path)


def under(path: str, *fragments: str) -> bool:
    """True if the path crosses any ``fragment`` directory or file.

    ``under(p, "layout/")`` matches a directory segment,
    ``under(p, "sim/rng.py")`` matches a file suffix.
    """
    norm = normalise(path)
    for fragment in fragments:
        if fragment.endswith("/"):
            if f"/{fragment}" in norm:
                return True
        elif norm.endswith(f"/{fragment}"):
            return True
    return False


# -- suppression handling ----------------------------------------------------

def collect_suppressions(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> rule names/IDs allowed on that line."""
    allowed: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(line)
        if match:
            tokens = frozenset(
                token.strip() for token in match.group(1).split(",")
                if token.strip())
            if tokens:
                allowed[lineno] = tokens
    return allowed


def is_suppressed(finding: Finding,
                  suppressions: dict[int, frozenset[str]]) -> bool:
    """Whether an allow() comment on the line (or the one above) covers
    the finding."""
    for lineno in (finding.line, finding.line - 1):
        tokens = suppressions.get(lineno)
        if tokens and ("*" in tokens
                       or finding.rule_name in tokens
                       or finding.rule_id in tokens):
            return True
    return False


# -- the analyzer ------------------------------------------------------------

@dataclass
class Report:
    """The result of one analyzer run."""

    findings: list[Finding]
    files_checked: int
    rules_run: tuple[str, ...]

    @property
    def ok(self) -> bool:
        """True when no finding survived suppression."""
        return not self.findings

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable form for CI consumption."""
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "rules": list(self.rules_run),
            "findings": [finding.to_dict() for finding in self.findings],
        }


class AnalysisError(Exception):
    """A target file could not be read or parsed."""


class Analyzer:
    """Runs a rule set over files, directories, or raw source."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None) -> None:
        if rules is None:
            from repro.checks.rules import default_rules
            rules = default_rules()
        self.rules: tuple[Rule, ...] = tuple(rules)

    def check_paths(self, paths: Iterable[str | Path],
                    only_files: Optional[set[str]] = None) -> Report:
        """Analyze every ``.py`` file under the given paths.

        ``only_files`` restricts which files *report* findings (the
        incremental ``--changed-only`` mode); every file is still parsed
        so the project index and call graph stay whole.
        """
        files = sorted(self._expand(paths))
        parsed: list[tuple[str, str, ast.Module]] = []
        index = ProjectIndex()
        findings: list[Finding] = []
        for file_path in files:
            try:
                source = file_path.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(file_path))
            except (OSError, SyntaxError) as exc:
                raise AnalysisError(
                    f"cannot analyze {file_path}: {exc}") from exc
            rel = _relativise(file_path)
            parsed.append((rel, source, tree))
            index.add_tree(rel, tree)
        from repro.checks.effects import ProjectAnalysis
        project = ProjectAnalysis.build(parsed)
        checked = 0
        for rel, source, tree in parsed:
            if only_files is not None and rel not in only_files:
                continue
            checked += 1
            findings.extend(self._run_rules(rel, source, tree, index,
                                            project))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return Report(findings=findings, files_checked=checked,
                      rules_run=tuple(rule.rule_id for rule in self.rules))

    def check_source(self, source: str, path: str,
                     index: Optional[ProjectIndex] = None) -> list[Finding]:
        """Analyze one in-memory snippet as if it lived at ``path``.

        The synthetic path decides which rules run — fixtures place
        snippets at paths inside each rule's scope.  The call graph the
        flow rules see spans just this snippet, so fixtures exercise
        them with self-contained call chains.
        """
        tree = ast.parse(source, filename=path)
        if index is None:
            index = ProjectIndex()
            index.add_tree(path, tree)
        from repro.checks.effects import ProjectAnalysis
        project = ProjectAnalysis.build([(path, source, tree)])
        return sorted(self._run_rules(path, source, tree, index, project),
                      key=lambda f: (f.line, f.col, f.rule_id))

    def check_sources(self, files: Sequence[tuple[str, str]],
                      ) -> list[Finding]:
        """Analyze several in-memory ``(path, source)`` files as one
        project — the multi-file counterpart of :meth:`check_source`,
        used by fixtures and tests that exercise cross-file flow rules
        (cross-subsystem taint, caller-side cache guards)."""
        parsed: list[tuple[str, str, ast.Module]] = []
        index = ProjectIndex()
        for path, source in files:
            tree = ast.parse(source, filename=path)
            parsed.append((path, source, tree))
            index.add_tree(path, tree)
        from repro.checks.effects import ProjectAnalysis
        project = ProjectAnalysis.build(parsed)
        findings: list[Finding] = []
        for path, source, tree in parsed:
            findings.extend(self._run_rules(path, source, tree, index,
                                            project))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return findings

    def _run_rules(self, path: str, source: str, tree: ast.Module,
                   index: ProjectIndex, project: object) -> list[Finding]:
        suppressions = collect_suppressions(source)
        ctx = FileContext(path=path, source=source, tree=tree, index=index,
                          project=project)
        out: list[Finding] = []
        for rule in self.rules:
            if not rule.applies_to(path):
                continue
            for finding in rule.check(ctx):
                if not is_suppressed(finding, suppressions):
                    out.append(finding)
        return out

    @staticmethod
    def _expand(paths: Iterable[str | Path]) -> Iterator[Path]:
        for path in paths:
            path = Path(path)
            if path.is_dir():
                yield from path.rglob("*.py")
            elif path.suffix == ".py":
                yield path


def _relativise(path: Path) -> str:
    """Path relative to the current directory when possible (stable rule
    scoping regardless of absolute/relative invocation)."""
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()
