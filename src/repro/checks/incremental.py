"""Incremental analysis: restrict findings to files affected by a diff.

``--changed-only <git-ref>`` analyzes the whole tree (the call graph and
effect lattice must stay project-wide to be sound) but *reports* only on
files that changed since ``<git-ref>`` plus their reverse call-graph
dependents — a caller of a changed function can pick up a new R8/R9/R10
violation without itself changing, so dependents must stay in scope.

The changed set is ``git diff --name-only <ref>`` unioned with untracked
files (``git ls-files --others``): a brand-new module is "changed" too.
"""

from __future__ import annotations

import ast
import subprocess
from pathlib import Path
from typing import Iterable

from repro.checks.callgraph import CallGraph
from repro.checks.core import AnalysisError, _relativise


class GitError(AnalysisError):
    """git could not produce a diff for the requested ref."""


def _git_lines(args: list[str], repo_root: Path) -> list[str]:
    try:
        completed = subprocess.run(
            ["git", *args], cwd=repo_root, capture_output=True,
            text=True, check=True)
    except FileNotFoundError as exc:
        raise GitError("git is not available on PATH") from exc
    except subprocess.CalledProcessError as exc:
        detail = exc.stderr.strip() or exc.stdout.strip() or str(exc)
        raise GitError(f"git {' '.join(args)} failed: {detail}") from exc
    return [line for line in completed.stdout.splitlines() if line]


def changed_files(ref: str, repo_root: Path) -> set[str]:
    """Repo-relative ``.py`` paths changed since ``ref`` (plus untracked)."""
    changed = _git_lines(["diff", "--name-only", ref, "--", "*.py"],
                         repo_root)
    untracked = _git_lines(
        ["ls-files", "--others", "--exclude-standard", "--", "*.py"],
        repo_root)
    return {line for line in changed + untracked if line.endswith(".py")}


def affected_files(ref: str, analyzed: Iterable[Path],
                   repo_root: Path | None = None) -> set[str]:
    """The reporting scope for ``--changed-only ref``.

    ``analyzed`` is every file the analyzer will parse; the result is the
    subset (as analyzer-relative path strings) that changed since ``ref``
    or transitively calls into a changed file.  Deleted files appear in
    the diff but not in ``analyzed``; they drop out naturally.
    """
    root = repo_root if repo_root is not None else Path(".")
    changed = changed_files(ref, root)
    parsed: list[tuple[str, ast.Module]] = []
    rel_paths: set[str] = set()
    for file_path in analyzed:
        rel = _relativise(Path(file_path))
        rel_paths.add(rel)
        try:
            tree = ast.parse(file_path.read_text(encoding="utf-8"),
                             filename=str(file_path))
        except (OSError, SyntaxError):
            continue  # check_paths will surface the real error
        parsed.append((rel, tree))
    targets = changed & rel_paths
    if not targets:
        return set()
    graph = CallGraph.build(parsed)
    return graph.file_dependents(targets)
