"""Good/bad fixture snippets proving each rule fires (and stays quiet).

These back ``python -m repro.checks --self-test`` and the
``tests/checks`` suite: every rule has at least one *bad* snippet with
the exact ``(rule_id, line)`` pairs it must produce, at least one *good*
snippet that must stay clean, and a suppressed variant showing the
``# repro: allow(...)`` escape works.
"""

from __future__ import annotations

import textwrap
from dataclasses import dataclass

from repro.checks.core import Analyzer, Finding


@dataclass(frozen=True)
class Fixture:
    """One self-test snippet and the findings it must produce."""

    label: str
    #: Synthetic path placing the snippet inside the target rule's scope.
    path: str
    code: str
    #: Expected ``(rule_id, line)`` pairs, exactly; empty for good/clean.
    expect: tuple[tuple[str, int], ...] = ()


def _snippet(code: str) -> str:
    return textwrap.dedent(code).strip("\n") + "\n"


FIXTURES: tuple[Fixture, ...] = (
    # -- R1 determinism ------------------------------------------------------
    Fixture(
        label="R1-bad-import-random",
        path="src/repro/workload/example.py",
        code=_snippet("""
            import random


            def draw() -> float:
                return random.random()
        """),
        expect=(("R1", 1),),
    ),
    Fixture(
        label="R1-bad-wall-clock",
        path="src/repro/faults/example.py",
        code=_snippet("""
            import time
            from datetime import datetime


            def stamp() -> float:
                started = time.time()
                label = datetime.now()
                return started
        """),
        expect=(("R1", 6), ("R1", 7)),
    ),
    Fixture(
        label="R1-bad-unseeded-rng",
        path="tests/workload/test_example.py",
        code=_snippet("""
            import numpy as np


            def make_rng() -> object:
                return np.random.default_rng()
        """),
        expect=(("R1", 5),),
    ),
    Fixture(
        label="R1-bad-global-numpy-rng",
        path="src/repro/workload/example.py",
        code=_snippet("""
            import numpy as np


            def draw() -> float:
                np.random.seed(0)
                return float(np.random.uniform())
        """),
        expect=(("R1", 5), ("R1", 6)),
    ),
    Fixture(
        label="R1-bad-seeded-rng-in-src",
        path="src/repro/media/example.py",
        code=_snippet("""
            import numpy as np


            def make_rng() -> object:
                return np.random.default_rng(42)
        """),
        expect=(("R1", 5),),
    ),
    Fixture(
        label="R1-good-seeded-rng-in-tests",
        path="tests/workload/test_example.py",
        code=_snippet("""
            import numpy as np


            def make_rng() -> object:
                return np.random.default_rng(42)
        """),
    ),
    Fixture(
        label="R1-good-random-source",
        path="src/repro/workload/example.py",
        code=_snippet("""
            from repro.sim.rng import RandomSource


            def draw(rng: RandomSource) -> float:
                return rng.uniform("arrivals")
        """),
    ),
    Fixture(
        label="R1-suppressed",
        path="src/repro/workload/example.py",
        code=_snippet("""
            import random  # repro: allow(determinism)


            def draw() -> float:
                return random.random()
        """),
    ),
    # -- R2 units ------------------------------------------------------------
    Fixture(
        label="R2-bad-inline-conversions",
        path="src/repro/sched/example.py",
        code=_snippet("""
            def track_bytes(track_size_mb: float) -> int:
                return int(track_size_mb * 1_000_000)


            def to_mb_s(bandwidth_mbits: float) -> float:
                return bandwidth_mbits / 8
        """),
        expect=(("R2", 2), ("R2", 6)),
    ),
    Fixture(
        label="R2-good-units-vocabulary",
        path="src/repro/sched/example.py",
        code=_snippet("""
            from repro.units import mb_to_bytes, mbits_per_sec


            def track_bytes(track_size_mb: float) -> int:
                return mb_to_bytes(track_size_mb)


            def to_mb_s(bandwidth_mbits: float) -> float:
                return mbits_per_sec(bandwidth_mbits)
        """),
    ),
    Fixture(
        label="R2-good-non-unit-factor",
        path="src/repro/sched/example.py",
        code=_snippet("""
            def spread(count: int) -> int:
                return count * 1000
        """),
    ),
    Fixture(
        label="R2-suppressed",
        path="src/repro/sched/example.py",
        code=_snippet("""
            def track_bytes(track_size_mb: float) -> int:
                return int(track_size_mb * 1_000_000)  # repro: allow(R2)
        """),
    ),
    # -- R3 epoch-cache ------------------------------------------------------
    Fixture(
        label="R3-bad-placement-mutation",
        path="src/repro/layout/example.py",
        code=_snippet("""
            class Layout:
                def forget(self, name: str, track: int) -> None:
                    self._data_addr.pop((name, track))
        """),
        expect=(("R3", 2),),
    ),
    Fixture(
        label="R3-bad-array-flip",
        path="src/repro/sched/example.py",
        code=_snippet("""
            class Scheduler:
                __slots__ = ("array",)

                def crash(self, disk_id: int) -> None:
                    self.array.fail(disk_id)
        """),
        expect=(("R3", 4),),
    ),
    Fixture(
        label="R3-bad-fault-domain-call",
        path="src/repro/faults/example.py",
        code=_snippet("""
            class Harness:
                __slots__ = ("array",)

                def slow_down(self, disk_id: int, fraction: float) -> None:
                    self.array.degrade(disk_id, fraction)

                def plant(self, disk_id: int, position: int) -> None:
                    self.array.inject_media_error(position)
        """),
        expect=(("R3", 4), ("R3", 7)),
    ),
    Fixture(
        label="R3-bad-fail-slow-field",
        path="src/repro/disk/example.py",
        code=_snippet("""
            class Disk:
                __slots__ = ("service_fraction", "_media_errors")

                def throttle(self, fraction: float) -> None:
                    self.service_fraction = fraction

                def corrupt(self, position: int) -> None:
                    self._media_errors[position] = False
        """),
        expect=(("R3", 4), ("R3", 7)),
    ),
    Fixture(
        label="R3-good-fault-domain-bumped",
        path="src/repro/disk/example.py",
        code=_snippet("""
            class Disk:
                __slots__ = ("service_fraction", "state_changes")

                def throttle(self, fraction: float) -> None:
                    self.service_fraction = fraction
                    self.state_changes += 1
        """),
    ),
    Fixture(
        label="R3-good-scrub-internal-bump",
        path="src/repro/faults/example.py",
        code=_snippet("""
            class Scrubber:
                __slots__ = ("array",)

                def step(self, disk_id: int, position: int) -> bool:
                    return self.array[disk_id].scrub(position)
        """),
    ),
    Fixture(
        label="R3-good-bumped",
        path="src/repro/layout/example.py",
        code=_snippet("""
            class Layout:
                def forget(self, name: str, track: int) -> None:
                    self._data_addr.pop((name, track))
                    self._invalidate_caches()

                def _invalidate_caches(self) -> None:
                    self._epoch += 1
        """),
    ),
    Fixture(
        label="R3-good-init-exempt",
        path="src/repro/layout/example.py",
        code=_snippet("""
            class Layout:
                def __init__(self) -> None:
                    self._data_addr = {}
                    self._epoch = 0
        """),
    ),
    Fixture(
        label="R3-suppressed",
        path="src/repro/layout/example.py",
        code=_snippet("""
            class Layout:
                # Caller owns the epoch bump.
                def forget(self, name: str, track: int) -> None:  # repro: allow(epoch-cache)
                    self._data_addr.pop((name, track))
        """),
    ),
    Fixture(
        label="R3-bad-delta-log-without-bump",
        path="src/repro/layout/example.py",
        code=_snippet("""
            class Layout:
                def log_only(self, name: str) -> None:
                    self._delta_log.append(("place", name))

                def trim(self) -> None:
                    self._delta_floor = self._epoch
        """),
        expect=(("R3", 2), ("R3", 5)),
    ),
    Fixture(
        label="R3-good-delta-log-bumped",
        path="src/repro/layout/example.py",
        code=_snippet("""
            class Layout:
                def _record_delta(self, kind: str, name: str) -> None:
                    self._epoch += 1
                    self._delta_log.append((kind, name))

                def place_one(self, name: str) -> None:
                    self._objects[name] = name
                    self._record_delta("place", name)
        """),
    ),
    Fixture(
        label="R3-bad-cache-evict-without-rekey",
        path="src/repro/sched/example.py",
        code=_snippet("""
            class Scheduler:
                __slots__ = ("_plan_cache", "_ff_tables")

                def evict(self, name: str) -> None:
                    self._plan_cache.pop(name, None)

                def reset_tables(self) -> None:
                    self._ff_tables = {}
        """),
        expect=(("R3", 4), ("R3", 7)),
    ),
    Fixture(
        label="R3-good-cache-evict-rekeyed",
        path="src/repro/sched/example.py",
        code=_snippet("""
            class Scheduler:
                __slots__ = ("_plan_cache", "_plan_cache_key",
                             "_ff_tables", "_ff_tables_key")

                def bridge(self, name: str, key: tuple) -> None:
                    self._plan_cache.pop(name, None)
                    self._plan_cache_key = key

                def reset_tables(self, key: tuple) -> None:
                    self._ff_tables = {}
                    self._ff_tables_key = key

                def fill(self, name: str, plan: object) -> None:
                    self._plan_cache[name] = plan
        """),
    ),
    Fixture(
        label="R3-bad-degraded-cache-without-rekey",
        path="src/repro/sched/example.py",
        code=_snippet("""
            class Scheduler:
                __slots__ = ("_ff_deg_tables", "_ff_geom")

                def reset_degraded(self) -> None:
                    self._ff_deg_tables = {}

                def reset_geometry(self) -> None:
                    self._ff_geom.clear()
        """),
        expect=(("R3", 4), ("R3", 7)),
    ),
    Fixture(
        label="R3-good-degraded-cache-rekeyed",
        path="src/repro/sched/example.py",
        code=_snippet("""
            class Scheduler:
                __slots__ = ("_ff_deg_tables", "_ff_deg_tables_key",
                             "_ff_geom", "_ff_geom_epoch",
                             "_ff_plan", "_ff_plan_key")

                def reset_degraded(self, key: tuple) -> None:
                    self._ff_deg_tables = {}
                    self._ff_deg_tables_key = key

                def reset_geometry(self, epoch: int) -> None:
                    self._ff_geom = {}
                    self._ff_geom_epoch = epoch

                def memoise(self, plan: tuple, key: tuple) -> None:
                    self._ff_plan = plan
                    self._ff_plan_key = key
        """),
    ),
    # -- R4 slots ------------------------------------------------------------
    Fixture(
        label="R4-bad-missing-slots",
        path="src/repro/disk/example.py",
        code=_snippet("""
            class Cache:
                def __init__(self) -> None:
                    self.entries = {}
        """),
        expect=(("R4", 1),),
    ),
    Fixture(
        label="R4-bad-undeclared-attribute",
        path="src/repro/sched/example.py",
        code=_snippet("""
            class Plan:
                __slots__ = ("disk_id",)

                def __init__(self, disk_id: int) -> None:
                    self.disk_id = disk_id
                    self.retries = 0
        """),
        expect=(("R4", 6),),
    ),
    Fixture(
        label="R4-bad-plain-dataclass",
        path="src/repro/sched/example.py",
        code=_snippet("""
            from dataclasses import dataclass


            @dataclass
            class Entry:
                disk_id: int
        """),
        expect=(("R4", 5),),
    ),
    Fixture(
        label="R4-good-slotted-hierarchy",
        path="src/repro/sched/example.py",
        code=_snippet("""
            import enum
            from dataclasses import dataclass


            class Kind(enum.Enum):
                DATA = "data"


            @dataclass(slots=True)
            class Entry:
                disk_id: int


            class Plan:
                __slots__ = ("disk_id", "kind")

                def __init__(self, disk_id: int, kind: Kind) -> None:
                    self.disk_id = disk_id
                    self.kind = kind


            class RecoveryPlan(Plan):
                __slots__ = ("cause",)

                def __init__(self, disk_id: int, kind: Kind) -> None:
                    super().__init__(disk_id, kind)
                    self.cause = None
        """),
    ),
    Fixture(
        label="R4-suppressed",
        path="src/repro/disk/example.py",
        code=_snippet("""
            class Cache:  # repro: allow(slots)
                def __init__(self) -> None:
                    self.entries = {}
        """),
    ),
    # -- R5 float-equality ---------------------------------------------------
    Fixture(
        label="R5-bad-float-compares",
        path="src/repro/analysis/example.py",
        code=_snippet("""
            def same_cost(total_cost: float, other_cost: float) -> bool:
                return total_cost == other_cost


            def is_free(overhead_fraction: float) -> bool:
                return overhead_fraction != 0.0
        """),
        expect=(("R5", 2), ("R5", 6)),
    ),
    Fixture(
        label="R5-good-isclose",
        path="src/repro/analysis/example.py",
        code=_snippet("""
            import math


            def same_cost(total_cost: float, other_cost: float) -> bool:
                return math.isclose(total_cost, other_cost, rel_tol=1e-9)


            def count_matches(streams: int, wanted: int) -> bool:
                return streams == wanted
        """),
    ),
    Fixture(
        label="R5-suppressed",
        path="src/repro/analysis/example.py",
        code=_snippet("""
            def same_cost(total_cost: float, other_cost: float) -> bool:
                return total_cost == other_cost  # repro: allow(float-equality)
        """),
    ),
    # -- R6 typed-defs -------------------------------------------------------
    Fixture(
        label="R6-bad-untyped",
        path="src/repro/analysis/example.py",
        code=_snippet("""
            def cost(disks, price_per_disk: float) -> float:
                return disks * price_per_disk


            def describe() -> str:
                return "ok"


            class Sizer:
                def resize(self, streams: int):
                    self.streams = streams
        """),
        expect=(("R6", 1), ("R6", 10)),
    ),
    Fixture(
        label="R6-good-annotated",
        path="src/repro/analysis/example.py",
        code=_snippet("""
            def cost(disks: int, price_per_disk: float) -> float:
                return disks * price_per_disk


            class Sizer:
                def resize(self, streams: int) -> None:
                    self.streams = streams
        """),
    ),
    Fixture(
        label="R6-suppressed",
        path="src/repro/analysis/example.py",
        code=_snippet("""
            def cost(disks, price_per_disk: float) -> float:  # repro: allow(R6)
                return disks * price_per_disk
        """),
    ),
    # -- R7 spawn-safety -----------------------------------------------------
    Fixture(
        label="R7-bad-lambda-payload",
        path="src/repro/experiments/example.py",
        code=_snippet("""
            from functools import partial

            from repro.parallel import TaskSpec


            def build() -> tuple[object, object]:
                direct = TaskSpec(lambda: 1, label="direct")
                wrapped = TaskSpec(partial(lambda x: x, 1), label="wrapped")
                return direct, wrapped
        """),
        expect=(("R7", 7), ("R7", 8)),
    ),
    Fixture(
        label="R7-bad-nested-payload",
        path="tests/parallel/test_example.py",
        code=_snippet("""
            from repro.parallel import TaskSpec


            def build() -> object:
                def cell() -> int:
                    return 1
                return TaskSpec(fn=cell, label="nested")
        """),
        expect=(("R7", 7),),
    ),
    Fixture(
        label="R7-bad-module-state",
        path="src/repro/parallel.py",
        code=_snippet("""
            _RESULTS: dict[str, int] = {}
            _LABELS = []


            def record(label: str, value: int) -> None:
                _RESULTS[label] = value
                _LABELS.append(label)
        """),
        expect=(("R7", 1), ("R7", 2)),
    ),
    Fixture(
        label="R7-good-module-payload",
        path="src/repro/experiments/example.py",
        code=_snippet("""
            from repro.parallel import TaskSpec


            def cell(index: int) -> int:
                return index * 2


            def build() -> object:
                return TaskSpec(cell, args=(1,), label="ok")
        """),
    ),
    Fixture(
        label="R7-suppressed",
        path="tests/parallel/test_example.py",
        code=_snippet("""
            from repro.parallel import TaskSpec


            def build() -> object:
                return TaskSpec(lambda: 1, label="ok")  # repro: allow(R7)
        """),
    ),
)


def run_self_test() -> list[str]:
    """Run every fixture; return human-readable failure descriptions."""
    analyzer = Analyzer()
    failures: list[str] = []
    for fixture in FIXTURES:
        found = analyzer.check_source(fixture.code, fixture.path)
        got = tuple((finding.rule_id, finding.line) for finding in found)
        if got != fixture.expect:
            failures.append(
                f"{fixture.label}: expected {list(fixture.expect)}, "
                f"got {_describe(found)}")
    return failures


def _describe(findings: list[Finding]) -> str:
    if not findings:
        return "no findings"
    return "; ".join(f"{f.rule_id}@{f.line} ({f.message})" for f in findings)
