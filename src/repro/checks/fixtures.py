"""Good/bad fixture snippets proving each rule fires (and stays quiet).

These back ``python -m repro.checks --self-test`` and the
``tests/checks`` suite: every rule has at least one *bad* snippet with
the exact ``(rule_id, line)`` pairs it must produce, at least one *good*
snippet that must stay clean, and a suppressed variant showing the
``# repro: allow(...)`` escape works.
"""

from __future__ import annotations

import textwrap
from dataclasses import dataclass

from repro.checks.core import Analyzer, Finding


@dataclass(frozen=True)
class Fixture:
    """One self-test snippet and the findings it must produce."""

    label: str
    #: Synthetic path placing the snippet inside the target rule's scope.
    path: str
    code: str
    #: Expected ``(rule_id, line)`` pairs, exactly; empty for good/clean.
    expect: tuple[tuple[str, int], ...] = ()


def _snippet(code: str) -> str:
    return textwrap.dedent(code).strip("\n") + "\n"


FIXTURES: tuple[Fixture, ...] = (
    # -- R1 determinism ------------------------------------------------------
    Fixture(
        label="R1-bad-import-random",
        path="src/repro/workload/example.py",
        code=_snippet("""
            import random


            def draw() -> float:
                return random.random()
        """),
        expect=(("R1", 1),),
    ),
    Fixture(
        label="R1-bad-wall-clock",
        path="src/repro/faults/example.py",
        code=_snippet("""
            import time
            from datetime import datetime


            def stamp() -> float:
                started = time.time()
                label = datetime.now()
                return started
        """),
        expect=(("R1", 6), ("R1", 7)),
    ),
    Fixture(
        label="R1-bad-unseeded-rng",
        path="tests/workload/test_example.py",
        code=_snippet("""
            import numpy as np


            def make_rng() -> object:
                return np.random.default_rng()
        """),
        expect=(("R1", 5),),
    ),
    Fixture(
        label="R1-bad-global-numpy-rng",
        path="src/repro/workload/example.py",
        code=_snippet("""
            import numpy as np


            def draw() -> float:
                np.random.seed(0)
                return float(np.random.uniform())
        """),
        expect=(("R1", 5), ("R1", 6)),
    ),
    Fixture(
        label="R1-bad-seeded-rng-in-src",
        path="src/repro/media/example.py",
        code=_snippet("""
            import numpy as np


            def make_rng() -> object:
                return np.random.default_rng(42)
        """),
        expect=(("R1", 5),),
    ),
    Fixture(
        label="R1-good-seeded-rng-in-tests",
        path="tests/workload/test_example.py",
        code=_snippet("""
            import numpy as np


            def make_rng() -> object:
                return np.random.default_rng(42)
        """),
    ),
    Fixture(
        label="R1-good-random-source",
        path="src/repro/workload/example.py",
        code=_snippet("""
            from repro.sim.rng import RandomSource


            def draw(rng: RandomSource) -> float:
                return rng.uniform("arrivals")
        """),
    ),
    Fixture(
        label="R1-suppressed",
        path="src/repro/workload/example.py",
        code=_snippet("""
            import random  # repro: allow(determinism)


            def draw() -> float:
                return random.random()
        """),
    ),
    # -- R2 units ------------------------------------------------------------
    Fixture(
        label="R2-bad-inline-conversions",
        path="src/repro/sched/example.py",
        code=_snippet("""
            def track_bytes(track_size_mb: float) -> int:
                return int(track_size_mb * 1_000_000)


            def to_mb_s(bandwidth_mbits: float) -> float:
                return bandwidth_mbits / 8
        """),
        expect=(("R2", 2), ("R2", 6)),
    ),
    Fixture(
        label="R2-good-units-vocabulary",
        path="src/repro/sched/example.py",
        code=_snippet("""
            from repro.units import mb_to_bytes, mbits_per_sec


            def track_bytes(track_size_mb: float) -> int:
                return mb_to_bytes(track_size_mb)


            def to_mb_s(bandwidth_mbits: float) -> float:
                return mbits_per_sec(bandwidth_mbits)
        """),
    ),
    Fixture(
        label="R2-good-non-unit-factor",
        path="src/repro/sched/example.py",
        code=_snippet("""
            def spread(count: int) -> int:
                return count * 1000
        """),
    ),
    Fixture(
        label="R2-suppressed",
        path="src/repro/sched/example.py",
        code=_snippet("""
            def track_bytes(track_size_mb: float) -> int:
                return int(track_size_mb * 1_000_000)  # repro: allow(R2)
        """),
    ),
    # -- R3 epoch-cache ------------------------------------------------------
    Fixture(
        label="R3-bad-placement-mutation",
        path="src/repro/layout/example.py",
        code=_snippet("""
            class Layout:
                def forget(self, name: str, track: int) -> None:
                    self._data_addr.pop((name, track))
        """),
        expect=(("R3", 2),),
    ),
    Fixture(
        label="R3-bad-array-flip",
        path="src/repro/sched/example.py",
        code=_snippet("""
            class Scheduler:
                __slots__ = ("array",)

                def crash(self, disk_id: int) -> None:
                    self.array.fail(disk_id)
        """),
        expect=(("R3", 4),),
    ),
    Fixture(
        label="R3-bad-fault-domain-call",
        path="src/repro/faults/example.py",
        code=_snippet("""
            class Harness:
                __slots__ = ("array",)

                def slow_down(self, disk_id: int, fraction: float) -> None:
                    self.array.degrade(disk_id, fraction)

                def plant(self, disk_id: int, position: int) -> None:
                    self.array.inject_media_error(position)
        """),
        expect=(("R3", 4), ("R3", 7)),
    ),
    Fixture(
        label="R3-bad-fail-slow-field",
        path="src/repro/disk/example.py",
        code=_snippet("""
            class Disk:
                __slots__ = ("service_fraction", "_media_errors")

                def throttle(self, fraction: float) -> None:
                    self.service_fraction = fraction

                def corrupt(self, position: int) -> None:
                    self._media_errors[position] = False
        """),
        expect=(("R3", 4), ("R3", 7)),
    ),
    Fixture(
        label="R3-good-fault-domain-bumped",
        path="src/repro/disk/example.py",
        code=_snippet("""
            class Disk:
                __slots__ = ("service_fraction", "state_changes")

                def throttle(self, fraction: float) -> None:
                    self.service_fraction = fraction
                    self.state_changes += 1
        """),
    ),
    Fixture(
        label="R3-good-scrub-internal-bump",
        path="src/repro/faults/example.py",
        code=_snippet("""
            class Scrubber:
                __slots__ = ("array",)

                def step(self, disk_id: int, position: int) -> bool:
                    return self.array[disk_id].scrub(position)
        """),
    ),
    Fixture(
        label="R3-good-bumped",
        path="src/repro/layout/example.py",
        code=_snippet("""
            class Layout:
                def forget(self, name: str, track: int) -> None:
                    self._data_addr.pop((name, track))
                    self._invalidate_caches()

                def _invalidate_caches(self) -> None:
                    self._epoch += 1
        """),
    ),
    Fixture(
        label="R3-good-init-exempt",
        path="src/repro/layout/example.py",
        code=_snippet("""
            class Layout:
                def __init__(self) -> None:
                    self._data_addr = {}
                    self._epoch = 0
        """),
    ),
    Fixture(
        label="R3-suppressed",
        path="src/repro/layout/example.py",
        code=_snippet("""
            class Layout:
                # Caller owns the epoch bump.
                def forget(self, name: str, track: int) -> None:  # repro: allow(epoch-cache)
                    self._data_addr.pop((name, track))
        """),
    ),
    Fixture(
        label="R3-bad-design-cache-mutation",
        path="src/repro/layout/example.py",
        code=_snippet("""
            class DeclusteredLayout:
                def rescan(self) -> None:
                    self._design_rows.clear()
                    self._design_scanned = 0
        """),
        expect=(("R3", 2),),
    ),
    Fixture(
        label="R3-good-design-cache-marked",
        path="src/repro/layout/example.py",
        code=_snippet("""
            class DeclusteredLayout:
                # Construction-time geometry: rows depend only on (D, C).
                def _materialise_rows(self, count: int) -> None:  # repro: allow(epoch-cache)
                    while len(self._design_rows) < count:
                        self._design_rows.append(self._raw_row(
                            self._design_scanned))
                        self._design_scanned += 1
        """),
    ),
    Fixture(
        label="R3-bad-delta-log-without-bump",
        path="src/repro/layout/example.py",
        code=_snippet("""
            class Layout:
                def log_only(self, name: str) -> None:
                    self._delta_log.append(("place", name))

                def trim(self) -> None:
                    self._delta_floor = self._epoch
        """),
        expect=(("R3", 2), ("R3", 5)),
    ),
    Fixture(
        label="R3-good-delta-log-bumped",
        path="src/repro/layout/example.py",
        code=_snippet("""
            class Layout:
                def _record_delta(self, kind: str, name: str) -> None:
                    self._epoch += 1
                    self._delta_log.append((kind, name))

                def place_one(self, name: str) -> None:
                    self._objects[name] = name
                    self._record_delta("place", name)
        """),
    ),
    Fixture(
        label="R3-bad-cache-evict-without-rekey",
        path="src/repro/sched/example.py",
        code=_snippet("""
            class Scheduler:
                __slots__ = ("_plan_cache", "_ff_tables")

                def evict(self, name: str) -> None:
                    self._plan_cache.pop(name, None)

                def reset_tables(self) -> None:
                    self._ff_tables = {}
        """),
        expect=(("R3", 4), ("R3", 7)),
    ),
    Fixture(
        label="R3-good-cache-evict-rekeyed",
        path="src/repro/sched/example.py",
        code=_snippet("""
            class Scheduler:
                __slots__ = ("_plan_cache", "_plan_cache_key",
                             "_ff_tables", "_ff_tables_key")

                def bridge(self, name: str, key: tuple) -> None:
                    self._plan_cache.pop(name, None)
                    self._plan_cache_key = key

                def reset_tables(self, key: tuple) -> None:
                    self._ff_tables = {}
                    self._ff_tables_key = key

                def fill(self, name: str, plan: object) -> None:
                    self._plan_cache[name] = plan
        """),
    ),
    Fixture(
        label="R3-bad-degraded-cache-without-rekey",
        path="src/repro/sched/example.py",
        code=_snippet("""
            class Scheduler:
                __slots__ = ("_ff_deg_tables", "_ff_geom")

                def reset_degraded(self) -> None:
                    self._ff_deg_tables = {}

                def reset_geometry(self) -> None:
                    self._ff_geom.clear()
        """),
        expect=(("R3", 4), ("R3", 7)),
    ),
    Fixture(
        label="R3-good-degraded-cache-rekeyed",
        path="src/repro/sched/example.py",
        code=_snippet("""
            class Scheduler:
                __slots__ = ("_ff_deg_tables", "_ff_deg_tables_key",
                             "_ff_geom", "_ff_geom_epoch",
                             "_ff_plan", "_ff_plan_key")

                def reset_degraded(self, key: tuple) -> None:
                    self._ff_deg_tables = {}
                    self._ff_deg_tables_key = key

                def reset_geometry(self, epoch: int) -> None:
                    self._ff_geom = {}
                    self._ff_geom_epoch = epoch

                def memoise(self, plan: tuple, key: tuple) -> None:
                    self._ff_plan = plan
                    self._ff_plan_key = key
        """),
    ),
    # -- R4 slots ------------------------------------------------------------
    Fixture(
        label="R4-bad-missing-slots",
        path="src/repro/disk/example.py",
        code=_snippet("""
            class Cache:
                def __init__(self) -> None:
                    self.entries = {}
        """),
        expect=(("R4", 1),),
    ),
    Fixture(
        label="R4-bad-undeclared-attribute",
        path="src/repro/sched/example.py",
        code=_snippet("""
            class Plan:
                __slots__ = ("disk_id",)

                def __init__(self, disk_id: int) -> None:
                    self.disk_id = disk_id
                    self.retries = 0
        """),
        expect=(("R4", 6),),
    ),
    Fixture(
        label="R4-bad-plain-dataclass",
        path="src/repro/sched/example.py",
        code=_snippet("""
            from dataclasses import dataclass


            @dataclass
            class Entry:
                disk_id: int
        """),
        expect=(("R4", 5),),
    ),
    Fixture(
        label="R4-good-slotted-hierarchy",
        path="src/repro/sched/example.py",
        code=_snippet("""
            import enum
            from dataclasses import dataclass


            class Kind(enum.Enum):
                DATA = "data"


            @dataclass(slots=True)
            class Entry:
                disk_id: int


            class Plan:
                __slots__ = ("disk_id", "kind")

                def __init__(self, disk_id: int, kind: Kind) -> None:
                    self.disk_id = disk_id
                    self.kind = kind


            class RecoveryPlan(Plan):
                __slots__ = ("cause",)

                def __init__(self, disk_id: int, kind: Kind) -> None:
                    super().__init__(disk_id, kind)
                    self.cause = None
        """),
    ),
    Fixture(
        label="R4-suppressed",
        path="src/repro/disk/example.py",
        code=_snippet("""
            class Cache:  # repro: allow(slots)
                def __init__(self) -> None:
                    self.entries = {}
        """),
    ),
    # -- R5 float-equality ---------------------------------------------------
    Fixture(
        label="R5-bad-float-compares",
        path="src/repro/analysis/example.py",
        code=_snippet("""
            def same_cost(total_cost: float, other_cost: float) -> bool:
                return total_cost == other_cost


            def is_free(overhead_fraction: float) -> bool:
                return overhead_fraction != 0.0
        """),
        expect=(("R5", 2), ("R5", 6)),
    ),
    Fixture(
        label="R5-good-isclose",
        path="src/repro/analysis/example.py",
        code=_snippet("""
            import math


            def same_cost(total_cost: float, other_cost: float) -> bool:
                return math.isclose(total_cost, other_cost, rel_tol=1e-9)


            def count_matches(streams: int, wanted: int) -> bool:
                return streams == wanted
        """),
    ),
    Fixture(
        label="R5-suppressed",
        path="src/repro/analysis/example.py",
        code=_snippet("""
            def same_cost(total_cost: float, other_cost: float) -> bool:
                return total_cost == other_cost  # repro: allow(float-equality)
        """),
    ),
    # -- R6 typed-defs -------------------------------------------------------
    Fixture(
        label="R6-bad-untyped",
        path="src/repro/analysis/example.py",
        code=_snippet("""
            def cost(disks, price_per_disk: float) -> float:
                return disks * price_per_disk


            def describe() -> str:
                return "ok"


            class Sizer:
                def resize(self, streams: int):
                    self.streams = streams
        """),
        expect=(("R6", 1), ("R6", 10)),
    ),
    Fixture(
        label="R6-good-annotated",
        path="src/repro/analysis/example.py",
        code=_snippet("""
            def cost(disks: int, price_per_disk: float) -> float:
                return disks * price_per_disk


            class Sizer:
                def resize(self, streams: int) -> None:
                    self.streams = streams
        """),
    ),
    Fixture(
        label="R6-suppressed",
        path="src/repro/analysis/example.py",
        code=_snippet("""
            def cost(disks, price_per_disk: float) -> float:  # repro: allow(R6)
                return disks * price_per_disk
        """),
    ),
    Fixture(
        label="R6-bad-lambda-assigned",
        path="src/repro/analysis/example.py",
        code=_snippet("""
            cost = lambda disks: disks * 2.0


            class Sizer:
                __slots__ = ("streams",)

                scale = lambda factor: factor
        """),
        expect=(("R6", 1), ("R6", 7)),
    ),
    Fixture(
        label="R6-good-annotated-lambda",
        path="src/repro/analysis/example.py",
        code=_snippet("""
            from typing import Callable

            cost: Callable[[int], float] = lambda disks: disks * 2.0
        """),
    ),
    # -- R7 spawn-safety -----------------------------------------------------
    Fixture(
        label="R7-bad-lambda-payload",
        path="src/repro/experiments/example.py",
        code=_snippet("""
            from functools import partial

            from repro.parallel import TaskSpec


            def build() -> tuple[object, object]:
                direct = TaskSpec(lambda: 1, label="direct")
                wrapped = TaskSpec(partial(lambda x: x, 1), label="wrapped")
                return direct, wrapped
        """),
        expect=(("R7", 7), ("R7", 8)),
    ),
    Fixture(
        label="R7-bad-nested-payload",
        path="tests/parallel/test_example.py",
        code=_snippet("""
            from repro.parallel import TaskSpec


            def build() -> object:
                def cell() -> int:
                    return 1
                return TaskSpec(fn=cell, label="nested")
        """),
        expect=(("R7", 7),),
    ),
    Fixture(
        label="R7-bad-module-state",
        path="src/repro/parallel.py",
        code=_snippet("""
            _RESULTS: dict[str, int] = {}
            _LABELS = []


            def record(label: str, value: int) -> None:
                _RESULTS[label] = value
                _LABELS.append(label)
        """),
        expect=(("R7", 1), ("R7", 2)),
    ),
    Fixture(
        label="R7-good-module-payload",
        path="src/repro/experiments/example.py",
        code=_snippet("""
            from repro.parallel import TaskSpec


            def cell(index: int) -> int:
                return index * 2


            def build() -> object:
                return TaskSpec(cell, args=(1,), label="ok")
        """),
    ),
    Fixture(
        label="R7-suppressed",
        path="tests/parallel/test_example.py",
        code=_snippet("""
            from repro.parallel import TaskSpec


            def build() -> object:
                return TaskSpec(lambda: 1, label="ok")  # repro: allow(R7)
        """),
    ),
    # -- R8 ff-purity --------------------------------------------------------
    Fixture(
        label="R8-bad-impure-probe",
        path="src/repro/sched/example.py",
        code=_snippet("""
            class Scheduler:
                __slots__ = ("_queue",)

                def _fast_forward_ready(self) -> bool:
                    self._queue.pop()
                    return True
        """),
        expect=(("R8", 4),),
    ),
    Fixture(
        label="R8-bad-reachable-helper",
        path="src/repro/sched/example.py",
        code=_snippet("""
            class Scheduler:
                __slots__ = ("_pending",)

                def _ff_classify(self) -> int:
                    return self._scan()

                def _scan(self) -> int:
                    self._pending.append(1)
                    return len(self._pending)
        """),
        expect=(("R8", 7),),
    ),
    Fixture(
        label="R8-good-probe-writes-report",
        path="src/repro/sched/example.py",
        code=_snippet("""
            class Scheduler:
                __slots__ = ("report", "active")

                def _ff_classify(self) -> int:
                    self.report.setdefault("probes", 0)
                    return len(self.active)
        """),
    ),
    Fixture(
        label="R8-suppressed-callee-def",
        path="src/repro/sched/example.py",
        code=_snippet("""
            class Scheduler:
                __slots__ = ("_pending",)

                def _ff_classify(self) -> int:
                    return self._scan()

                def _scan(self) -> int:  # repro: allow(R8)
                    self._pending.append(1)
                    return len(self._pending)
        """),
    ),
    Fixture(
        label="R8-suppressed-call-site",
        path="src/repro/sched/example.py",
        code=_snippet("""
            class Scheduler:
                __slots__ = ("_pending",)

                def _ff_classify(self) -> int:
                    return self._scan()  # repro: allow(R8)

                def _scan(self) -> int:
                    self._pending.append(1)
                    return len(self._pending)
        """),
    ),
    Fixture(
        # The degraded-churn engine re-probes per-stream eligibility on
        # every epoch entry; an impure degraded probe would perturb the
        # simulation exactly where fast==scalar matters most.
        label="R8-bad-impure-degraded-probe",
        path="src/repro/sched/example.py",
        code=_snippet("""
            class Scheduler:
                __slots__ = ("_deg_cache",)

                def _ff_degraded_stream_ok(self, stream: object) -> bool:
                    self._deg_cache.clear()
                    return True
        """),
        expect=(("R8", 4),),
    ),
    Fixture(
        label="R8-good-multi-failure-classify",
        path="src/repro/sched/example.py",
        code=_snippet("""
            class Scheduler:
                __slots__ = ("array", "_known_lost_tracks")

                def _ff_classify(self) -> tuple:
                    failed = self.array.failed_ids
                    if self._known_lost_tracks:
                        if len(failed) > 1:
                            return (None, "shared-group")
                        return (None, "pending-state")
                    return ("degraded" if failed else "healthy", "")
        """),
    ),
    # -- R9 cache-keys -------------------------------------------------------
    Fixture(
        label="R9-bad-incomplete-key",
        path="src/repro/sched/example.py",
        code=_snippet("""
            class Scheduler:
                __slots__ = ("_plan_cache", "_plan_cache_key", "layout")

                def refresh(self) -> None:
                    self._plan_cache = {}
                    self._plan_cache_key = (self.layout.epoch,)
        """),
        expect=(("R9", 6),),
    ),
    Fixture(
        label="R9-bad-unguarded-read",
        path="src/repro/sched/example.py",
        code=_snippet("""
            class Scheduler:
                __slots__ = ("_plan_cache",)

                def peek(self, name: str) -> object:
                    return self._plan_cache.get(name)
        """),
        expect=(("R9", 5),),
    ),
    Fixture(
        label="R9-good-caller-guards-read",
        path="src/repro/sched/example.py",
        code=_snippet("""
            class Scheduler:
                __slots__ = ("_plan_cache", "_plan_cache_key",
                             "layout", "array")

                def run(self) -> object:
                    key = (self.layout.epoch, self.array.state_epoch)
                    if self._plan_cache_key != key:
                        self._plan_cache = {}
                        self._plan_cache_key = key
                    return self._lookup()

                def _lookup(self) -> object:
                    return self._plan_cache.get("x")
        """),
    ),
    Fixture(
        label="R9-suppressed-read",
        path="src/repro/sched/example.py",
        code=_snippet("""
            class Scheduler:
                __slots__ = ("_plan_cache",)

                def peek(self, name: str) -> object:
                    # caller re-keys every cycle  # repro: allow(R9)
                    return self._plan_cache.get(name)
        """),
    ),
    # -- R11 dtype-hygiene ---------------------------------------------------
    Fixture(
        label="R11-bad-accumulation",
        path="src/repro/sched/vec_example.py",
        code=_snippet("""
            import numpy as np


            def loads(ids: object) -> object:
                return np.bincount(ids)


            def fcount(disks: object, ptr: object) -> object:
                down = disks == 3
                return np.add.reduceat(down, ptr)


            def tally(ids: object) -> object:
                counts = np.zeros(8, dtype=np.int64)
                counts[ids] += 0.5
                return counts
        """),
        expect=(("R11", 5), ("R11", 10), ("R11", 15)),
    ),
    Fixture(
        label="R11-bad-empty-partial-seed",
        path="src/repro/workload/vec_example.py",
        code=_snippet("""
            import numpy as np


            def carry(gaps: object, start: float) -> object:
                steps = np.empty(4)
                steps[0] = start
                return np.cumsum(steps)
        """),
        expect=(("R11", 5),),
    ),
    Fixture(
        label="R11-good-real-idioms",
        path="src/repro/sched/vec_example.py",
        code=_snippet("""
            import numpy as np


            def loads(ids: object, n: int) -> object:
                return np.bincount(ids, minlength=n)


            def fcount(disks: object, ptr: object) -> object:
                down = disks == 3
                return np.add.reduceat(down.astype(np.int64), ptr)


            def carry(gaps: object, start: float) -> object:
                steps = np.empty(4)
                steps[0] = start
                steps[1:] = gaps
                return np.cumsum(steps)
        """),
    ),
    Fixture(
        label="R11-suppressed",
        path="src/repro/sched/vec_example.py",
        code=_snippet("""
            import numpy as np


            def loads(ids: object) -> object:
                return np.bincount(ids)  # repro: allow(R11)
        """),
    ),
)


@dataclass(frozen=True)
class ProjectFixture:
    """A multi-file self-test project for the cross-file flow rules.

    Findings are expected as exact ``(rule_id, path, line)`` triples
    across the whole analyzed set.
    """

    label: str
    files: tuple[tuple[str, str], ...]
    expect: tuple[tuple[str, str, int], ...] = ()


PROJECT_FIXTURES: tuple[ProjectFixture, ...] = (
    ProjectFixture(
        label="R10-bad-cross-subsystem-collision",
        files=(
            ("src/repro/faults/example.py", _snippet("""
                class FaultClock:
                    __slots__ = ("rng",)

                    def next_fail(self) -> float:
                        return self.rng.exponential("events", 100.0)
            """)),
            ("src/repro/workload/example.py", _snippet("""
                class Arrivals:
                    __slots__ = ("rng",)

                    def next_gap(self) -> float:
                        return self.rng.exponential("events", 1.0)
            """)),
        ),
        expect=(("R10", "src/repro/faults/example.py", 5),
                ("R10", "src/repro/workload/example.py", 5)),
    ),
    ProjectFixture(
        label="R10-bad-handle-escape",
        files=(
            ("src/repro/workload/example.py", _snippet("""
                class Sampler:
                    __slots__ = ("_rng",)

                    def handle(self) -> object:
                        return self._rng.stream("arrivals")
            """)),
            ("src/repro/sched/example.py", _snippet("""
                class Consumer:
                    __slots__ = ()

                    def pull(self, sampler: Sampler) -> float:
                        gen = sampler.handle()
                        return float(next(gen))
            """)),
        ),
        expect=(("R10", "src/repro/workload/example.py", 5),),
    ),
    ProjectFixture(
        label="R10-good-isolated-streams",
        files=(
            ("src/repro/faults/example.py", _snippet("""
                class FaultClock:
                    __slots__ = ("rng",)

                    def next_fail(self) -> float:
                        return self.rng.exponential("events", 100.0)
            """)),
            ("src/repro/workload/example.py", _snippet("""
                class Arrivals:
                    __slots__ = ("rng",)

                    def next_gap(self) -> float:
                        return self.rng.exponential("arrivals", 1.0)
            """)),
        ),
    ),
    ProjectFixture(
        label="R10-suppressed-one-site",
        files=(
            ("src/repro/faults/example.py", _snippet("""
                class FaultClock:
                    __slots__ = ("rng",)

                    def next_fail(self) -> float:
                        # legacy shared stream  # repro: allow(R10)
                        return self.rng.exponential("events", 100.0)
            """)),
            ("src/repro/workload/example.py", _snippet("""
                class Arrivals:
                    __slots__ = ("rng",)

                    def next_gap(self) -> float:
                        return self.rng.exponential("events", 1.0)
            """)),
        ),
        expect=(("R10", "src/repro/workload/example.py", 5),),
    ),
    ProjectFixture(
        # The cluster package is its own R10 subsystem: its
        # ``cluster-placement`` stream must stay inside it ...
        label="R10-good-cluster-stream-isolated",
        files=(
            ("src/repro/cluster/example.py", _snippet("""
                class Placer:
                    __slots__ = ("rng",)

                    def pick(self, count: int) -> int:
                        return self.rng.integers("cluster-placement", 0,
                                                 count)
            """)),
            ("src/repro/workload/example.py", _snippet("""
                class Arrivals:
                    __slots__ = ("rng",)

                    def next_gap(self) -> float:
                        return self.rng.exponential("arrivals", 1.0)
            """)),
        ),
    ),
    ProjectFixture(
        # ... and borrowing it from another subsystem is a collision on
        # both sides of the boundary.
        label="R10-bad-cluster-stream-borrowed",
        files=(
            ("src/repro/cluster/example.py", _snippet("""
                class Placer:
                    __slots__ = ("rng",)

                    def pick(self, count: int) -> int:
                        return self.rng.integers("cluster-placement", 0,
                                                 count)
            """)),
            ("src/repro/workload/example.py", _snippet("""
                class Arrivals:
                    __slots__ = ("rng",)

                    def shard_of(self, count: int) -> int:
                        return self.rng.integers("cluster-placement", 0,
                                                 count)
            """)),
        ),
        expect=(("R10", "src/repro/cluster/example.py", 5),
                ("R10", "src/repro/workload/example.py", 5)),
    ),
    ProjectFixture(
        label="R9-good-cross-file-guard",
        files=(
            ("src/repro/sched/example.py", _snippet("""
                class Scheduler:
                    __slots__ = ("_plan_cache", "_plan_cache_key",
                                 "layout", "array")

                    def _refresh_plan_cache(self) -> None:
                        key = (self.layout.epoch, self.array.state_epoch)
                        if self._plan_cache_key != key:
                            self._plan_cache = {}
                            self._plan_cache_key = key

                    def _lookup(self) -> object:
                        return self._plan_cache.get("x")
            """)),
            ("src/repro/sched/driver_example.py", _snippet("""
                class Driver(Scheduler):
                    __slots__ = ()

                    def run_cycle(self) -> object:
                        self._refresh_plan_cache()
                        return self._lookup()
            """)),
        ),
    ),
)


def run_self_test() -> list[str]:
    """Run every fixture; return human-readable failure descriptions."""
    analyzer = Analyzer()
    failures: list[str] = []
    for fixture in FIXTURES:
        found = analyzer.check_source(fixture.code, fixture.path)
        got = tuple((finding.rule_id, finding.line) for finding in found)
        if got != fixture.expect:
            failures.append(
                f"{fixture.label}: expected {list(fixture.expect)}, "
                f"got {_describe(found)}")
    for project in PROJECT_FIXTURES:
        found = analyzer.check_sources(list(project.files))
        triples = tuple(sorted(
            (finding.rule_id, finding.path, finding.line)
            for finding in found))
        if triples != tuple(sorted(project.expect)):
            failures.append(
                f"{project.label}: expected {sorted(project.expect)}, "
                f"got {_describe(found)}")
    return failures


def fixture_count() -> int:
    """Total fixtures the self-test runs (single-file + project)."""
    return len(FIXTURES) + len(PROJECT_FIXTURES)


def _describe(findings: list[Finding]) -> str:
    if not findings:
        return "no findings"
    return "; ".join(f"{f.rule_id}@{f.line} ({f.message})" for f in findings)
