"""``repro.checks``: AST-based static analysis of simulator invariants.

The paper's numbers are only meaningful if the simulator is deterministic
and unit-correct, and PR 1's plan cache is only sound if every state
mutation bumps an epoch.  This package turns those conventions into
machine-checked rules — see ``docs/STATIC_ANALYSIS.md`` for the catalog,
suppression syntax, and how to add a rule.

Usage::

    python -m repro.checks src/ tests/            # analyze the repo
    python -m repro.checks --list-rules           # rule catalog
    python -m repro.checks --self-test            # built-in fixtures
    python -m repro.checks --format json src/     # CI output
    python -m repro.checks --format sarif src/    # code-scanning output
    python -m repro.checks --changed-only REF     # diff + dependents only
    python -m repro.checks --mutation-audit       # audit the analyzer
"""

from __future__ import annotations

from repro.checks.core import (
    Analyzer,
    AnalysisError,
    FileContext,
    Finding,
    ProjectIndex,
    Report,
    Rule,
)
from repro.checks.callgraph import CallGraph
from repro.checks.effects import EffectSummary, ProjectAnalysis
from repro.checks.fixtures import (
    FIXTURES,
    PROJECT_FIXTURES,
    Fixture,
    ProjectFixture,
    run_self_test,
)
from repro.checks.mutation import run_mutation_audit
from repro.checks.rules import ALL_RULES, default_rules, rules_by_id

__all__ = [
    "ALL_RULES",
    "AnalysisError",
    "Analyzer",
    "CallGraph",
    "EffectSummary",
    "FIXTURES",
    "FileContext",
    "Finding",
    "Fixture",
    "PROJECT_FIXTURES",
    "ProjectAnalysis",
    "ProjectFixture",
    "ProjectIndex",
    "Report",
    "Rule",
    "default_rules",
    "rules_by_id",
    "run_mutation_audit",
    "run_self_test",
]
