"""Command-line entry point: ``python -m repro.checks [paths ...]``.

Exit codes: 0 clean, 1 findings (or self-test failures), 2 bad usage or
unanalyzable input.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.checks.core import AnalysisError, Analyzer
from repro.checks.fixtures import FIXTURES, run_self_test
from repro.checks.rules import ALL_RULES, default_rules, rules_by_id


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI definition."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.checks",
        description=("Static analysis of the simulator's invariants: "
                     "determinism, units discipline, epoch-cache "
                     "soundness, __slots__ consistency, float equality, "
                     "typed defs."),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to analyze (default: src tests)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json is machine-readable, for CI)")
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule IDs or names to run (default: all)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit")
    parser.add_argument(
        "--self-test", action="store_true",
        help="run the built-in good/bad fixtures instead of analyzing "
             "files")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the CLI; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_class in ALL_RULES:
            print(f"{rule_class.rule_id}  {rule_class.name:<16} "
                  f"{rule_class.description}")
        return 0
    if args.self_test:
        return _self_test(args.format)
    try:
        rules = (rules_by_id(args.select.split(","))
                 if args.select else default_rules())
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    analyzer = Analyzer(rules)
    try:
        report = analyzer.check_paths(args.paths)
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        for finding in report.findings:
            print(finding.render())
        status = "clean" if report.ok else \
            f"{len(report.findings)} finding(s)"
        print(f"repro.checks: {report.files_checked} file(s), "
              f"{len(rules)} rule(s): {status}")
    return 0 if report.ok else 1


def _self_test(output_format: str) -> int:
    failures = run_self_test()
    if output_format == "json":
        print(json.dumps({
            "ok": not failures,
            "fixtures": len(FIXTURES),
            "failures": failures,
        }, indent=2))
    else:
        for failure in failures:
            print(f"self-test FAILED: {failure}")
        print(f"repro.checks --self-test: {len(FIXTURES)} fixture(s), "
              f"{len(failures)} failure(s)")
    return 1 if failures else 0
