"""Command-line entry point: ``python -m repro.checks [paths ...]``.

Exit codes: 0 clean, 1 findings (or self-test/mutation-audit failures),
2 bad usage or unanalyzable input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.checks.core import AnalysisError, Analyzer
from repro.checks.fixtures import fixture_count, run_self_test
from repro.checks.rules import ALL_RULES, default_rules, rules_by_id


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI definition."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.checks",
        description=("Static analysis of the simulator's invariants: "
                     "determinism, units discipline, epoch-cache "
                     "soundness, __slots__ consistency, float equality, "
                     "typed defs, spawn safety, and the interprocedural "
                     "flow rules (ff purity, cache-key completeness, RNG "
                     "stream isolation, numpy dtype hygiene)."),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to analyze (default: src tests)")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (json/sarif are machine-readable, for CI)")
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule IDs or names to run (default: all)")
    parser.add_argument(
        "--changed-only", metavar="GIT_REF",
        help="report findings only for files changed since GIT_REF plus "
             "their reverse call-graph dependents (the whole tree is "
             "still parsed, so interprocedural rules stay sound)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit")
    parser.add_argument(
        "--self-test", action="store_true",
        help="run the built-in good/bad fixtures instead of analyzing "
             "files")
    parser.add_argument(
        "--mutation-audit", action="store_true",
        help="plant canned bugs in fixtures and a copy of the real "
             "source tree and verify every mutant is killed by the "
             "expected rule")
    parser.add_argument(
        "--mutation-seed", type=int, default=None, metavar="N",
        help="site-selection seed for --mutation-audit (default: the "
             "pinned CI seed; any seed must yield a 100%% kill rate)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the CLI; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_class in ALL_RULES:
            print(f"{rule_class.rule_id:<4} {rule_class.name:<16} "
                  f"{rule_class.description}")
        return 0
    if args.self_test:
        return _self_test(args.format)
    if args.mutation_audit:
        return _mutation_audit(args.format, args.mutation_seed)
    try:
        rules = (rules_by_id(args.select.split(","))
                 if args.select else default_rules())
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    analyzer = Analyzer(rules)
    only_files: Optional[set[str]] = None
    if args.changed_only is not None:
        from repro.checks.incremental import affected_files
        analyzed = sorted(analyzer._expand(args.paths))
        try:
            only_files = affected_files(args.changed_only, analyzed)
        except AnalysisError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        report = analyzer.check_paths(args.paths, only_files=only_files)
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    elif args.format == "sarif":
        from repro.checks.sarif import render_sarif
        print(render_sarif(report, rules))
    else:
        for finding in report.findings:
            print(finding.render())
        scope = (f" ({len(only_files)} in scope of "
                 f"--changed-only {args.changed_only})"
                 if only_files is not None else "")
        status = "clean" if report.ok else \
            f"{len(report.findings)} finding(s)"
        print(f"repro.checks: {report.files_checked} file(s){scope}, "
              f"{len(rules)} rule(s): {status}")
    return 0 if report.ok else 1


def _self_test(output_format: str) -> int:
    failures = run_self_test()
    total = fixture_count()
    if output_format == "json":
        print(json.dumps({
            "ok": not failures,
            "fixtures": total,
            "failures": failures,
        }, indent=2))
    else:
        for failure in failures:
            print(f"self-test FAILED: {failure}")
        print(f"repro.checks --self-test: {total} fixture(s), "
              f"{len(failures)} failure(s)")
    return 1 if failures else 0


def _mutation_audit(output_format: str, seed: Optional[int]) -> int:
    from repro.checks.mutation import DEFAULT_SEED, run_mutation_audit
    audit = run_mutation_audit(
        seed if seed is not None else DEFAULT_SEED,
        repo_root=Path("."))
    if output_format in ("json", "sarif"):
        print(json.dumps(audit.to_dict(), indent=2))
    else:
        for result in audit.results:
            mark = "killed" if result.killed else "SURVIVED"
            extra = f"  ({result.detail})" if result.detail else ""
            print(f"{mark:9s} [{result.kill:>3}] {result.kind}:"
                  f"{result.op} site {result.site + 1}/"
                  f"{result.occurrences}{extra}")
        print(f"repro.checks --mutation-audit: seed {audit.seed}, "
              f"{audit.killed}/{len(audit.results)} mutant(s) killed")
    return 0 if audit.ok else 1
