"""``python -m repro.checks`` dispatches to the CLI."""

from __future__ import annotations

import sys

from repro.checks.cli import main

if __name__ == "__main__":
    sys.exit(main())
