"""R2 — units discipline: conversions go through ``repro.units``.

``units.py`` warns that silently mixing Mb/MB/KB "is the single easiest
way to get every downstream number wrong".  This rule flags raw
magic-number conversions — ``* 8``, ``/ 1000``, ``* 1024``,
``* 1_000_000``, ``/ 3600`` and friends — applied to expressions whose
identifiers look unit-bearing (``..._mb``, ``..._s``, ``bandwidth``,
``track_size``, ...).  The fix is always the same: name the conversion by
calling the ``repro.units`` vocabulary (or extend it).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.checks.core import (
    FileContext,
    Finding,
    Rule,
    in_project_source,
    under,
)

#: Conversion factors whose bare appearance next to a unit-bearing operand
#: marks an inline conversion.  60 is deliberately absent (too many
#: legitimate non-unit uses).
MAGIC_FACTORS = frozenset({8, 1000, 1024, 1_000_000, 1024 * 1024, 3600, 8760})

#: Identifier fragments that mark an operand as carrying a physical unit.
UNIT_HINT = re.compile(
    r"(_mb|_kb|_gb|mbit|bytes?|bits?|bandwidth|_rate|track_size"
    r"|capacity|_ms\b|_s\b|_sec|seconds|_hours?|_years?)",
    re.IGNORECASE,
)


class UnitsRule(Rule):
    """R2: no raw magic-number unit conversions outside units.py."""

    rule_id = "R2"
    name = "units"
    description = ("unit conversions must call the repro.units vocabulary, "
                   "not inline magic factors")

    def applies_to(self, path: str) -> bool:
        return in_project_source(path) and not under(path, "repro/units.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp):
                continue
            if not isinstance(node.op, (ast.Mult, ast.Div)):
                continue
            factor, operand = _split(node)
            if factor is None or operand is None:
                continue
            hints = [name for name in _identifiers(operand)
                     if UNIT_HINT.search(name)]
            if hints:
                op = "*" if isinstance(node.op, ast.Mult) else "/"
                yield self.finding(
                    ctx, node,
                    f"inline unit conversion '{hints[0]} {op} {factor}'; "
                    "call the repro.units vocabulary instead")


def _split(node: ast.BinOp) -> tuple[object, ast.expr | None]:
    """``(magic factor, the other operand)`` or ``(None, None)``."""
    for factor_side, other in ((node.right, node.left),
                               (node.left, node.right)):
        if isinstance(factor_side, ast.Constant) \
                and isinstance(factor_side.value, (int, float)) \
                and not isinstance(factor_side.value, bool) \
                and factor_side.value in MAGIC_FACTORS:
            return factor_side.value, other
    return None, None


def _identifiers(node: ast.expr) -> Iterator[str]:
    """Every Name/Attribute identifier inside an expression."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            yield child.id
        elif isinstance(child, ast.Attribute):
            yield child.attr
