"""The rule registry: one class per simulator invariant."""

from __future__ import annotations

from repro.checks.core import Rule
from repro.checks.rules.cachekeys import CacheKeyRule
from repro.checks.rules.determinism import DeterminismRule
from repro.checks.rules.dtypes import DtypeHygieneRule
from repro.checks.rules.epoch import EpochCacheRule
from repro.checks.rules.ffpurity import FfPurityRule
from repro.checks.rules.floatcmp import FloatEqualityRule
from repro.checks.rules.rngtaint import RngTaintRule
from repro.checks.rules.slots import SlotsRule
from repro.checks.rules.spawn_safety import SpawnSafetyRule
from repro.checks.rules.typed_defs import TypedDefsRule
from repro.checks.rules.units import UnitsRule

#: Every shipped rule class, in rule-ID order.
ALL_RULES: tuple[type[Rule], ...] = (
    DeterminismRule,
    UnitsRule,
    EpochCacheRule,
    SlotsRule,
    FloatEqualityRule,
    TypedDefsRule,
    SpawnSafetyRule,
    FfPurityRule,
    CacheKeyRule,
    RngTaintRule,
    DtypeHygieneRule,
)


def default_rules() -> list[Rule]:
    """Fresh instances of every shipped rule."""
    return [rule_class() for rule_class in ALL_RULES]


def rules_by_id(selected: list[str]) -> list[Rule]:
    """Instances of the rules named by ID or name (case-insensitive)."""
    wanted = {token.strip().lower() for token in selected if token.strip()}
    chosen = [rule_class() for rule_class in ALL_RULES
              if rule_class.rule_id.lower() in wanted
              or rule_class.name.lower() in wanted]
    matched = {rule.rule_id.lower() for rule in chosen} \
        | {rule.name.lower() for rule in chosen}
    unknown = wanted - matched
    if unknown:
        raise ValueError(f"unknown rule(s): {', '.join(sorted(unknown))}")
    return chosen


__all__ = [
    "ALL_RULES",
    "CacheKeyRule",
    "DeterminismRule",
    "DtypeHygieneRule",
    "EpochCacheRule",
    "FfPurityRule",
    "FloatEqualityRule",
    "RngTaintRule",
    "SlotsRule",
    "SpawnSafetyRule",
    "TypedDefsRule",
    "UnitsRule",
    "default_rules",
    "rules_by_id",
]
