"""R3 — epoch-cache soundness: state mutations must bump an epoch.

PR 1's cycle-plan cache is keyed on ``(layout.epoch, array.state_epoch)``
and is only sound if *every* mutation of placement or array state moves
one of those counters.  This rule makes the contract machine-checked:

* a function in ``layout/`` that mutates placement state
  (``_data_addr``, ``_parity_addr``, ``_objects``, ``_start_cluster``,
  ``_disk_contents``, ``_free_positions``, ``_next_position``) must also
  call ``_invalidate_caches()`` (or bump ``_epoch``) in the same body;
* a function in ``disk/`` that assigns the fault-domain state fields
  (``state``, ``is_failed``, ``service_fraction``, ``_media_errors``)
  must also touch ``state_changes``;
* a function in ``sched/`` or ``faults/`` that moves a disk's fault
  domain through the array (``...array.fail/repair/degrade/restore/
  inject_media_error/begin_rebuild(...)``) must also call
  ``_invalidate_plan_cache()``;
* (delta path, PR 5) a function in ``layout/`` that touches the
  placement delta log (``_delta_log``, ``_delta_floor``) must bump the
  epoch in the same body — a logged delta without an epoch move would
  let schedulers bridge to a key that never changed;
* (declustered layout, PR 8) a function in ``layout/`` that mutates the
  block-design geometry memo (``_design_rows``, ``_design_scanned``)
  must bump the epoch or carry the ``allow(epoch-cache)`` marker — the
  memo is construction-time geometry (rows depend only on ``(D, C)``),
  but an unmarked mutation site could reorder or truncate the scan and
  silently remap every placed group;
* (delta path, PR 5) a function in ``sched/`` that *rewrites or evicts*
  from a plan cache (``_plan_cache``, ``_ff_tables``, and since PR 6 the
  degraded tables ``_ff_deg_tables``, the layout-epoch geometry
  ``_ff_geom``, and the rebuilder's vector-plan memo ``_ff_plan`` —
  whole-attribute assignment or a mutator-method call) must re-key it by
  assigning the matching key field (``_plan_cache_key``,
  ``_ff_tables_key``, ``_ff_deg_tables_key``, ``_ff_geom_epoch``,
  ``_ff_plan_key``) or calling an invalidator in the same body.
  Subscript fills (``cache[k] = plan``) are exempt: lazily populating a
  cache under its current key is always sound.

``__init__`` is exempt (construction is not a live-state mutation);
helpers whose *callers* own the epoch bump carry an
``# repro: allow(epoch-cache)`` with a justifying comment.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.core import (
    FileContext,
    Finding,
    Rule,
    in_project_source,
    under,
)

#: Layout placement state: mutating any of these invalidates group plans.
PLACEMENT_FIELDS = frozenset({
    "_data_addr", "_parity_addr", "_objects", "_start_cluster",
    "_disk_contents", "_free_positions", "_next_position",
})

#: Disk fault-domain state: flipping these must move ``state_changes``.
#: ``service_fraction`` (fail-slow) and ``_media_errors`` (latent sector
#: errors) feed the slot table and read path, so stale plans would serve
#: from a disk the fault domain already marked unhealthy.
DISK_STATE_FIELDS = frozenset({
    "state", "is_failed", "service_fraction", "_media_errors",
})

#: The layout's placement delta log: appending or trimming without an
#: epoch bump would desynchronise the log from the key it describes.
DELTA_FIELDS = frozenset({"_delta_log", "_delta_floor"})

#: The declustered layout's block-design memo: rows are scanned strictly
#: in diagonal order and every placed group's addresses derive from row
#: indices, so any mutation outside the designated (marked) materialiser
#: could remap placed data without moving the epoch.
DESIGN_CACHE_FIELDS = frozenset({"_design_rows", "_design_scanned"})

#: Scheduler plan caches and the epoch-pair keys that guard them.
#: ``_ff_deg_tables`` (degraded read tables, PR 6) is keyed like the
#: healthy tables; ``_ff_geom`` (placement geometry) is keyed on the
#: layout epoch alone; ``_ff_plan`` is the rebuilder's vector-plan memo.
SCHED_CACHE_FIELDS = frozenset({
    "_plan_cache", "_ff_tables", "_ff_deg_tables", "_ff_geom", "_ff_plan",
})
SCHED_CACHE_KEY_FIELDS = frozenset({
    "_plan_cache_key", "_ff_tables_key", "_ff_deg_tables_key",
    "_ff_geom_epoch", "_ff_plan_key",
})

#: Calls that count as bumping an epoch / invalidating plan caches.
BUMP_CALLS = frozenset({
    "_invalidate_caches", "_invalidate_plan_cache", "_record_delta",
})

#: Attributes whose assignment *is* the epoch bump.
EPOCH_FIELDS = frozenset({"_epoch", "state_changes"})

#: Container methods that mutate in place.
MUTATOR_METHODS = frozenset({
    "pop", "popleft", "append", "appendleft", "extend", "insert", "clear",
    "update", "setdefault", "add", "discard", "remove",
})


class EpochCacheRule(Rule):
    """R3: placement/array-state mutations must bump their epoch."""

    rule_id = "R3"
    name = "epoch-cache"
    description = ("mutations of placement or array state must bump the "
                   "corresponding epoch counter (plan-cache invalidation "
                   "contract)")

    def applies_to(self, path: str) -> bool:
        return in_project_source(path) and under(
            path, "layout/", "sched/", "disk/", "faults/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            if node.name == "__init__":
                continue
            mutated = sorted(self._mutated_fields(node))
            flips = self._array_state_calls(node)
            rewritten = sorted(self._cache_rewrites(node))
            if rewritten and not self._rekeys_cache(node) \
                    and not self._bumps_epoch(node):
                yield self.finding(
                    ctx, node,
                    f"'{node.name}' rewrites {', '.join(rewritten)} without "
                    "re-keying (_plan_cache_key/_ff_tables_key) — stale "
                    "plans would survive under a moved epoch pair")
            if not mutated and not flips:
                continue
            if self._bumps_epoch(node):
                continue
            if mutated:
                yield self.finding(
                    ctx, node,
                    f"'{node.name}' mutates {', '.join(mutated)} without "
                    "bumping an epoch (_invalidate_caches/_epoch/"
                    "state_changes)")
            else:
                yield self.finding(
                    ctx, node,
                    f"'{node.name}' calls array.{flips[0]}() without "
                    "calling _invalidate_plan_cache()")

    # -- detection helpers ---------------------------------------------------

    def _mutated_fields(self, func: ast.AST) -> set[str]:
        protected = (PLACEMENT_FIELDS | DISK_STATE_FIELDS | DELTA_FIELDS
                     | DESIGN_CACHE_FIELDS)
        fields: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    name = _assigned_field(target)
                    if name in protected:
                        fields.add(name)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    name = _assigned_field(target)
                    if name in protected:
                        fields.add(name)
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in MUTATOR_METHODS:
                for name in _attribute_names(node.func.value):
                    if name in protected:
                        fields.add(name)
        return fields

    #: Fault-domain transitions reachable through an array reference.
    #: ``scrub`` is deliberately absent: the scrubber repairs media
    #: errors through :meth:`Disk.scrub`, which bumps internally.
    ARRAY_STATE_CALLS = ("fail", "repair", "degrade", "restore",
                         "inject_media_error", "begin_rebuild")

    def _array_state_calls(self, func: ast.AST) -> list[str]:
        calls: list[str] = []
        for node in ast.walk(func):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in self.ARRAY_STATE_CALLS \
                    and "array" in _attribute_names(node.func.value):
                calls.append(node.func.attr)
        return calls

    def _cache_rewrites(self, func: ast.AST) -> set[str]:
        """Plan caches this function rewrites or evicts from.

        Whole-attribute assignment (``self._plan_cache = {}``) and
        mutator-method calls (``.clear()``, ``.pop()``) count; subscript
        fills (``self._plan_cache[name] = plan``) do not — populating a
        cache under its current key needs no re-key.
        """
        fields: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    # Attribute (not Subscript) target: whole rewrite.
                    if isinstance(target, ast.Attribute) \
                            and target.attr in SCHED_CACHE_FIELDS:
                        fields.add(target.attr)
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in MUTATOR_METHODS:
                for name in _attribute_names(node.func.value):
                    if name in SCHED_CACHE_FIELDS:
                        fields.add(name)
        return fields

    def _rekeys_cache(self, func: ast.AST) -> bool:
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if _assigned_field(target) in SCHED_CACHE_KEY_FIELDS:
                        return True
        return False

    def _bumps_epoch(self, func: ast.AST) -> bool:
        for node in ast.walk(func):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in BUMP_CALLS:
                return True
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if _assigned_field(target) in EPOCH_FIELDS:
                        return True
        return False


def _assigned_field(target: ast.expr) -> str:
    """The attribute name an assignment/delete ultimately touches.

    ``self._data_addr[k] = v`` and ``del self._objects[k]`` both resolve
    to the underlying attribute name.
    """
    while isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Attribute):
        return target.attr
    return ""


def _attribute_names(node: ast.expr) -> set[str]:
    """All attribute/name identifiers inside an expression subtree."""
    names: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute):
            names.add(child.attr)
        elif isinstance(child, ast.Name):
            names.add(child.id)
    return names
