"""R5 — float equality in the analysis layer.

The analysis modules reproduce the paper's closed-form numbers; chained
float arithmetic means exact ``==``/``!=`` comparisons are either
accidentally true today and silently false after a refactor, or vice
versa.  Inside ``analysis/`` any equality whose operands look float-like
— a float literal, a division, ``float(...)``/``math.*`` results, or an
identifier with a unit-ish suffix (``_s``, ``_mb``, ``_years``,
``_fraction``, ``_cost``, ...) — must go through ``math.isclose`` (or
``pytest.approx`` in tests) with an explicit tolerance.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.checks.core import (
    FileContext,
    Finding,
    Rule,
    in_project_source,
    under,
)

#: Identifier suffixes that mark a value as a float quantity.
FLOAT_HINT = re.compile(
    r"(_s|_ms|_mb|_kb|_gb|_mb_s|_years?|_hours?|_fraction|_cost|_rate"
    r"|_prob|_pct|_overhead|_latency)$")

#: Comparison wrappers that make float comparison safe.
SAFE_CALLS = frozenset({"isclose", "approx"})


class FloatEqualityRule(Rule):
    """R5: no bare ==/!= between float expressions in analysis/."""

    rule_id = "R5"
    name = "float-equality"
    description = ("float expressions must be compared with math.isclose "
                   "/ pytest.approx, never bare ==/!=")

    def applies_to(self, path: str) -> bool:
        return in_project_source(path) and under(path, "analysis/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_safe(left) or _is_safe(right):
                    continue
                if _is_floatish(left) or _is_floatish(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        ctx, node,
                        f"bare float '{symbol}' comparison; use "
                        "math.isclose(..., rel_tol=...)")


def _is_safe(node: ast.expr) -> bool:
    """True for math.isclose(...) / pytest.approx(...) operands."""
    if isinstance(node, ast.Call):
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else \
            func.id if isinstance(func, ast.Name) else ""
        return name in SAFE_CALLS
    return False


def _is_floatish(node: ast.expr) -> bool:
    """Heuristic: does this expression produce a float?"""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _is_floatish(node.left) or _is_floatish(node.right)
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id == "float":
            return True
        if isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name) \
                and func.value.id == "math":
            return True
        return False
    if isinstance(node, ast.Name):
        return bool(FLOAT_HINT.search(node.id))
    if isinstance(node, ast.Attribute):
        return bool(FLOAT_HINT.search(node.attr))
    return False
