"""R1 — determinism: all randomness flows through ``sim.rng``.

The simulator's contract is that a run is fully determined by
``(root_seed, stream names used)``.  Anything that reads the wall clock
or an unseeded/global RNG silently breaks replays, so outside
``sim/rng.py``:

* the stdlib ``random`` module must not be imported;
* ``time.time``/``time.time_ns`` and ``datetime.now/utcnow/today`` must
  not be called;
* numpy's *global* RNG (``np.random.<dist>``, ``np.random.seed``) must
  not be used at all;
* ``np.random.default_rng()`` without a seed is forbidden everywhere;
  with a seed it is still forbidden in ``src/repro`` (draws must flow
  through a named :class:`repro.sim.rng.RandomSource` stream) but is
  tolerated in tests.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.core import (
    FileContext,
    Finding,
    Rule,
    in_project_source,
    under,
)

_WALL_CLOCK_TIME = {"time", "time_ns"}
_WALL_CLOCK_DATETIME = {"now", "utcnow", "today"}


class DeterminismRule(Rule):
    """R1: no wall-clock reads, no global or unseeded RNGs."""

    rule_id = "R1"
    name = "determinism"
    description = ("randomness must flow through sim.rng.RandomSource "
                   "named streams; no wall-clock or global RNG use")

    def applies_to(self, path: str) -> bool:
        return not under(path, "sim/rng.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        yield self.finding(
                            ctx, node,
                            "import of the stdlib 'random' module; draw "
                            "from a sim.rng.RandomSource named stream "
                            "instead")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        ctx, node,
                        "import from the stdlib 'random' module; draw "
                        "from a sim.rng.RandomSource named stream instead")
                elif node.module == "time":
                    bad = [alias.name for alias in node.names
                           if alias.name in _WALL_CLOCK_TIME]
                    if bad:
                        yield self.finding(
                            ctx, node,
                            f"wall-clock import time.{bad[0]}; simulations "
                            "must not read real time")
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _check_call(self, ctx: FileContext,
                    node: ast.Call) -> Iterator[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        chain = _attribute_chain(func)
        if chain[-2:] == ["time", "time"] or chain[-2:] == ["time",
                                                            "time_ns"]:
            yield self.finding(
                ctx, node,
                f"wall-clock call {'.'.join(chain)}(); simulations must "
                "not read real time")
            return
        if func.attr in _WALL_CLOCK_DATETIME and "datetime" in chain[:-1]:
            yield self.finding(
                ctx, node,
                f"wall-clock call {'.'.join(chain)}(); simulations must "
                "not read real time")
            return
        if len(chain) >= 2 and chain[-2] == "random" \
                and chain[0] in ("np", "numpy"):
            if func.attr == "default_rng":
                if not node.args and not node.keywords:
                    yield self.finding(
                        ctx, node,
                        "unseeded np.random.default_rng(); derive the "
                        "generator from a RandomSource named stream")
                elif in_project_source(ctx.path):
                    yield self.finding(
                        ctx, node,
                        "direct np.random.default_rng(seed) in simulator "
                        "code; derive the generator from a RandomSource "
                        "named stream")
            else:
                yield self.finding(
                    ctx, node,
                    f"global numpy RNG call np.random.{func.attr}(); "
                    "global RNG state breaks replay determinism")


def _attribute_chain(node: ast.Attribute) -> list[str]:
    """``['np', 'random', 'default_rng']`` for ``np.random.default_rng``."""
    parts: list[str] = [node.attr]
    value = node.value
    while isinstance(value, ast.Attribute):
        parts.append(value.attr)
        value = value.value
    if isinstance(value, ast.Name):
        parts.append(value.id)
    parts.reverse()
    return parts
