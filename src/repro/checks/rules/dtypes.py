"""R11 — dtype-hygiene: numpy accumulation and buffer-seeding traps.

The vectorised fast-forward paths (PRs 4–6) replay thousands of scalar
cycles as single array expressions, so the scalar/vector equivalence
the fingerprint tests assert is only as good as the arrays' dtypes.
Four traps that type-check fine and corrupt results silently:

* ``np.bincount(ids)`` without ``minlength=`` — the output length is
  ``ids.max()+1``, so a cycle where the last disks receive no reads
  yields a short load vector and the comparison against a full-length
  vector broadcasts or raises depending on the data;
* ``np.add.reduceat(bool_array, ...)`` — reduceat *sums in the input
  dtype*; segment sums of a boolean saturate at ``True`` instead of
  counting, which is why every real site casts ``.astype(np.int64)``
  first;
* float accumulation into an integer array (``counts[ids] += 0.5``,
  ``np.add.at(int_array, idx, float)``) — numpy truncates toward zero
  on every store, so the error compounds per cycle;
* reusing an ``np.empty`` buffer before every element is written — the
  tail holds garbage from the allocator, and "works on my machine" is
  exactly what a determinism suite cannot tolerate.  A buffer must be
  fully covered by recognised stores (``[:]``; ``[0]`` + ``[1:]``;
  ``[:-1]`` + ``[-1]``; ``.fill()``) before its first read.

All checks are intentionally literal-minded: they match the repo's real
idioms and stay silent where dtypes are unknowable (parameters, returns
of helpers), so a finding is close to certainly real.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.checks.core import FileContext, Finding, Rule, in_project_source

#: dtype names that make an array integral.
_INT_DTYPES = frozenset({
    "int", "intp", "int8", "int16", "int32", "int64",
    "uint8", "uint16", "uint32", "uint64",
})

#: Constructors that allocate integer arrays when given an int dtype.
_ALLOC_CALLS = frozenset({"zeros", "empty", "full", "ones"})

#: Store-slice shapes this rule can prove form a complete cover.
_FULL_COVERS = (
    frozenset({":"}),
    frozenset({"0", "1:"}),
    frozenset({":-1", "-1"}),
)


class DtypeHygieneRule(Rule):
    """R11: numpy dtype and buffer-initialisation hygiene."""

    rule_id = "R11"
    name = "dtype-hygiene"
    description = ("numpy accumulation hygiene: bincount needs "
                   "minlength, reduceat needs an integral input, int "
                   "arrays must not accumulate floats, np.empty buffers "
                   "must be fully written before first read")

    def applies_to(self, path: str) -> bool:
        return in_project_source(path)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in _functions(ctx.tree):
            assigns = _assignments(func)
            env = {name: values[0] for name, values in assigns.items()
                   if len(values) == 1}
            yield from self._check_calls(ctx, func, assigns)
            yield from self._check_int_accumulation(ctx, func, env)
            yield from self._check_empty_seeding(ctx, func)

    # -- bincount / reduceat --------------------------------------------------

    def _check_calls(self, ctx: FileContext, func: ast.AST,
                     env: dict[str, list[ast.expr]]) -> Iterator[Finding]:
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            if _np_func(node) == "bincount":
                if not any(kw.arg == "minlength" for kw in node.keywords):
                    yield self.finding(
                        ctx, node,
                        "np.bincount without minlength= produces a "
                        "data-dependent length; per-disk vectors must be "
                        "sized to the array (minlength=num_disks)")
            elif _np_func(node) == "add.reduceat" and node.args:
                first = node.args[0]
                if _is_boolish(first, env, depth=0):
                    yield self.finding(
                        ctx, first,
                        "np.add.reduceat over a boolean array sums in "
                        "bool (segment counts saturate at 1); cast with "
                        ".astype(np.int64) first")

    # -- float-into-int accumulation ------------------------------------------

    def _check_int_accumulation(self, ctx: FileContext, func: ast.AST,
                                env: dict[str, ast.expr],
                                ) -> Iterator[Finding]:
        int_arrays = {name for name, value in env.items()
                      if _is_int_array_alloc(value)}
        for node in ast.walk(func):
            if isinstance(node, ast.AugAssign) \
                    and isinstance(node.op, (ast.Add, ast.Sub, ast.Mult)):
                target_name = _subscript_base(node.target)
                if target_name in int_arrays \
                        and _is_floatish(node.value, env):
                    yield self.finding(
                        ctx, node,
                        f"float value accumulated into integer array "
                        f"'{target_name}'; numpy truncates toward zero "
                        "on every store — allocate the accumulator as "
                        "float or keep the addend integral")
            elif isinstance(node, ast.Call) and _np_func(node) == "add.at" \
                    and len(node.args) >= 3:
                target_name = _subscript_base(node.args[0])
                if target_name in int_arrays \
                        and _is_floatish(node.args[2], env):
                    yield self.finding(
                        ctx, node,
                        f"np.add.at scatters float values into integer "
                        f"array '{target_name}'; the fractional part is "
                        "silently truncated")

    # -- np.empty seeding ------------------------------------------------------

    def _check_empty_seeding(self, ctx: FileContext,
                             func: ast.AST) -> Iterator[Finding]:
        for name, alloc_line, alloc_node in _empty_allocs(func):
            events = _buffer_events(func, name, alloc_node)
            covered: set[str] = set()
            inconclusive = False
            verdict: Optional[bool] = None  # None = never used
            for _line, _col, kind, piece in events:
                if kind == "fill":
                    covered.add(":")
                elif kind == "store":
                    if piece is None:
                        inconclusive = True
                    else:
                        covered.add(piece)
                elif kind == "use":
                    verdict = any(cover <= covered
                                  for cover in _FULL_COVERS)
                    break
            if verdict is False and not inconclusive:
                missing = ", ".join(sorted(covered)) or "nothing"
                yield self.finding(
                    ctx, alloc_node,
                    f"np.empty buffer '{name}' is read before every "
                    f"element is written (stores cover [{missing}]); "
                    "uninitialised tails hold allocator garbage — "
                    "complete the cover or use np.zeros")


# -- helpers -------------------------------------------------------------------

def _functions(tree: ast.Module) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _np_func(node: ast.Call) -> str:
    """Dotted name of an ``np.``-rooted call (``add.reduceat``), or ''."""
    parts: list[str] = []
    func = node.func
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if isinstance(func, ast.Name) and func.id in ("np", "numpy"):
        return ".".join(reversed(parts))
    return ""


def _assignments(func: ast.AST) -> dict[str, list[ast.expr]]:
    """Every value expression assigned to each simple local name."""
    values: dict[str, list[ast.expr]] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            values.setdefault(node.targets[0].id, []).append(node.value)
    return values


def _is_boolish(node: ast.expr, env: dict[str, list[ast.expr]],
                depth: int) -> bool:
    """Whether an expression is statically a boolean array.

    A name counts when *every* assignment to it in the function is
    boolean (so ``down`` assigned a comparison in one branch and
    ``np.isin`` in the other still resolves).
    """
    if depth > 4:
        return False
    if isinstance(node, (ast.Compare, ast.BoolOp)):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Invert):
        return _is_boolish(node.operand, env, depth + 1)
    if isinstance(node, ast.Call):
        return _np_func(node) in ("isin", "logical_and", "logical_or",
                                  "logical_not")
    if isinstance(node, ast.IfExp):
        return _is_boolish(node.body, env, depth + 1) \
            and _is_boolish(node.orelse, env, depth + 1)
    if isinstance(node, ast.Name):
        bound = env.get(node.id)
        if bound:
            return all(_is_boolish(value, env, depth + 1)
                       for value in bound if value is not node)
    return False


def _is_int_array_alloc(node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    fn = _np_func(node)
    if fn == "arange":
        dtype = _dtype_kwarg(node)
        return dtype is None or dtype in _INT_DTYPES
    if fn in _ALLOC_CALLS:
        dtype = _dtype_kwarg(node)
        return dtype in _INT_DTYPES
    return False


def _dtype_kwarg(node: ast.Call) -> Optional[str]:
    for kw in node.keywords:
        if kw.arg == "dtype":
            value = kw.value
            if isinstance(value, ast.Attribute):
                return value.attr
            if isinstance(value, ast.Name):
                return value.id
    return None


def _is_floatish(node: ast.expr, env: dict[str, ast.expr],
                 depth: int = 0) -> bool:
    if depth > 4:
        return False
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _is_floatish(node.left, env, depth + 1) \
            or _is_floatish(node.right, env, depth + 1)
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id == "float":
            return True
        return _np_func(node) in ("float64", "float32", "asarray_f",)
    if isinstance(node, ast.Name):
        bound = env.get(node.id)
        if bound is not None and bound is not node:
            return _is_floatish(bound, env, depth + 1)
    return False


def _subscript_base(node: ast.expr) -> Optional[str]:
    while isinstance(node, ast.Subscript):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _empty_allocs(func: ast.AST,
                  ) -> Iterator[tuple[str, int, ast.AST]]:
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Call) \
                and _np_func(node.value) in ("empty", "empty_like"):
            yield node.targets[0].id, node.lineno, node.value


def _buffer_events(func: ast.AST, name: str, alloc_node: ast.AST,
                   ) -> list[tuple[int, int, str, Optional[str]]]:
    """(line, col, kind, slice-piece) events for one buffer, in order.

    ``store`` events carry the recognised slice piece (or None when the
    subscript shape is not recognised); ``fill``/``use`` carry None.
    """
    alloc_line = alloc_node.lineno
    skip_loads: set[int] = set()
    events: list[tuple[int, int, str, Optional[str]]] = []
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id == name:
                    skip_loads.add(id(target.value))
                    events.append((node.lineno, node.col_offset, "store",
                                   _slice_piece(target.slice)))
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "fill" \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id == name:
            skip_loads.add(id(node.func.value))
            events.append((node.lineno, node.col_offset, "fill", None))
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and node.id == name \
                and isinstance(node.ctx, ast.Load) \
                and id(node) not in skip_loads \
                and node.lineno > alloc_line:
            events.append((node.lineno, node.col_offset, "use", None))
    events.sort(key=lambda event: (event[0], event[1]))
    return [event for event in events if event[0] > alloc_line]


def _slice_piece(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Slice) and node.step is None:
        lower = _index_value(node.lower)
        upper = _index_value(node.upper)
        if node.lower is None and node.upper is None:
            return ":"
        if lower == 1 and node.upper is None:
            return "1:"
        if node.lower is None and upper == -1:
            return ":-1"
        return None
    value = _index_value(node)
    if value == 0:
        return "0"
    if value == -1:
        return "-1"
    return None


def _index_value(node: Optional[ast.expr]) -> Optional[int]:
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub) \
            and isinstance(node.operand, ast.Constant) \
            and isinstance(node.operand.value, int):
        return -node.operand.value
    return None
