"""R4 — slots consistency on the hot path.

PR 1 moved the cycle engine's per-entity classes to ``__slots__`` for
footprint and lookup speed.  This rule keeps that property from eroding:

* every class defined in the hot-path scope (``sched/``, ``disk/``,
  ``server/stream.py``, ``sim/kernel.py``) must declare ``__slots__``
  (or be a ``@dataclass(slots=True)``); enums, exceptions, and
  Protocols are exempt;
* inside a fully slotted class hierarchy, ``self.<attr> = ...`` must
  target a declared slot — an undeclared attribute would raise
  ``AttributeError`` at runtime on the first failure path that reaches
  it, which is exactly when you least want to discover it.

When a base class lives outside the project index the membership check
is skipped (never guessed).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.checks.core import (
    ClassInfo,
    FileContext,
    Finding,
    Rule,
    in_project_source,
    under,
)


class SlotsRule(Rule):
    """R4: hot-path classes declare __slots__ and stick to them."""

    rule_id = "R4"
    name = "slots"
    description = ("hot-path classes must declare __slots__ and only "
                   "assign declared attributes")

    def applies_to(self, path: str) -> bool:
        return in_project_source(path) and under(
            path, "sched/", "disk/", "server/stream.py", "sim/kernel.py")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(self, ctx: FileContext,
                     node: ast.ClassDef) -> Iterator[Finding]:
        info = ctx.index.lookup(node.name)
        if info is None or info.line != node.lineno:
            info = None
        if info is None or ctx.index.is_exempt(info):
            return
        if info.slots is None:
            if info.plain_dataclass:
                yield self.finding(
                    ctx, node,
                    f"hot-path dataclass '{node.name}' should use "
                    "@dataclass(slots=True)")
            else:
                yield self.finding(
                    ctx, node,
                    f"hot-path class '{node.name}' must declare __slots__")
            return
        declared = ctx.index.slot_union(info)
        if declared is None:
            return  # some base unresolved/unslotted: nothing to verify
        yield from self._check_assignments(ctx, node, info, declared)

    def _check_assignments(self, ctx: FileContext, node: ast.ClassDef,
                           info: ClassInfo, declared: frozenset[str],
                           ) -> Iterator[Finding]:
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            self_name = _first_argument(method)
            if self_name is None:
                continue
            for statement in ast.walk(method):
                if not isinstance(statement,
                                  (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    continue
                targets = (statement.targets
                           if isinstance(statement, ast.Assign)
                           else [statement.target])
                for target in targets:
                    attr = _self_attribute(target, self_name)
                    if attr is not None and attr not in declared:
                        yield self.finding(
                            ctx, statement,
                            f"assignment to undeclared attribute "
                            f"'{attr}' on slotted class '{info.name}' "
                            f"(declare it in __slots__)")


def _first_argument(method: ast.FunctionDef | ast.AsyncFunctionDef,
                    ) -> Optional[str]:
    for decorator in method.decorator_list:
        name = decorator.id if isinstance(decorator, ast.Name) else \
            decorator.attr if isinstance(decorator, ast.Attribute) else ""
        if name == "staticmethod":
            return None
    if not method.args.args:
        return None
    return method.args.args[0].arg


def _self_attribute(target: ast.expr, self_name: str) -> Optional[str]:
    """``attr`` for a plain ``self.attr`` target; None otherwise.

    Subscript targets (``self.buffer[k] = v``) mutate existing slot
    values and are fine.
    """
    if isinstance(target, ast.Attribute) \
            and isinstance(target.value, ast.Name) \
            and target.value.id == self_name:
        return target.attr
    return None
