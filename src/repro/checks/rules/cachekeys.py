"""R9 — cache-key completeness: epoch-keyed cache reads stay dominated.

R3 (per-file) guarantees cache *rewrites* re-key; this rule covers the
other half of the contract, which is inherently interprocedural:

1. **Key completeness** — wherever a cache key is *assigned* or
   *compared*, the key expression must cover every epoch counter the
   cached data transitively depends on.  ``_plan_cache`` (and the flat
   read tables chained to it) depends on both the layout epoch and the
   array state epoch; the geometry cache ``_ff_geom`` is keyed on the
   layout epoch alone (failures move no data).  A key tuple that drops
   a counter — ``(self.layout.epoch,)`` where ``state_epoch`` is
   required — would serve stale plans across fault transitions, the
   exact bug class PR 6 made possible.  Chained keys are understood:
   validating ``_ff_tables_key`` against ``_plan_cache_key`` inherits
   the parent key's coverage.

2. **Dominated reads** — every *path* through the project call graph
   from an entry point (a ``src`` function no other ``src`` function
   calls) to a cache read must pass a key check first: either the
   reading function checks/refreshes the key itself before the read, or
   some caller on the path does (directly or by calling a guard
   function such as ``_refresh_plan_cache``) before the call.  A read
   reachable with no dominating check is flagged at the read site.

Key expressions built from parameters or calls are treated as opaque
and trusted (the caller owns completeness); only statically resolvable
tuples/attributes are judged.  Line order approximates domination
inside one body — the idiom this repo uses (guard at function top) is
exactly what the approximation models.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.checks.core import FileContext, Finding, Rule, in_project_source
from repro.checks.effects import MUTATOR_METHODS, ProjectAnalysis


@dataclass(frozen=True)
class CacheFamily:
    """One epoch-keyed cache, its key field, and its freshness sources."""

    label: str
    fields: frozenset[str]
    key: str
    #: Counter attribute tails the key must cover (``epoch`` is the
    #: layout epoch, ``state_epoch`` the array's fault-domain epoch).
    counters: frozenset[str]
    #: Other key fields whose coverage this key may inherit by
    #: comparison/assignment (key chaining).
    parent_keys: frozenset[str] = frozenset()


FAMILIES: tuple[CacheFamily, ...] = (
    CacheFamily("plan-cache", frozenset({"_plan_cache"}),
                "_plan_cache_key", frozenset({"epoch", "state_epoch"})),
    CacheFamily("ff-tables", frozenset({"_ff_tables", "_ff_flat"}),
                "_ff_tables_key", frozenset({"epoch", "state_epoch"}),
                frozenset({"_plan_cache_key"})),
    CacheFamily("ff-deg-tables",
                frozenset({"_ff_deg_tables", "_ff_deg_flat"}),
                "_ff_deg_tables_key", frozenset({"epoch", "state_epoch"}),
                frozenset({"_plan_cache_key"})),
    CacheFamily("ff-geom", frozenset({"_ff_geom"}),
                "_ff_geom_epoch", frozenset({"epoch"})),
)

_KEY_FIELDS = frozenset(f.key for f in FAMILIES) \
    | frozenset(k for f in FAMILIES for k in f.parent_keys)


@dataclass
class _Coverage:
    """What a key expression statically covers."""

    counters: frozenset[str]
    key_fields: frozenset[str]
    resolvable: bool
    is_none: bool


@dataclass
class _FunctionFacts:
    """Per-function R9 facts: reads, guards, and completeness issues."""

    #: family label -> line of each cache read.
    reads: dict[str, list[int]]
    #: family label -> earliest line of an adequate own guard.
    guard_line: dict[str, int]
    #: (line, col, message) completeness findings.
    incomplete: list[tuple[int, int, str]]


class CacheKeyRule(Rule):
    """R9: cache keys cover their epochs; reads are dominated by checks."""

    rule_id = "R9"
    name = "cache-keys"
    description = ("epoch-keyed cache reads must be dominated by a key "
                   "check whose tuple covers every epoch counter the "
                   "cached data depends on")

    def applies_to(self, path: str) -> bool:
        return in_project_source(path)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        project = ctx.project
        if not isinstance(project, ProjectAnalysis):
            return
        facts, unguarded = _project_analysis(project, self)
        for decl in project.functions_in(ctx.path):
            fact = facts.get(decl.qualname)
            if fact is None:
                continue
            for line, col, message in fact.incomplete:
                yield Finding(rule_id=self.rule_id, rule_name=self.name,
                              path=ctx.path, line=line, col=col,
                              message=message)
            for family_label, line, entry in sorted(
                    unguarded.get(decl.qualname, [])):
                family = next(f for f in FAMILIES
                              if f.label == family_label)
                yield Finding(
                    rule_id=self.rule_id, rule_name=self.name,
                    path=ctx.path, line=line, col=0,
                    message=(f"read of {'/'.join(sorted(family.fields))} "
                             f"is not dominated by a {family.key} check "
                             f"on the call path from '{entry}'; a stale "
                             "epoch pair could serve outdated plans"),
                )


# -- per-function fact extraction --------------------------------------------

_ANALYSIS_CACHE: dict[int, tuple[object, tuple]] = {}


def _project_analysis(project: ProjectAnalysis, rule: Rule) -> tuple:
    """(facts, unguarded reads), memoised per ProjectAnalysis.

    The project-wide pass runs once per analyzer run, not once per
    file.  The cache holds a strong reference to the project so a
    recycled ``id()`` can never alias a dead project's results.
    """
    entry = _ANALYSIS_CACHE.get(id(project))
    if entry is not None and entry[0] is project:
        return entry[1]
    facts = {qual: _function_facts(decl.node)
             for qual, decl in project.graph.functions.items()}
    result = (facts, _unguarded_reads(project, facts, rule))
    _ANALYSIS_CACHE.clear()  # one project alive at a time
    _ANALYSIS_CACHE[id(project)] = (project, result)
    return result


def _function_facts(func: ast.AST) -> _FunctionFacts:
    env: dict[str, ast.expr] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            env.setdefault(node.targets[0].id, node.value)

    mutator_receivers = {
        id(node.func.value) for node in ast.walk(func)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in MUTATOR_METHODS}
    store_targets: set[int] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                for child in ast.walk(target):
                    store_targets.add(id(child))

    reads: dict[str, list[int]] = {}
    guard_line: dict[str, int] = {}
    incomplete: list[tuple[int, int, str]] = []

    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) \
                and isinstance(node.ctx, ast.Load) \
                and id(node) not in mutator_receivers \
                and id(node) not in store_targets \
                and _is_self_attr(node):
            for family in FAMILIES:
                if node.attr in family.fields:
                    reads.setdefault(family.label, []).append(node.lineno)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Attribute) \
                        and _is_self_attr(target) \
                        and target.attr in _KEY_FIELDS:
                    _record_guard(target.attr, node.value, node, env,
                                  guard_line, incomplete, "assignment")
        elif isinstance(node, ast.Compare) and len(node.ops) == 1 \
                and isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
            sides = (node.left, node.comparators[0])
            for key_side, other in (sides, sides[::-1]):
                key_field = _key_field_of(key_side, env)
                if key_field:
                    _record_guard(key_field, other, node, env,
                                  guard_line, incomplete, "comparison")
                    break
    return _FunctionFacts(reads=reads, guard_line=guard_line,
                          incomplete=incomplete)


def _record_guard(key_field: str, expr: ast.expr, node: ast.AST,
                  env: dict[str, ast.expr],
                  guard_line: dict[str, int],
                  incomplete: list[tuple[int, int, str]],
                  kind: str) -> None:
    family = next((f for f in FAMILIES if f.key == key_field), None)
    if family is None:
        return
    coverage = _coverage_of(expr, env, depth=0)
    if coverage.is_none and kind == "comparison":
        # ``key is None`` presence checks say nothing about freshness.
        return
    adequate = (
        coverage.is_none  # assignment of None = invalidation
        or not coverage.resolvable  # opaque (param/call): caller owns it
        or coverage.counters >= family.counters
        or bool(coverage.key_fields & (family.parent_keys | {family.key})))
    if adequate:
        line = node.lineno
        if family.label not in guard_line or line < guard_line[family.label]:
            guard_line[family.label] = line
    else:
        missing = sorted(family.counters - coverage.counters)
        incomplete.append((
            node.lineno, getattr(node, "col_offset", 0),
            f"{family.key} {kind} covers only "
            f"[{', '.join(sorted(coverage.counters)) or 'nothing'}] — "
            f"missing epoch counter(s): {', '.join(missing)}; the "
            f"{family.label} cache depends on all of "
            f"[{', '.join(sorted(family.counters))}]"))


def _key_field_of(node: ast.expr, env: dict[str, ast.expr],
                  depth: int = 0) -> Optional[str]:
    """The cache-key field an expression denotes, through local aliases."""
    if isinstance(node, ast.Attribute) and _is_self_attr(node) \
            and node.attr in _KEY_FIELDS:
        return node.attr
    if isinstance(node, ast.Name) and depth < 4:
        bound = env.get(node.id)
        if bound is not None and bound is not node:
            return _key_field_of(bound, env, depth + 1)
    return None


def _coverage_of(node: ast.expr, env: dict[str, ast.expr],
                 depth: int) -> _Coverage:
    if depth > 6:
        return _Coverage(frozenset(), frozenset(), resolvable=False,
                         is_none=False)
    if isinstance(node, ast.Constant):
        return _Coverage(frozenset(), frozenset(), resolvable=True,
                         is_none=node.value is None)
    if isinstance(node, ast.Tuple):
        counters: set[str] = set()
        keys: set[str] = set()
        resolvable = True
        for element in node.elts:
            sub = _coverage_of(element, env, depth + 1)
            counters |= sub.counters
            keys |= sub.key_fields
            resolvable = resolvable and sub.resolvable
        return _Coverage(frozenset(counters), frozenset(keys),
                         resolvable=resolvable, is_none=False)
    if isinstance(node, ast.Attribute):
        if node.attr in _KEY_FIELDS and _is_self_attr(node):
            return _Coverage(frozenset(), frozenset({node.attr}),
                             resolvable=True, is_none=False)
        return _Coverage(frozenset({node.attr}), frozenset(),
                         resolvable=True, is_none=False)
    if isinstance(node, ast.Name):
        bound = env.get(node.id)
        if bound is not None and bound is not node:
            return _coverage_of(bound, env, depth + 1)
        return _Coverage(frozenset(), frozenset(), resolvable=False,
                         is_none=False)
    return _Coverage(frozenset(), frozenset(), resolvable=False,
                     is_none=False)


def _is_self_attr(node: ast.Attribute) -> bool:
    value = node.value
    return isinstance(value, ast.Name) and value.id in ("self", "cls")


# -- dominated-read path analysis --------------------------------------------

def _unguarded_reads(project: ProjectAnalysis,
                     facts: dict[str, _FunctionFacts],
                     rule: Rule,
                     ) -> dict[str, list[tuple[str, int, str]]]:
    """qualname -> [(family label, read line, entry function)] reached
    on some call path with no dominating key check."""
    graph = project.graph
    guard_funcs: dict[str, set[str]] = {f.label: set() for f in FAMILIES}
    for qual, fact in facts.items():
        for label in fact.guard_line:
            guard_funcs[label].add(qual)

    readers = {qual for qual, fact in facts.items() if fact.reads}
    if not readers:
        return {}

    src_callers: dict[str, bool] = {}
    for qual in graph.functions:
        src_callers[qual] = any(
            in_project_source(graph.functions[e.caller].path)
            and not project.edge_suppressed(e.path, e.line, rule.rule_id,
                                            rule.name)
            for e in graph.edges_to.get(qual, ()))
    roots = [qual for qual, decl in graph.functions.items()
             if in_project_source(decl.path) and not src_callers[qual]]

    flagged: dict[str, dict[tuple[str, int], str]] = {}
    visited: set[tuple[str, frozenset[str]]] = set()

    def visit(qual: str, guarded: frozenset[str], entry: str) -> None:
        state = (qual, guarded)
        if state in visited:
            return
        visited.add(state)
        fact = facts.get(qual)
        if fact is None:
            return
        own_guards = fact.guard_line
        for label, lines in fact.reads.items():
            if label in guarded:
                continue
            guard_at = own_guards.get(label)
            for line in lines:
                if guard_at is None or guard_at >= line:
                    flagged.setdefault(qual, {}).setdefault(
                        (label, line), entry)
        guard_call_lines: dict[str, int] = {}
        for edge in graph.edges_from.get(qual, ()):
            for label, funcs in guard_funcs.items():
                if edge.callee in funcs:
                    prior = guard_call_lines.get(label)
                    if prior is None or edge.line < prior:
                        guard_call_lines[label] = edge.line
        for edge in graph.edges_from.get(qual, ()):
            if project.edge_suppressed(edge.path, edge.line, rule.rule_id,
                                       rule.name):
                continue
            passed = set(guarded)
            for label in (f.label for f in FAMILIES):
                own = own_guards.get(label)
                via_call = guard_call_lines.get(label)
                if (own is not None and own < edge.line) \
                        or (via_call is not None and via_call < edge.line):
                    passed.add(label)
            visit(edge.callee, frozenset(passed), entry)

    for root in sorted(roots):
        visit(root, frozenset(), root.rsplit(".", 1)[-1])
    return {qual: sorted((label, line, entry)
                         for (label, line), entry in sites.items())
            for qual, sites in flagged.items()}
