"""R6 — typed defs: the in-tree half of the strict-typing gate.

``mypy --strict`` runs in CI, but the container running the tier-1 suite
does not ship mypy — so the property strict mode cares about most
(``disallow_untyped_defs``) is enforced here too, where every test run
sees it: every function and method in ``src/repro`` must annotate all of
its parameters and its return type.

``self``/``cls`` are exempt, as are lambdas and functions nested inside
other functions (mypy infers those from context).
"""

from __future__ import annotations

import ast
from typing import Iterator, Union

from repro.checks.core import FileContext, Finding, Rule, in_project_source

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


class TypedDefsRule(Rule):
    """R6: every def in src/repro has full parameter/return annotations."""

    rule_id = "R6"
    name = "typed-defs"
    description = ("functions in src/repro must annotate every parameter "
                   "and the return type (mypy --strict's "
                   "disallow_untyped_defs, enforced in-tree)")

    def applies_to(self, path: str) -> bool:
        return in_project_source(path)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._walk_body(ctx, ctx.tree.body, method=False)

    def _walk_body(self, ctx: FileContext, body: list[ast.stmt],
                   method: bool) -> Iterator[Finding]:
        for node in body:
            if isinstance(node, ast.ClassDef):
                yield from self._walk_body(ctx, node.body, method=True)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node, method)
                # Nested defs are exempt: do not recurse into the body.
            elif isinstance(node, ast.Assign) \
                    and isinstance(node.value, ast.Lambda) \
                    and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name):
                # A module/class-level ``name = lambda ...`` is a de facto
                # function definition that can never carry annotations;
                # an AnnAssign (``name: Callable[...] = lambda ...``) is
                # fine — mypy checks the lambda against the annotation.
                yield self.finding(
                    ctx, node,
                    f"'{node.targets[0].id}' is a lambda-assigned "
                    "function; use a typed 'def' (or annotate the "
                    "assignment with a Callable type)")

    def _check_function(self, ctx: FileContext, node: FunctionNode,
                        method: bool) -> Iterator[Finding]:
        missing = self._missing_parameters(node, method)
        if missing:
            yield self.finding(
                ctx, node,
                f"'{node.name}' is missing parameter annotations: "
                f"{', '.join(missing)}")
        if node.returns is None:
            yield self.finding(
                ctx, node,
                f"'{node.name}' is missing a return annotation")

    @staticmethod
    def _missing_parameters(node: FunctionNode, method: bool) -> list[str]:
        args = node.args
        positional = args.posonlyargs + args.args
        skip_first = method and not any(
            _decorator_is(decorator, "staticmethod")
            for decorator in node.decorator_list)
        missing: list[str] = []
        for i, arg in enumerate(positional):
            if i == 0 and skip_first:
                continue
            if arg.annotation is None:
                missing.append(arg.arg)
        for arg in args.kwonlyargs:
            if arg.annotation is None:
                missing.append(arg.arg)
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append(f"*{args.vararg.arg}")
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append(f"**{args.kwarg.arg}")
        return missing


def _decorator_is(node: ast.expr, name: str) -> bool:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr == name
    if isinstance(node, ast.Name):
        return node.id == name
    return False
