"""R8 — ff-purity: fast-forward eligibility probes must be effect-free.

The fast-forward engines (PRs 4–6) decide whether a batched epoch is
legal by *probing* scheduler state: ``_ff_classify`` and the per-scheme
hooks it dispatches to (``_fast_forward_ready``, ``_ff_degraded_ready``,
``_ff_degraded_stream_ok``, ``_ff_gate_params``, ``_ff_eligible``).
Those probes run between scalar cycles and may run any number of times
(classification is re-checked per entry), so the fast and scalar paths
only stay bit-identical if probing *changes nothing*: no scheduler /
layout / disk state writes, no fault-domain transitions, no epoch
bumps, and no RNG draws (a draw advances a stream other replays would
not see).

This is the flow rule the per-file R3 cannot express: a helper three
calls deep that mutates state is flagged wherever it is defined, with
the probe-to-helper path in the message.  Findings anchor at the
*offending function*, so a justified ``# repro: allow(R8)`` on its
``def`` line clears every path to it; an allow on a *call site* clears
only that edge (other paths to the callee still count).

Writes to ``report`` are exempt: the disengagement tally is diagnostic,
lives outside the fingerprinted rows, and is exactly what probes are
expected to touch.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.checks.core import FileContext, Finding, Rule, in_project_source
from repro.checks.effects import EffectSummary, ProjectAnalysis

#: Eligibility probes: the roots of the purity requirement.
PROBE_NAMES = frozenset({
    "_ff_classify", "_ff_eligible", "_fast_forward_ready",
    "_ff_degraded_ready", "_ff_degraded_stream_ok", "_ff_gate_params",
})

#: Instance fields probes may legitimately touch (diagnostics only).
EXEMPT_WRITES = frozenset({"report"})


class FfPurityRule(Rule):
    """R8: functions reachable from ff eligibility probes stay pure."""

    rule_id = "R8"
    name = "ff-purity"
    description = ("functions transitively reachable from fast-forward "
                   "eligibility probes (_ff_classify and friends) must "
                   "not mutate scheduler/layout/disk state or draw RNG")

    def applies_to(self, path: str) -> bool:
        return in_project_source(path)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        project = ctx.project
        if not isinstance(project, ProjectAnalysis):
            return
        reachable = self._reachable_with_paths(project)
        local = {decl.qualname for decl in project.functions_in(ctx.path)}
        for qual in sorted(reachable):
            if qual not in local:
                continue
            decl = project.graph.functions[qual]
            effects = self._impure_effects(
                project.direct.get(qual, EffectSummary.EMPTY))
            if not effects:
                continue
            via = reachable[qual]
            origin = f" (reachable via {via})" if via else ""
            yield Finding(
                rule_id=self.rule_id, rule_name=self.name, path=ctx.path,
                line=decl.lineno, col=decl.node.col_offset,
                message=(f"'{decl.name}' {effects} but is an eligibility "
                         f"probe or reachable from one{origin}; probes "
                         "must be effect-free so fast-forward entry "
                         "checks cannot perturb the simulation"),
            )

    @staticmethod
    def _impure_effects(summary: EffectSummary) -> Optional[str]:
        """Human description of a summary's impure part, or None."""
        parts: list[str] = []
        writes = sorted(summary.writes - EXEMPT_WRITES)
        if writes:
            parts.append(f"mutates {', '.join(writes)}")
        if summary.array_calls:
            parts.append("drives fault-domain transitions "
                         f"({', '.join(sorted(summary.array_calls))})")
        if summary.epoch_bump:
            parts.append("bumps an epoch")
        if summary.rng_draws:
            parts.append("draws from RNG streams "
                         f"({', '.join(sorted(summary.rng_draws))})")
        return " and ".join(parts) if parts else None

    def _reachable_with_paths(self, project: ProjectAnalysis,
                              ) -> dict[str, str]:
        """Qualnames reachable from any probe -> example path string.

        BFS from every probe-named function; edges whose call site
        carries ``allow(R8)`` are skipped (call-site suppression).
        Probes themselves map to an empty path.
        """
        graph = project.graph
        reachable: dict[str, str] = {}
        frontier: list[str] = []
        parent: dict[str, tuple[str, str]] = {}
        for qual, decl in graph.functions.items():
            if decl.name in PROBE_NAMES:
                reachable[qual] = ""
                frontier.append(qual)
        while frontier:
            current = frontier.pop(0)
            for edge in graph.edges_from.get(current, ()):
                if edge.callee in reachable:
                    continue
                if project.edge_suppressed(edge.path, edge.line,
                                           self.rule_id, self.name):
                    continue
                parent[edge.callee] = (current, edge.caller)
                reachable[edge.callee] = self._path_string(
                    edge.callee, parent, graph)
                frontier.append(edge.callee)
        return reachable

    @staticmethod
    def _path_string(qual: str, parent: dict[str, tuple[str, str]],
                     graph: object) -> str:
        chain = [qual]
        current = qual
        while current in parent and len(chain) < 6:
            current = parent[current][0]
            chain.append(current)
        names = [q.rsplit(".", 1)[-1] for q in reversed(chain)]
        return " -> ".join(names)
