"""Rule R7: spawn-safe parallel task payloads.

The process pool in :mod:`repro.parallel` uses the ``spawn`` start
method, so a :class:`~repro.parallel.TaskSpec` payload must be pickled
and re-imported by a fresh interpreter.  Lambdas and functions defined
inside another function cannot be pickled; module-level mutable state in
``parallel.py`` would silently diverge between parent and workers.  The
runtime guard (:func:`repro.parallel.spawn_safety_violation`) rejects
bad payloads when a ``TaskSpec`` is built; this rule catches the same
mistakes at review time, before anything runs.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.checks.core import (FileContext, Finding, Rule,
                               in_project_source, in_tests, under)

#: Constructors whose result is shared mutable state at module scope.
_MUTABLE_FACTORIES = frozenset({
    "list", "dict", "set", "defaultdict", "deque", "OrderedDict",
    "Counter",
})


def _is_mutable_literal(node: ast.expr) -> bool:
    """Whether an expression builds a mutable container."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else "")
        return name in _MUTABLE_FACTORIES
    return False


def _call_name(node: ast.Call) -> str:
    """Bare name of a call target (``TaskSpec`` or ``mod.TaskSpec``)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _nested_function_names(tree: ast.Module) -> frozenset[str]:
    """Names of functions defined inside another function's body."""
    nested: set[str] = set()

    def visit(node: ast.AST, inside_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if inside_function:
                    nested.add(child.name)
                visit(child, True)
            elif isinstance(child, ast.Lambda):
                visit(child, True)
            else:
                visit(child, inside_function)

    visit(tree, False)
    return frozenset(nested)


class SpawnSafetyRule(Rule):
    """Flag task payloads that spawn workers cannot unpickle."""

    rule_id = "R7"
    name = "spawn-safety"
    description = (
        "TaskSpec payloads must be importable module-level callables "
        "(no lambdas, no nested defs) and repro/parallel.py must hold "
        "no module-level mutable state."
    )

    def applies_to(self, path: str) -> bool:
        return in_project_source(path) or in_tests(path)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if under(ctx.path, "repro/parallel.py"):
            yield from self._module_state(ctx)
        yield from self._task_payloads(ctx)

    # -- module-level mutable state in parallel.py ----------------------

    def _module_state(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ctx.tree.body:
            targets: list[ast.expr]
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if all(n.startswith("__") and n.endswith("__") for n in names
                   if n) and names:
                continue  # __all__ and friends are read-only by convention
            if _is_mutable_literal(value):
                label = names[0] if names else "<assignment>"
                yield self.finding(
                    ctx, node,
                    f"module-level mutable state `{label}` in parallel.py: "
                    "spawn workers get a fresh copy, so parent and worker "
                    "state silently diverge; pass state through TaskSpec "
                    "args instead")

    # -- unpicklable TaskSpec payloads ----------------------------------

    def _task_payloads(self, ctx: FileContext) -> Iterator[Finding]:
        nested = _nested_function_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) \
                    or _call_name(node) != "TaskSpec":
                continue
            payload = self._payload_expr(node)
            if payload is None:
                continue
            finding = self._payload_violation(ctx, payload, nested)
            if finding is not None:
                yield finding

    @staticmethod
    def _payload_expr(call: ast.Call) -> Optional[ast.expr]:
        """The ``fn`` argument of a TaskSpec call, if present."""
        if call.args:
            return call.args[0]
        for keyword in call.keywords:
            if keyword.arg == "fn":
                return keyword.value
        return None

    def _payload_violation(self, ctx: FileContext, payload: ast.expr,
                           nested: frozenset[str]) -> Optional[Finding]:
        if isinstance(payload, ast.Lambda):
            return self.finding(
                ctx, payload,
                "lambda TaskSpec payload cannot be pickled for spawn "
                "workers; use a module-level function")
        if isinstance(payload, ast.Name) and payload.id in nested:
            return self.finding(
                ctx, payload,
                f"TaskSpec payload `{payload.id}` is defined inside "
                "another function, so spawn workers cannot import it; "
                "move it to module scope")
        if isinstance(payload, ast.Call) \
                and _call_name(payload) == "partial" and payload.args:
            return self._payload_violation(ctx, payload.args[0], nested)
        return None
