"""R10 — rng-taint: named RNG streams stay inside their subsystem.

The determinism story (R1, PR 2) hangs on stream *isolation*: every
consumer draws from its own named :class:`~repro.sim.rng.RandomSource`
stream, so reordering consumers, batching draws, or fast-forwarding one
subsystem never perturbs another's sequence.  Two ways to break that
survive R1's per-file checks:

1. **Name collision** — two subsystems drawing from the same stream
   name interleave their draws; adding a fault event would then shift
   every subsequent arrival time.  This rule builds a project-wide
   registry of statically-known stream names (draw-call literals,
   f-string prefixes like ``disk-*``, and ``stream=...`` parameter
   defaults) keyed by subsystem (``src/repro/<pkg>``), and flags any
   use of a name another subsystem also registers.

2. **Handle escape** — a raw generator obtained via ``.stream(name)``
   handed across a subsystem boundary (returned to a foreign caller or
   passed into a foreign callee) lets that subsystem draw from the
   stream without the name discipline.  Handles are tracked through
   local aliases; escapes are resolved against the call graph.

Dynamic names (``f"{tag}-fail"``) register nothing — they are the
chaos-harness idiom and only collide if two call sites share a tag,
which is a runtime property this rule does not guess at.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.checks.core import FileContext, Finding, Rule, in_project_source
from repro.checks.callgraph import (
    CallGraph, FunctionDecl, annotation_class, subsystem_of,
)
from repro.checks.effects import (
    DYNAMIC_STREAM, RNG_DRAW_METHODS, ProjectAnalysis, is_rng_receiver,
    stream_name_of,
)

#: Parameter names whose string default registers a stream name.
_STREAM_PARAM_NAMES = frozenset({"stream", "stream_name"})

#: Methods that take a stream name as their first argument.
_NAMED_METHODS = RNG_DRAW_METHODS | {"stream", "spawn"}


@dataclass(frozen=True)
class _StreamUse:
    """One statically-resolved stream-name use site."""

    name: str  # exact name, or ``prefix*`` for f-string patterns
    path: str
    line: int
    col: int
    subsystem: str


@dataclass
class _Registry:
    """Project-wide stream-name ownership."""

    #: name/pattern -> subsystems that register it.
    owners: dict[str, set[str]] = field(default_factory=dict)
    #: path -> use sites in that file.
    uses: dict[str, list[_StreamUse]] = field(default_factory=dict)

    def register(self, name: str, subsystem: str) -> None:
        if name != DYNAMIC_STREAM:
            self.owners.setdefault(name, set()).add(subsystem)

    def owners_of(self, name: str) -> set[str]:
        """Subsystems owning an exact name or any pattern covering it."""
        found = set(self.owners.get(name, ()))
        exact = name.rstrip("*")
        for pattern, subsystems in self.owners.items():
            if pattern.endswith("*") and exact.startswith(pattern[:-1]):
                found |= subsystems
            elif name.endswith("*") and pattern.startswith(name[:-1]):
                found |= subsystems
        return found


class RngTaintRule(Rule):
    """R10: stream names and handles must not cross subsystems."""

    rule_id = "R10"
    name = "rng-taint"
    description = ("named RNG streams must not escape their subsystem: "
                   "no cross-subsystem stream-name collisions, no raw "
                   "stream handles crossing package boundaries")

    def applies_to(self, path: str) -> bool:
        return in_project_source(path)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        project = ctx.project
        if not isinstance(project, ProjectAnalysis):
            return
        registry = _registry_of(project)
        for use in registry.uses.get(ctx.path, ()):
            owners = registry.owners_of(use.name)
            foreign = sorted(owners - {use.subsystem})
            if foreign:
                yield Finding(
                    rule_id=self.rule_id, rule_name=self.name,
                    path=ctx.path, line=use.line, col=use.col,
                    message=(f"RNG stream '{use.name}' is drawn here in "
                             f"subsystem '{use.subsystem}' but is also "
                             f"registered by {', '.join(repr(s) for s in foreign)}; "
                             "shared streams interleave draws and break "
                             "replay isolation — pick a subsystem-unique "
                             "name"),
                )
        yield from self._handle_escapes(ctx, project)

    # -- handle-escape tracking ----------------------------------------------

    def _handle_escapes(self, ctx: FileContext,
                        project: ProjectAnalysis) -> Iterator[Finding]:
        subsystem = subsystem_of(ctx.path)
        graph = project.graph
        for decl in project.functions_in(ctx.path):
            tainted = _tainted_locals(decl, graph)
            for node in ast.walk(decl.node):
                if isinstance(node, ast.Return) and node.value is not None \
                        and _is_handle(node.value, tainted, decl, graph):
                    foreign = self._foreign_callers(decl.qualname, project,
                                                    subsystem)
                    if foreign:
                        yield Finding(
                            rule_id=self.rule_id, rule_name=self.name,
                            path=ctx.path, line=node.lineno,
                            col=node.col_offset,
                            message=(f"'{decl.name}' returns a raw RNG "
                                     "stream handle that escapes to "
                                     f"subsystem '{foreign[0]}'; return "
                                     "drawn values (or pass the "
                                     "RandomSource) instead of the "
                                     "generator"),
                        )
                elif isinstance(node, ast.Call):
                    yield from self._escaping_args(ctx, node, tainted, decl,
                                                   project, subsystem)

    def _escaping_args(self, ctx: FileContext, call: ast.Call,
                       tainted: set[str], decl: FunctionDecl,
                       project: ProjectAnalysis,
                       subsystem: str) -> Iterator[Finding]:
        handle_args = [arg for arg in list(call.args)
                       + [kw.value for kw in call.keywords]
                       if _is_handle(arg, tainted, decl, project.graph)]
        if not handle_args:
            return
        for edge in project.graph.edges_from.get(decl.qualname, ()):
            if edge.line != call.lineno:
                continue
            callee = project.graph.functions[edge.callee]
            callee_subsystem = subsystem_of(callee.path)
            if in_project_source(callee.path) \
                    and callee_subsystem != subsystem:
                yield Finding(
                    rule_id=self.rule_id, rule_name=self.name,
                    path=ctx.path, line=call.lineno, col=call.col_offset,
                    message=(f"raw RNG stream handle passed from "
                             f"subsystem '{subsystem}' into "
                             f"'{callee.name}' ({callee_subsystem}); "
                             "cross-subsystem draws bypass stream-name "
                             "isolation"),
                )
                return

    @staticmethod
    def _foreign_callers(qualname: str, project: ProjectAnalysis,
                         subsystem: str) -> list[str]:
        foreign: set[str] = set()
        for edge in project.graph.edges_to.get(qualname, ()):
            caller = project.graph.functions[edge.caller]
            if in_project_source(caller.path):
                caller_subsystem = subsystem_of(caller.path)
                if caller_subsystem != subsystem:
                    foreign.add(caller_subsystem)
        return sorted(foreign)


# -- project registry ---------------------------------------------------------

_REGISTRY_CACHE: dict[int, tuple[object, _Registry]] = {}


def _registry_of(project: ProjectAnalysis) -> _Registry:
    entry = _REGISTRY_CACHE.get(id(project))
    if entry is not None and entry[0] is project:
        return entry[1]
    registry = _Registry()
    for qual, decl in project.graph.functions.items():
        if not in_project_source(decl.path):
            continue
        subsystem = subsystem_of(decl.path)
        _register_param_defaults(decl, subsystem, registry)
        env = _single_assign_env(decl.node)
        for node in ast.walk(decl.node):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _NAMED_METHODS and node.args):
                continue
            if not is_rng_receiver(node.func.value, decl, project.graph,
                                   _local_annotations(decl)):
                continue
            name = _resolved_stream_name(node.args[0], env)
            if name == DYNAMIC_STREAM:
                continue
            registry.register(name, subsystem)
            registry.uses.setdefault(decl.path, []).append(_StreamUse(
                name=name, path=decl.path, line=node.lineno,
                col=node.col_offset, subsystem=subsystem))
    _REGISTRY_CACHE.clear()  # one project alive at a time
    _REGISTRY_CACHE[id(project)] = (project, registry)
    return registry


def _register_param_defaults(decl: FunctionDecl, subsystem: str,
                             registry: _Registry) -> None:
    """``def __init__(..., stream: str = "arrivals")`` registers the
    default name for the defining subsystem."""
    args = decl.node.args
    positional = args.posonlyargs + args.args
    defaults = args.defaults
    for arg, default in zip(positional[len(positional) - len(defaults):],
                            defaults):
        if _is_stream_param(arg.arg) and isinstance(default, ast.Constant) \
                and isinstance(default.value, str):
            registry.register(default.value, subsystem)
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if _is_stream_param(arg.arg) and isinstance(default, ast.Constant) \
                and isinstance(default.value, str):
            registry.register(default.value, subsystem)


def _is_stream_param(name: str) -> bool:
    return name in _STREAM_PARAM_NAMES or name.endswith("_stream")


def _resolved_stream_name(node: ast.expr, env: dict[str, ast.expr]) -> str:
    """Stream name of a draw argument, following one local alias."""
    direct = stream_name_of(node)
    if direct != DYNAMIC_STREAM:
        return direct
    if isinstance(node, ast.Name):
        bound = env.get(node.id)
        if bound is not None:
            return stream_name_of(bound)
    return DYNAMIC_STREAM


def _single_assign_env(func: ast.AST) -> dict[str, ast.expr]:
    """Locals assigned exactly once (safe to constant-fold names from)."""
    counts: dict[str, int] = {}
    values: dict[str, ast.expr] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            counts[name] = counts.get(name, 0) + 1
            values[name] = node.value
    return {name: value for name, value in values.items()
            if counts[name] == 1}


def _local_annotations(decl: FunctionDecl) -> dict[str, str]:
    types: dict[str, str] = {}
    args = decl.node.args
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        annotated = annotation_class(arg.annotation)
        if annotated:
            types[arg.arg] = annotated
    return types


def _tainted_locals(decl: FunctionDecl, graph: CallGraph) -> set[str]:
    """Local names bound (directly or via alias) to a raw stream handle."""
    tainted: set[str] = set()
    types = _local_annotations(decl)
    assignments: list[tuple[str, ast.expr]] = []
    for node in ast.walk(decl.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            assignments.append((node.targets[0].id, node.value))
    changed = True
    while changed:
        changed = False
        for name, value in assignments:
            if name in tainted:
                continue
            if _is_stream_call(value, decl, graph, types) \
                    or (isinstance(value, ast.Name) and value.id in tainted):
                tainted.add(name)
                changed = True
    return tainted


def _is_stream_call(node: ast.expr, decl: FunctionDecl,
                    graph: CallGraph, types: dict[str, str]) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "stream" and bool(node.args)
            and is_rng_receiver(node.func.value, decl, graph, types))


def _is_handle(node: ast.expr, tainted: set[str], decl: FunctionDecl,
               graph: CallGraph) -> bool:
    if isinstance(node, ast.Name):
        return node.id in tainted
    return _is_stream_call(node, decl, graph, _local_annotations(decl))
