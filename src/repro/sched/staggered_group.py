"""The Staggered-group scheduler (Section 2, Figure 4).

Identical data layout and failure behaviour to Streaming RAID; the only
change is *when* reads happen.  Cycles are one-track long (``k' = 1``) and
each stream reads its whole next parity group once every ``C - 1`` cycles,
in the read phase it was assigned at admission.  Because streams' group
reads are spread across phases, their buffer peaks are out of phase —
Figure 4's roughly-half memory saving — at a small cost in disk-bandwidth
efficiency (the cycle is shorter, so the per-cycle seek amortises over
fewer reads; "the Staggered group scheme in effect uses k = 1").
"""

from __future__ import annotations

from typing import Optional

from repro.sched.base import CycleScheduler
from repro.sched.plan import PlannedRead
from repro.server.stream import Stream


class StaggeredGroupScheduler(CycleScheduler):
    """Group reads staggered over C - 1 phases; one track delivered/cycle
    (times the stream's rate for fast objects)."""

    __slots__ = ()

    def _in_phase(self, stream: Stream, cycle: int) -> bool:
        return cycle % self.config.stripe_width == stream.phase

    def _ff_stream_plan(self, stream: Stream, cycle: int,
                        loads: list[int]) -> Optional[tuple[int, int]]:
        """Quiescent plan: the group walk only on the stream's phase."""
        if not self._in_phase(stream, cycle):
            return stream.next_read_track, 0
        return super()._ff_stream_plan(stream, cycle, loads)

    def _ff_gate_params(self, stream: Stream) -> tuple[int, int, int, int]:
        """Vector gate: read only in the stream's assigned phase."""
        return 0, 0, self.config.stripe_width, stream.phase

    def plan_reads(self, cycle: int) -> list[PlannedRead]:
        """Group reads for the streams whose phase matches this cycle."""
        plans: list[PlannedRead] = []
        # Direct table iteration: no per-cycle snapshot list (churn path).
        for stream in self.streams.values():
            if not stream.is_active:
                continue
            if not self._in_phase(stream, cycle):
                continue
            # A rate-r stream fetches r groups per phase visit.
            for _ in range(stream.rate):
                if not stream.reads_remaining:
                    break
                self._plan_group_read(stream, plans, include_parity=True)
        return plans
