"""Scheduler configuration derived from system parameters and the scheme."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.parameters import SystemParameters
from repro.disk.model import SimpleDiskModel
from repro.errors import ConfigurationError
from repro.schemes import Scheme


@dataclass(frozen=True, slots=True)
class SchedulerConfig:
    """Everything a cycle scheduler needs to know about its regime.

    ``slots_per_disk`` is the per-disk per-cycle track budget implied by the
    paper's disk model: ``floor((T_cyc - tau_seek) / tau_trk)``.  It can be
    overridden (e.g. tests pin it to small values to reproduce the exact
    displacement counts of Figures 6–7).
    """

    params: SystemParameters
    parity_group_size: int
    scheme: Scheme
    k: int
    k_prime: int
    cycle_length_s: float
    slots_per_disk: int

    @classmethod
    def build(cls, params: SystemParameters, parity_group_size: int,
              scheme: Scheme, slots_per_disk: int | None = None,
              ) -> "SchedulerConfig":
        """Derive the configuration for one scheme at one group size."""
        if parity_group_size < 2:
            raise ConfigurationError(
                f"parity group size must be >= 2, got {parity_group_size}"
            )
        k, k_prime = scheme.read_granularity(parity_group_size)
        cycle_length = params.cycle_length_s(k_prime)
        if slots_per_disk is None:
            model = SimpleDiskModel(params.to_disk_spec())
            slots_per_disk = model.tracks_per_cycle(cycle_length)
        if slots_per_disk < 1:
            raise ConfigurationError(
                "cycle too short for even one track read per disk "
                f"(cycle {cycle_length:.4f}s, seek {params.seek_time_s}s)"
            )
        return cls(
            params=params,
            parity_group_size=parity_group_size,
            scheme=scheme,
            k=k,
            k_prime=k_prime,
            cycle_length_s=cycle_length,
            slots_per_disk=slots_per_disk,
        )

    @property
    def stripe_width(self) -> int:
        """Data blocks per parity group (``C - 1``)."""
        return self.parity_group_size - 1
