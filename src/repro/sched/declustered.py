"""The parity-declustered scheduler (extension; arXiv:1209.6152).

Normal mode is Streaming-RAID-shaped — each stream reads its whole next
parity group every cycle — but on the declustered layout no disk is
dedicated to parity, so all ``D`` disks serve data and nothing idles in
reserve.  A group whose member sits on a failed disk reads its parity
block (which lives on an ordinary data-serving survivor) and the missing
block is reconstructed before its delivery deadline, exactly like SR's
degraded mode.

The scheme's point is rebuild mode: because every disk pair co-occurs in
(nearly) the same number of parity groups, the failed disk's
reconstruction reads spread round-robin over *all* ``D - 1`` survivors
instead of one cluster's ``C - 1``, so the rebuild window shrinks by the
declustering ratio ``alpha = (C - 1) / (D - 1)``.  The scheduler opts
the :class:`~repro.sched.rebuild.OnlineRebuilder` into its distributed
ordering, which packs source-disjoint blocks into each cycle.

The price is admission capacity while degraded: the parity reads that SR
sends to a reserved parity disk land here on data-serving survivors, so
each failure charges ``alpha * G`` slots farm-wide (``G`` = group reads
in flight per cycle, i.e. the admission bound) against the limit.
"""

from __future__ import annotations

from repro.sched.base import CycleScheduler
from repro.sched.plan import PlannedRead


class DeclusteredParityScheduler(CycleScheduler):
    """Whole-group reads on the declustered layout; k = k' = C - 1."""

    __slots__ = ()

    #: Rebuilds on this scheme order their pending blocks so consecutive
    #: blocks draw sources from disjoint survivor sets (see
    #: :meth:`OnlineRebuilder._distributed_order`).
    distributed_rebuild = True

    def plan_reads(self, cycle: int) -> list[PlannedRead]:
        """One full parity-group read per stream rate-unit per cycle."""
        plans: list[PlannedRead] = []
        # Direct table iteration: no per-cycle snapshot list (churn path).
        for stream in self.streams.values():
            if not stream.is_active:
                continue
            for _ in range(stream.rate):
                if stream.next_read_track >= stream.num_tracks:
                    break
                self._plan_group_read(stream, plans, include_parity=True)
        return plans

    def _capacity_penalty(self) -> int:
        """Degraded reads steal ``alpha * G`` slots farm-wide per failure.

        SR's degraded parity reads go to a dedicated parity disk whose
        bandwidth was reserved for exactly that; here they land on
        data-serving survivors.  Every failed disk turns ~``C / D`` of
        all group reads degraded, each costing one extra read spread
        over the farm — ``alpha`` of the in-flight group-read budget —
        so admission gives that share back per concurrent failure.
        """
        failed = len(self.array.failed_ids)
        if failed == 0:
            return 0
        stripe = self.config.parity_group_size - 1
        survivors = max(1, self.layout.num_disks - 1)
        # ceil(limit * alpha) in integer arithmetic.
        share = -(-self.admission_limit * stripe // survivors)
        return failed * max(1, share)
