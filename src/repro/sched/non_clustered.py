"""The Non-clustered scheduler (Section 3, Figures 5–7).

Normal mode reads only what the next cycle will deliver: one track per
stream per cycle (``k = k' = 1``) — minimal buffering, at the price of a
*transition* when a disk fails, because blocks are delivered before their
parity group is fully read (Observation 2 is deliberately violated).

Reads are paced by the delivery schedule: a stream admitted in cycle ``a``
naturally reads track ``t`` in cycle ``a + t`` and delivers it one cycle
later.  When a recovery burst fetches tracks early, the stream then idles
until its natural schedule catches up, so bursts do not ripple collisions
into healthy clusters.

On a data-disk failure the affected cluster borrows degraded-mode buffering
from the shared pool (Section 3's "buffer servers") and recovers under one
of two protocols:

* **EAGER** (Figure 6): streams *starting* a parity group on the degraded
  cluster read the entire group plus parity at once (group-at-a-time, as
  Streaming RAID would).  Moved-forward reads take recovery priority and
  may displace other streams' normal reads when slots are full; displaced
  tracks are lost.
* **LAZY** (Figure 7): reads stay on their natural schedule; only at the
  cycle where the *failed* block would have been read are the remaining
  blocks and the parity fetched together, and the missing block is rebuilt
  from a running XOR of every member seen since the group began.  Fewer
  tracks are displaced than under EAGER.

Streams caught *mid-group* by the failure cannot be helped: members
delivered before the failure are gone, so their failed block is lost
(Figures 6–7's W2/Y2) and they simply skip it.  Once the transition
completes, delivery follows the original schedule with no further hiccups
until the disk is repaired.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.buffers.pool import BufferPool
from repro.errors import BufferExhausted
from repro.media.objects import MediaObject
from repro.sched.base import CycleScheduler
from repro.sched.plan import PlannedRead, ReadKind, ReadPurpose
from repro.server.metrics import CycleReport, HiccupCause
from repro.server.stream import Stream


class TransitionProtocol(enum.Enum):
    """How a cluster shifts into degraded mode."""

    EAGER = "eager"  # Figure 6: whole group at once, from the group start
    LAZY = "lazy"    # Figure 7: delay reads until needed, running XOR


@dataclass(slots=True)
class _Accumulator:
    """Running XOR for one (stream, group) reconstruction (LAZY mode)."""

    payload: bytes
    needed: set[object]                      # track indices plus "parity"
    folded: set[object] = field(default_factory=set)
    target_track: int = -1

    @property
    def complete(self) -> bool:
        """True once every needed source has been folded in."""
        return self.needed == self.folded


class NonClusteredScheduler(CycleScheduler):
    """One track per stream per cycle, with failure-transition protocols."""

    __slots__ = ("protocol", "pool", "_completed_reconstructions",
                 "_reconstructions_credited", "_degraded", "_unprotected",
                 "_accumulators")

    def __init__(self, *args: Any,
                 protocol: TransitionProtocol = TransitionProtocol.LAZY,
                 pool: Optional[BufferPool] = None,
                 **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.protocol = protocol
        self.pool = pool
        self._completed_reconstructions = 0
        self._reconstructions_credited = 0
        #: cluster -> set of failed *data-disk* offsets within the cluster.
        self._degraded: dict[int, set[int]] = {}
        #: clusters that wanted a pool lease and were refused.
        self._unprotected: set[int] = set()
        self._accumulators: dict[tuple[int, int], _Accumulator] = {}

    # -- failure bookkeeping ---------------------------------------------------

    def on_disk_failure(self, disk_id: int) -> None:
        """Mark the cluster degraded, lease pool buffers, start transition."""
        cluster = self.layout.cluster_of(disk_id)
        if self.layout.is_parity_disk(disk_id):
            # A parity-disk failure costs nothing in normal mode: there is
            # nothing to reconstruct unless a data disk also fails, which
            # would be catastrophic regardless.
            return
        data_disks = self.layout.cluster_disks(cluster)[:-1]
        offset = data_disks.index(disk_id)
        self._degraded.setdefault(cluster, set()).add(offset)
        if self.pool is not None:
            try:
                self.pool.acquire(cluster)
            except BufferExhausted:
                self._unprotected.add(cluster)
        self._begin_transition(cluster)

    def on_disk_repair(self, disk_id: int) -> None:
        """Clear the degraded state and return the pool lease."""
        cluster = self.layout.cluster_of(disk_id)
        if self.layout.is_parity_disk(disk_id):
            return
        data_disks = self.layout.cluster_disks(cluster)[:-1]
        offset = data_disks.index(disk_id)
        failed = self._degraded.get(cluster)
        if failed is not None:
            failed.discard(offset)
            if not failed:
                del self._degraded[cluster]
                self._unprotected.discard(cluster)
                if self.pool is not None:
                    self.pool.release(cluster)

    def _begin_transition(self, cluster: int) -> None:
        """At failure time, account for what the in-flight groups lose.

        A stream mid-way through a group on the failed cluster has already
        delivered (or is about to deliver) its early members, so an unread
        block on the failed disk can never be rebuilt — the paper's W2/Y2
        losses.  Streams exactly at a group boundary can still be saved;
        LAZY opens their running XOR immediately.
        """
        for stream in self.active_streams:
            state = self._group_state(stream)
            if state is None:
                continue
            group, group_cluster, tracks, failed_offsets, next_offset = state
            if group_cluster != cluster or not failed_offsets:
                continue
            recoverable = (len(failed_offsets) == 1 and next_offset == 0
                           and cluster not in self._unprotected
                           and self._parity_available(stream, group))
            cause = (HiccupCause.BUFFER_EXHAUSTED
                     if cluster in self._unprotected
                     else HiccupCause.DISK_FAILURE)
            for offset in failed_offsets:
                if offset >= len(tracks):
                    continue
                track = tracks[offset]
                if track >= stream.next_read_track and not recoverable:
                    self._mark_lost(stream.stream_id, track, cause)
            if recoverable and self.protocol is TransitionProtocol.LAZY:
                self._open_accumulator(stream, group, tracks,
                                       failed_offsets[0])

    def _capacity_penalty(self) -> int:
        """Pool pressure: unprotected degraded clusters cost capacity.

        A degraded cluster that could not lease buffer servers from the
        shared pool serves its streams with unrecoverable losses; charging
        that cluster's share of the stream bound lets the front door shed
        or reject instead of admitting streams into a hiccup storm.
        """
        if not self._unprotected:
            return 0
        cluster_share = max(
            1, self.admission_limit // max(1, self.layout.num_clusters))
        return len(self._unprotected) * cluster_share

    # -- planning ------------------------------------------------------------------

    def _group_state(self, stream: Stream,
                     ) -> Optional[tuple[int, int, list[int],
                                         list[int], int]]:
        """Current reading group of a stream, or None when done reading."""
        if not stream.reads_remaining:
            return None
        name = stream.object.name
        group, next_offset = divmod(stream.next_read_track, self._stripe)
        tracks = self.layout.group_tracks(name, group)
        cluster = self.layout.group_cluster(name, group)
        failed_offsets = sorted(self._degraded.get(cluster, ()))
        return group, cluster, tracks, failed_offsets, next_offset

    def _schedule_target(self, stream: Stream, cycle: int) -> int:
        """Tracks the delivery schedule wants read by the end of ``cycle``.

        A rate-r stream reads r tracks per cycle; a recovery burst that
        fetched ahead of this target leaves the stream idle until the
        schedule catches up.
        """
        return (cycle - stream.admitted_cycle + 1) * stream.rate

    def plan_reads(self, cycle: int) -> list[PlannedRead]:
        """Rate-paced track reads, with degraded-mode bursts as needed."""
        plans: list[PlannedRead] = []
        # Direct table iteration: no per-cycle snapshot list (churn path).
        for stream in self.streams.values():
            if not stream.is_active:
                continue
            target = self._schedule_target(stream, cycle)
            for _ in range(stream.rate):
                if not stream.reads_remaining:
                    break
                if stream.next_read_track >= target:
                    break  # a burst put this stream ahead of schedule
                self._plan_one_quantum(stream, plans)
        return plans

    def _plan_one_quantum(self, stream: Stream,
                          plans: list[PlannedRead]) -> None:
        """One planning action: a track read, a skip, or a burst."""
        if not self._degraded:
            # No cluster is degraded: every stream is on its natural
            # one-track schedule (bursts and skips only exist in degraded
            # mode), so skip the group-state resolution entirely.
            if stream.reads_remaining:
                self._plan_one_track(stream, plans)
            return
        state = self._group_state(stream)
        if state is None:
            return
        group, cluster, tracks, failed_offsets, next_offset = state
        # Failed offsets beyond a short tail group do not affect it.
        failed_offsets = [o for o in failed_offsets if o < len(tracks)]
        recoverable = (len(failed_offsets) == 1
                       and cluster not in self._unprotected
                       and self._parity_available(stream, group))
        if not failed_offsets:
            self._plan_one_track(stream, plans)
        elif self.protocol is TransitionProtocol.EAGER and recoverable \
                and next_offset == 0:
            self._plan_eager_burst(stream, group, tracks,
                                   failed_offsets[0], plans)
        else:
            if self.protocol is TransitionProtocol.LAZY and recoverable \
                    and next_offset == 0:
                self._open_accumulator(stream, group, tracks,
                                       failed_offsets[0])
            if self.protocol is TransitionProtocol.LAZY \
                    and (stream.stream_id, group) in self._accumulators \
                    and next_offset == failed_offsets[0]:
                self._plan_lazy_burst(stream, group, tracks,
                                      failed_offsets[0], plans)
            else:
                self._plan_with_skips(stream, group, tracks,
                                      failed_offsets, cluster, plans)

    def _parity_available(self, stream: Stream, group: int) -> bool:
        address = self.layout.parity_address(stream.object.name, group)
        return not self.array[address.disk_id].is_failed

    def _data_read(self, stream: Stream, track: int,
                   purpose: ReadPurpose) -> PlannedRead:
        address = self.layout.data_address(stream.object.name, track)
        return PlannedRead(
            disk_id=address.disk_id,
            position=address.position,
            stream_id=stream.stream_id,
            object_name=stream.object.name,
            kind=ReadKind.DATA,
            index=track,
            purpose=purpose,
        )

    def _parity_read(self, stream: Stream, group: int) -> PlannedRead:
        address = self.layout.parity_address(stream.object.name, group)
        return PlannedRead(
            disk_id=address.disk_id,
            position=address.position,
            stream_id=stream.stream_id,
            object_name=stream.object.name,
            kind=ReadKind.PARITY,
            index=group,
            purpose=ReadPurpose.RECOVERY,
        )

    def _plan_one_track(self, stream: Stream, plans: list[PlannedRead],
                        ) -> None:
        """Healthy cluster: fetch exactly the next track."""
        plans.append(self._data_read(stream, stream.next_read_track,
                                     ReadPurpose.NORMAL))
        stream.next_read_track += 1

    def _plan_with_skips(self, stream: Stream, group: int,
                         tracks: list[int], failed_offsets: list[int],
                         cluster: int, plans: list[PlannedRead]) -> None:
        """Degraded cluster, unrecoverable (or mid-group) stream: natural
        pace, skipping the failed offsets."""
        offset = stream.next_read_track - tracks[0]
        if offset in failed_offsets:
            cause = (HiccupCause.BUFFER_EXHAUSTED
                     if cluster in self._unprotected
                     else HiccupCause.DISK_FAILURE)
            self._mark_lost(stream.stream_id, stream.next_read_track, cause)
            stream.next_read_track += 1
            return  # the failed disk's cycle passes idle for this stream
        plans.append(self._data_read(stream, stream.next_read_track,
                                     ReadPurpose.NORMAL))
        stream.next_read_track += 1

    def _plan_eager_burst(self, stream: Stream, group: int,
                          tracks: list[int], failed_offset: int,
                          plans: list[PlannedRead]) -> None:
        """Figure 6: read the whole group (and parity) at the group start."""
        for offset, track in enumerate(tracks):
            if offset == failed_offset:
                continue
            purpose = (ReadPurpose.NORMAL if offset == 0
                       else ReadPurpose.RECOVERY)
            plans.append(self._data_read(stream, track, purpose))
        if failed_offset < len(tracks):
            plans.append(self._parity_read(stream, group))
        stream.next_read_track = tracks[-1] + 1

    def _plan_lazy_burst(self, stream: Stream, group: int,
                         tracks: list[int], failed_offset: int,
                         plans: list[PlannedRead]) -> None:
        """Figure 7: at the failed block's own cycle, fetch the remaining
        members and the parity together."""
        for offset in range(failed_offset + 1, len(tracks)):
            plans.append(self._data_read(stream, tracks[offset],
                                         ReadPurpose.RECOVERY))
        plans.append(self._parity_read(stream, group))
        stream.next_read_track = tracks[-1] + 1

    # -- accumulators -----------------------------------------------------------------

    def _open_accumulator(self, stream: Stream, group: int,
                          tracks: list[int], failed_offset: int) -> None:
        if failed_offset >= len(tracks):
            return  # the tail group is too short to contain the failure
        if tracks[failed_offset] < stream.next_read_track:
            return  # the failed block was read before the failure
        key = (stream.stream_id, group)
        if key in self._accumulators:
            return
        needed: set[object] = {tracks[o] for o in range(len(tracks))
                               if o != failed_offset}
        needed.add("parity")
        self._accumulators[key] = _Accumulator(
            payload=self.codec.zero_block(),
            needed=needed,
            target_track=tracks[failed_offset],
        )
        stream.accumulators[group] = self._accumulators[key].payload

    def _fold(self, stream: Stream, group: int, source: object,
              payload: bytes) -> None:
        key = (stream.stream_id, group)
        acc = self._accumulators.get(key)
        if acc is None or source in acc.folded or source not in acc.needed:
            return
        acc.payload = self.codec.accumulate(acc.payload, payload)
        acc.folded.add(source)
        stream.accumulators[group] = acc.payload
        if acc.complete:
            stream.store_track(acc.target_track, acc.payload)
            self._lost_causes.pop((stream.stream_id, acc.target_track), None)
            stream.lost_tracks.discard(acc.target_track)
            stream.reconstructed_tracks += 1
            self._completed_reconstructions += 1
            del self._accumulators[key]
            stream.accumulators.pop(group, None)

    def _delivery_hook_needed(self) -> bool:
        return bool(self._accumulators)

    def _on_read_executed(self, stream: Stream, plan: PlannedRead,
                          payload: bytes) -> None:
        if not self._accumulators:
            return
        if plan.kind is ReadKind.PARITY:
            self._fold(stream, plan.index, "parity", payload)
        else:
            self._fold(stream, plan.index // self._stripe, plan.index,
                       payload)

    def _on_track_delivered(self, stream: Stream, track: int,
                            payload: bytes) -> None:
        if not self._accumulators:
            return
        self._fold(stream, track // self._stripe, track, payload)

    # -- drop handling ----------------------------------------------------------------

    def _handle_dropped(self, dropped: list[PlannedRead],
                        report: CycleReport) -> None:
        for plan in dropped:
            if plan.kind is ReadKind.DATA:
                cause = (HiccupCause.TRANSITION if self._degraded
                         else HiccupCause.SLOT_OVERFLOW)
                self._mark_lost(plan.stream_id, plan.index, cause)
            else:
                # A dropped parity read dooms the reconstruction.
                stream = self.streams.get(plan.stream_id)
                if stream is None:
                    continue
                key = (plan.stream_id, plan.index)
                acc = self._accumulators.pop(key, None)
                if acc is not None:
                    stream.accumulators.pop(plan.index, None)
                    self._mark_lost(plan.stream_id, acc.target_track,
                                    HiccupCause.DISK_FAILURE)

    def _extra_buffer_tracks(self) -> int:
        return self.pool.tracks_in_use if self.pool is not None else 0

    # -- reconstruction accounting ----------------------------------------------------

    def _finalise(self, report: CycleReport) -> None:
        """Credit accumulator completions since the last report.

        Must happen *before* :meth:`SimulationReport.record` (not after,
        as a ``run_cycle`` wrapper would) so bounded-tail reducers fold
        the credited count.
        """
        super()._finalise(report)
        report.reconstructions += (self._completed_reconstructions
                                   - self._reconstructions_credited)
        self._reconstructions_credited = self._completed_reconstructions

    # -- quiescent fast-forward --------------------------------------------------------

    def _fast_forward_ready(self) -> bool:
        """Veto while any cluster is degraded or a running XOR is open."""
        return (not self._degraded and not self._unprotected
                and not self._accumulators)

    def _ff_gate_params(self, stream: Stream) -> tuple[int, int, int, int]:
        """Vector gate: pace reads on the natural delivery schedule."""
        return stream.rate, stream.admitted_cycle, 1, 0

    def _ff_read_table(self, obj: MediaObject,
                       ) -> Optional[tuple[list[tuple[int, ...]],
                                           list[int], int]]:
        """Vector table: one data-disk read per track, natural order."""
        data_address = self.layout.data_address
        name = obj.name
        members = [(data_address(name, track).disk_id,)
                   for track in range(obj.num_tracks)]
        return members, list(range(1, obj.num_tracks + 1)), 1

    def _ff_stream_plan(self, stream: Stream, cycle: int,
                        loads: list[int]) -> Optional[tuple[int, int]]:
        """Quiescent plan: rate-paced single-track reads on the natural
        schedule (the healthy branch of :meth:`_plan_one_quantum`)."""
        new_read = stream.next_read_track
        num_tracks = stream.num_tracks
        target = self._schedule_target(stream, cycle)
        name = stream.object.name
        data_address = self.layout.data_address
        planned = 0
        for _ in range(stream.rate):
            if new_read >= num_tracks or new_read >= target:
                break
            loads[data_address(name, new_read).disk_id] += 1
            planned += 1
            new_read += 1
        return new_read, planned
