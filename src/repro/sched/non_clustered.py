"""The Non-clustered scheduler (Section 3, Figures 5–7).

Normal mode reads only what the next cycle will deliver: one track per
stream per cycle (``k = k' = 1``) — minimal buffering, at the price of a
*transition* when a disk fails, because blocks are delivered before their
parity group is fully read (Observation 2 is deliberately violated).

Reads are paced by the delivery schedule: a stream admitted in cycle ``a``
naturally reads track ``t`` in cycle ``a + t`` and delivers it one cycle
later.  When a recovery burst fetches tracks early, the stream then idles
until its natural schedule catches up, so bursts do not ripple collisions
into healthy clusters.

On a data-disk failure the affected cluster borrows degraded-mode buffering
from the shared pool (Section 3's "buffer servers") and recovers under one
of two protocols:

* **EAGER** (Figure 6): streams *starting* a parity group on the degraded
  cluster read the entire group plus parity at once (group-at-a-time, as
  Streaming RAID would).  Moved-forward reads take recovery priority and
  may displace other streams' normal reads when slots are full; displaced
  tracks are lost.
* **LAZY** (Figure 7): reads stay on their natural schedule; only at the
  cycle where the *failed* block would have been read are the remaining
  blocks and the parity fetched together, and the missing block is rebuilt
  from a running XOR of every member seen since the group began.  Fewer
  tracks are displaced than under EAGER.

Streams caught *mid-group* by the failure cannot be helped: members
delivered before the failure are gone, so their failed block is lost
(Figures 6–7's W2/Y2) and they simply skip it.  Once the transition
completes, delivery follows the original schedule with no further hiccups
until the disk is repaired.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.buffers.pool import BufferPool
from repro.errors import BufferExhausted
from repro.media.objects import MediaObject
from repro.sched.base import CycleScheduler
from repro.sched.plan import PlannedRead, ReadKind, ReadPurpose
from repro.server.metrics import CycleReport, HiccupCause
from repro.server.stream import Stream


class TransitionProtocol(enum.Enum):
    """How a cluster shifts into degraded mode."""

    EAGER = "eager"  # Figure 6: whole group at once, from the group start
    LAZY = "lazy"    # Figure 7: delay reads until needed, running XOR


@dataclass(slots=True)
class _Accumulator:
    """Running XOR for one (stream, group) reconstruction (LAZY mode)."""

    payload: bytes
    needed: set[object]                      # track indices plus "parity"
    folded: set[object] = field(default_factory=set)
    target_track: int = -1

    @property
    def complete(self) -> bool:
        """True once every needed source has been folded in."""
        return self.needed == self.folded


class NonClusteredScheduler(CycleScheduler):
    """One track per stream per cycle, with failure-transition protocols."""

    __slots__ = ("protocol", "pool", "_completed_reconstructions",
                 "_reconstructions_credited", "_degraded", "_unprotected",
                 "_accumulators")

    def __init__(self, *args: Any,
                 protocol: TransitionProtocol = TransitionProtocol.LAZY,
                 pool: Optional[BufferPool] = None,
                 **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.protocol = protocol
        self.pool = pool
        self._completed_reconstructions = 0
        self._reconstructions_credited = 0
        #: cluster -> set of failed *data-disk* offsets within the cluster.
        self._degraded: dict[int, set[int]] = {}
        #: clusters that wanted a pool lease and were refused.
        self._unprotected: set[int] = set()
        self._accumulators: dict[tuple[int, int], _Accumulator] = {}

    # -- failure bookkeeping ---------------------------------------------------

    def on_disk_failure(self, disk_id: int) -> None:
        """Mark the cluster degraded, lease pool buffers, start transition."""
        cluster = self.layout.cluster_of(disk_id)
        if self.layout.is_parity_disk(disk_id):
            # A parity-disk failure costs nothing in normal mode: there is
            # nothing to reconstruct unless a data disk also fails, which
            # would be catastrophic regardless.
            return
        data_disks = self.layout.cluster_disks(cluster)[:-1]
        offset = data_disks.index(disk_id)
        self._degraded.setdefault(cluster, set()).add(offset)
        if self.pool is not None:
            try:
                self.pool.acquire(cluster)
            except BufferExhausted:
                self._unprotected.add(cluster)
        self._begin_transition(cluster)

    def on_disk_repair(self, disk_id: int) -> None:
        """Clear the degraded state and return the pool lease."""
        cluster = self.layout.cluster_of(disk_id)
        if self.layout.is_parity_disk(disk_id):
            return
        data_disks = self.layout.cluster_disks(cluster)[:-1]
        offset = data_disks.index(disk_id)
        failed = self._degraded.get(cluster)
        if failed is not None:
            failed.discard(offset)
            if not failed:
                del self._degraded[cluster]
                self._unprotected.discard(cluster)
                if self.pool is not None:
                    self.pool.release(cluster)

    def _begin_transition(self, cluster: int) -> None:
        """At failure time, account for what the in-flight groups lose.

        A stream mid-way through a group on the failed cluster has already
        delivered (or is about to deliver) its early members, so an unread
        block on the failed disk can never be rebuilt — the paper's W2/Y2
        losses.  Streams exactly at a group boundary can still be saved;
        LAZY opens their running XOR immediately.
        """
        for stream in self.active_streams:
            state = self._group_state(stream)
            if state is None:
                continue
            group, group_cluster, tracks, failed_offsets, next_offset = state
            if group_cluster != cluster or not failed_offsets:
                continue
            recoverable = (len(failed_offsets) == 1 and next_offset == 0
                           and cluster not in self._unprotected
                           and self._parity_available(stream, group))
            cause = (HiccupCause.BUFFER_EXHAUSTED
                     if cluster in self._unprotected
                     else HiccupCause.DISK_FAILURE)
            for offset in failed_offsets:
                if offset >= len(tracks):
                    continue
                track = tracks[offset]
                if track >= stream.next_read_track and not recoverable:
                    self._mark_lost(stream.stream_id, track, cause)
            if recoverable and self.protocol is TransitionProtocol.LAZY:
                self._open_accumulator(stream, group, tracks,
                                       failed_offsets[0])

    def _capacity_penalty(self) -> int:
        """Pool pressure: unprotected degraded clusters cost capacity.

        A degraded cluster that could not lease buffer servers from the
        shared pool serves its streams with unrecoverable losses; charging
        that cluster's share of the stream bound lets the front door shed
        or reject instead of admitting streams into a hiccup storm.
        """
        if not self._unprotected:
            return 0
        cluster_share = max(
            1, self.admission_limit // max(1, self.layout.num_clusters))
        return len(self._unprotected) * cluster_share

    # -- planning ------------------------------------------------------------------

    def _group_state(self, stream: Stream,
                     ) -> Optional[tuple[int, int, list[int],
                                         list[int], int]]:
        """Current reading group of a stream, or None when done reading."""
        if not stream.reads_remaining:
            return None
        name = stream.object.name
        group, next_offset = divmod(stream.next_read_track, self._stripe)
        tracks = self.layout.group_tracks(name, group)
        cluster = self.layout.group_cluster(name, group)
        failed_offsets = sorted(self._degraded.get(cluster, ()))
        return group, cluster, tracks, failed_offsets, next_offset

    def _schedule_target(self, stream: Stream, cycle: int) -> int:
        """Tracks the delivery schedule wants read by the end of ``cycle``.

        A rate-r stream reads r tracks per cycle; a recovery burst that
        fetched ahead of this target leaves the stream idle until the
        schedule catches up.
        """
        return (cycle - stream.admitted_cycle + 1) * stream.rate

    def plan_reads(self, cycle: int) -> list[PlannedRead]:
        """Rate-paced track reads, with degraded-mode bursts as needed."""
        plans: list[PlannedRead] = []
        # Direct table iteration: no per-cycle snapshot list (churn path).
        for stream in self.streams.values():
            if not stream.is_active:
                continue
            target = self._schedule_target(stream, cycle)
            for _ in range(stream.rate):
                if not stream.reads_remaining:
                    break
                if stream.next_read_track >= target:
                    break  # a burst put this stream ahead of schedule
                self._plan_one_quantum(stream, plans)
        return plans

    def _plan_one_quantum(self, stream: Stream,
                          plans: list[PlannedRead]) -> None:
        """One planning action: a track read, a skip, or a burst."""
        if not self._degraded:
            # No cluster is degraded: every stream is on its natural
            # one-track schedule (bursts and skips only exist in degraded
            # mode), so skip the group-state resolution entirely.
            if stream.reads_remaining:
                self._plan_one_track(stream, plans)
            return
        state = self._group_state(stream)
        if state is None:
            return
        group, cluster, tracks, failed_offsets, next_offset = state
        # Failed offsets beyond a short tail group do not affect it.
        failed_offsets = [o for o in failed_offsets if o < len(tracks)]
        recoverable = (len(failed_offsets) == 1
                       and cluster not in self._unprotected
                       and self._parity_available(stream, group))
        if not failed_offsets:
            self._plan_one_track(stream, plans)
        elif self.protocol is TransitionProtocol.EAGER and recoverable \
                and next_offset == 0:
            self._plan_eager_burst(stream, group, tracks,
                                   failed_offsets[0], plans)
        else:
            if self.protocol is TransitionProtocol.LAZY and recoverable \
                    and next_offset == 0:
                self._open_accumulator(stream, group, tracks,
                                       failed_offsets[0])
            if self.protocol is TransitionProtocol.LAZY \
                    and (stream.stream_id, group) in self._accumulators \
                    and next_offset == failed_offsets[0]:
                self._plan_lazy_burst(stream, group, tracks,
                                      failed_offsets[0], plans)
            else:
                self._plan_with_skips(stream, group, tracks,
                                      failed_offsets, cluster, plans)

    def _parity_available(self, stream: Stream, group: int) -> bool:
        address = self.layout.parity_address(stream.object.name, group)
        return not self.array[address.disk_id].is_failed

    def _data_read(self, stream: Stream, track: int,
                   purpose: ReadPurpose) -> PlannedRead:
        address = self.layout.data_address(stream.object.name, track)
        return PlannedRead(
            disk_id=address.disk_id,
            position=address.position,
            stream_id=stream.stream_id,
            object_name=stream.object.name,
            kind=ReadKind.DATA,
            index=track,
            purpose=purpose,
        )

    def _parity_read(self, stream: Stream, group: int) -> PlannedRead:
        address = self.layout.parity_address(stream.object.name, group)
        return PlannedRead(
            disk_id=address.disk_id,
            position=address.position,
            stream_id=stream.stream_id,
            object_name=stream.object.name,
            kind=ReadKind.PARITY,
            index=group,
            purpose=ReadPurpose.RECOVERY,
        )

    def _plan_one_track(self, stream: Stream, plans: list[PlannedRead],
                        ) -> None:
        """Healthy cluster: fetch exactly the next track."""
        plans.append(self._data_read(stream, stream.next_read_track,
                                     ReadPurpose.NORMAL))
        stream.next_read_track += 1

    def _plan_with_skips(self, stream: Stream, group: int,
                         tracks: list[int], failed_offsets: list[int],
                         cluster: int, plans: list[PlannedRead]) -> None:
        """Degraded cluster, unrecoverable (or mid-group) stream: natural
        pace, skipping the failed offsets."""
        offset = stream.next_read_track - tracks[0]
        if offset in failed_offsets:
            cause = (HiccupCause.BUFFER_EXHAUSTED
                     if cluster in self._unprotected
                     else HiccupCause.DISK_FAILURE)
            self._mark_lost(stream.stream_id, stream.next_read_track, cause)
            stream.next_read_track += 1
            return  # the failed disk's cycle passes idle for this stream
        plans.append(self._data_read(stream, stream.next_read_track,
                                     ReadPurpose.NORMAL))
        stream.next_read_track += 1

    def _plan_eager_burst(self, stream: Stream, group: int,
                          tracks: list[int], failed_offset: int,
                          plans: list[PlannedRead]) -> None:
        """Figure 6: read the whole group (and parity) at the group start."""
        for offset, track in enumerate(tracks):
            if offset == failed_offset:
                continue
            purpose = (ReadPurpose.NORMAL if offset == 0
                       else ReadPurpose.RECOVERY)
            plans.append(self._data_read(stream, track, purpose))
        if failed_offset < len(tracks):
            plans.append(self._parity_read(stream, group))
        stream.next_read_track = tracks[-1] + 1

    def _plan_lazy_burst(self, stream: Stream, group: int,
                         tracks: list[int], failed_offset: int,
                         plans: list[PlannedRead]) -> None:
        """Figure 7: at the failed block's own cycle, fetch the remaining
        members and the parity together."""
        for offset in range(failed_offset + 1, len(tracks)):
            plans.append(self._data_read(stream, tracks[offset],
                                         ReadPurpose.RECOVERY))
        plans.append(self._parity_read(stream, group))
        stream.next_read_track = tracks[-1] + 1

    # -- accumulators -----------------------------------------------------------------

    def _open_accumulator(self, stream: Stream, group: int,
                          tracks: list[int], failed_offset: int) -> None:
        if failed_offset >= len(tracks):
            return  # the tail group is too short to contain the failure
        if tracks[failed_offset] < stream.next_read_track:
            return  # the failed block was read before the failure
        key = (stream.stream_id, group)
        if key in self._accumulators:
            return
        needed: set[object] = {tracks[o] for o in range(len(tracks))
                               if o != failed_offset}
        needed.add("parity")
        self._accumulators[key] = _Accumulator(
            payload=self.codec.zero_block(),
            needed=needed,
            target_track=tracks[failed_offset],
        )
        stream.accumulators[group] = self._accumulators[key].payload

    def _fold(self, stream: Stream, group: int, source: object,
              payload: bytes) -> None:
        key = (stream.stream_id, group)
        acc = self._accumulators.get(key)
        if acc is None or source in acc.folded or source not in acc.needed:
            return
        acc.payload = self.codec.accumulate(acc.payload, payload)
        acc.folded.add(source)
        stream.accumulators[group] = acc.payload
        if acc.complete:
            stream.store_track(acc.target_track, acc.payload)
            self._lost_causes.pop((stream.stream_id, acc.target_track), None)
            stream.lost_tracks.discard(acc.target_track)
            stream.reconstructed_tracks += 1
            self._completed_reconstructions += 1
            del self._accumulators[key]
            stream.accumulators.pop(group, None)

    def _delivery_hook_needed(self) -> bool:
        return bool(self._accumulators)

    def _on_read_executed(self, stream: Stream, plan: PlannedRead,
                          payload: bytes) -> None:
        if not self._accumulators:
            return
        if plan.kind is ReadKind.PARITY:
            self._fold(stream, plan.index, "parity", payload)
        else:
            self._fold(stream, plan.index // self._stripe, plan.index,
                       payload)

    def _on_track_delivered(self, stream: Stream, track: int,
                            payload: bytes) -> None:
        if not self._accumulators:
            return
        self._fold(stream, track // self._stripe, track, payload)

    # -- drop handling ----------------------------------------------------------------

    def _handle_dropped(self, dropped: list[PlannedRead],
                        report: CycleReport) -> None:
        for plan in dropped:
            if plan.kind is ReadKind.DATA:
                cause = (HiccupCause.TRANSITION if self._degraded
                         else HiccupCause.SLOT_OVERFLOW)
                self._mark_lost(plan.stream_id, plan.index, cause)
            else:
                # A dropped parity read dooms the reconstruction.
                stream = self.streams.get(plan.stream_id)
                if stream is None:
                    continue
                key = (plan.stream_id, plan.index)
                acc = self._accumulators.pop(key, None)
                if acc is not None:
                    stream.accumulators.pop(plan.index, None)
                    self._mark_lost(plan.stream_id, acc.target_track,
                                    HiccupCause.DISK_FAILURE)

    def _extra_buffer_tracks(self) -> int:
        return self.pool.tracks_in_use if self.pool is not None else 0

    # -- reconstruction accounting ----------------------------------------------------

    def _finalise(self, report: CycleReport) -> None:
        """Credit accumulator completions since the last report.

        Must happen *before* :meth:`SimulationReport.record` (not after,
        as a ``run_cycle`` wrapper would) so bounded-tail reducers fold
        the credited count.
        """
        super()._finalise(report)
        report.reconstructions += (self._completed_reconstructions
                                   - self._reconstructions_credited)
        self._reconstructions_credited = self._completed_reconstructions

    # -- quiescent fast-forward --------------------------------------------------------

    def _fast_forward_ready(self) -> bool:
        """Veto while any cluster is degraded or a running XOR is open."""
        return (not self._degraded and not self._unprotected
                and not self._accumulators)

    def _ff_gate_params(self, stream: Stream) -> tuple[int, int, int, int]:
        """Vector gate: pace reads on the natural delivery schedule."""
        return stream.rate, stream.admitted_cycle, 1, 0

    def _ff_read_table(self, obj: MediaObject,
                       ) -> Optional[tuple[np.ndarray, np.ndarray,
                                           np.ndarray, np.ndarray, int]]:
        """Vector table: one data-disk read per track, natural order.

        The cached geometry's flat member array already lists the data
        disk of every track in order, so the per-track table is a
        reindexing of it — no per-track address lookups.
        """
        _cnt, _ptr, disks, _parity, _nxt = self._ff_object_geometry(obj)
        tracks = obj.num_tracks
        pointers = np.arange(tracks + 1, dtype=np.int64)
        return (np.ones(tracks, dtype=np.int64), pointers, disks,
                pointers[1:], 1)

    def _ff_stream_plan(self, stream: Stream, cycle: int,
                        loads: list[int]) -> Optional[tuple[int, int]]:
        """Quiescent plan: rate-paced single-track reads on the natural
        schedule (the healthy branch of :meth:`_plan_one_quantum`)."""
        new_read = stream.next_read_track
        num_tracks = stream.num_tracks
        target = self._schedule_target(stream, cycle)
        name = stream.object.name
        data_address = self.layout.data_address
        planned = 0
        for _ in range(stream.rate):
            if new_read >= num_tracks or new_read >= target:
                break
            loads[data_address(name, new_read).disk_id] += 1
            planned += 1
            new_read += 1
        return new_read, planned

    # -- degraded fast-forward ---------------------------------------------------------

    def _ff_degraded_ready(self) -> bool:
        """The degraded engine models exactly the states the quiescent
        veto refuses: degraded clusters, open running XORs, and even
        unprotected clusters (whose lost-track positions the read table
        marks invalid, bailing before the scalar path would shed)."""
        return True

    def _ff_lazy_window(self, stream: Stream,
                        ) -> Optional[tuple[int, list[int], int]]:
        """``(group, tracks, failed offset)`` when the canonical LAZY
        schedule holds an open accumulator at the stream's read pointer
        (strictly after the group start, at or before the failed
        offset), else None."""
        if self.protocol is not TransitionProtocol.LAZY:
            return None
        if not stream.reads_remaining:
            return None
        group, offset = divmod(stream.next_read_track, self._stripe)
        name = stream.object.name
        tracks = self.layout.group_tracks(name, group)
        cluster = self.layout.group_cluster(name, group)
        failed = [o for o in sorted(self._degraded.get(cluster, ()))
                  if o < len(tracks)]
        if len(failed) != 1 or cluster in self._unprotected:
            return None
        if not self._parity_available(stream, group):
            return None
        if not 1 <= offset <= failed[0]:
            return None
        return group, tracks, failed[0]

    def _ff_degraded_stream_ok(self, stream: Stream) -> bool:
        """The stream must rest exactly on the canonical degraded
        trajectory: one open running XOR iff the pointer is inside a
        LAZY recovery window (with precisely the already-read members
        folded), and never strictly past a recoverable group's burst
        offset — a stream there crossed the group before the failure, so
        it holds neither parity nor XOR and the static tables cannot
        predict its buffers (it re-enters once delivery drains the
        group)."""
        sid = stream.stream_id
        window = self._ff_lazy_window(stream)
        if window is None:
            if stream.accumulators or any(
                    key[0] == sid for key in self._accumulators):
                return False
        else:
            group, tracks, f = window
            if set(stream.accumulators) != {group}:
                return False
            if any(key[0] == sid and key[1] != group
                   for key in self._accumulators):
                return False
            acc = self._accumulators.get((sid, group))
            if acc is None:
                return False
            offset = stream.next_read_track - tracks[0]
            needed: set[object] = {t for i, t in enumerate(tracks)
                                   if i != f}
            needed.add("parity")
            if not (acc.target_track == tracks[f]
                    and acc.needed == needed
                    and acc.folded == set(tracks[:offset])):
                return False
        if not stream.reads_remaining:
            return True
        group, offset = divmod(stream.next_read_track, self._stripe)
        name = stream.object.name
        tracks = self.layout.group_tracks(name, group)
        cluster = self.layout.group_cluster(name, group)
        failed = [o for o in sorted(self._degraded.get(cluster, ()))
                  if o < len(tracks)]
        if (len(failed) == 1 and cluster not in self._unprotected
                and self._parity_available(stream, group)):
            burst_offset = (0 if self.protocol is TransitionProtocol.EAGER
                            or failed[0] == 0 else failed[0])
            if offset > burst_offset:
                return False
        return True

    def _ff_degraded_sync_stream(self, stream: Stream) -> None:
        """Rematerialise the stream's running XOR at its new pointer.

        In metadata mode every fold yields the zero-length token, so the
        accumulator's payload is :meth:`ParityCodec.zero_block` verbatim
        and only the bookkeeping (needed/folded/target) must be rebuilt.
        """
        sid = stream.stream_id
        for key in [k for k in self._accumulators if k[0] == sid]:
            del self._accumulators[key]
        if not stream.is_active:
            return  # complete() already cleared the stream side
        stream.accumulators.clear()
        window = self._ff_lazy_window(stream)
        if window is None:
            return
        group, tracks, f = window
        offset = stream.next_read_track - tracks[0]
        needed: set[object] = {t for i, t in enumerate(tracks) if i != f}
        needed.add("parity")
        acc = _Accumulator(
            payload=self.codec.zero_block(),
            needed=needed,
            folded=set(tracks[:offset]),
            target_track=tracks[f],
        )
        self._accumulators[(sid, group)] = acc
        stream.accumulators[group] = acc.payload

    def _ff_degraded_credit(self, reconstructions: int) -> None:
        """LAZY reconstructions complete through the accumulator path,
        which the scalar run counts on the scheme's counters and credits
        in :meth:`_finalise`; the engine has already folded the count
        into its cycle reports, so both counters advance together.
        EAGER reconstructions go through the base reconstruct phase and
        touch neither counter."""
        if self.protocol is TransitionProtocol.LAZY:
            self._completed_reconstructions += reconstructions
            self._reconstructions_credited += reconstructions

    def _ff_degraded_pool_tracks(self, open_accumulators: int) -> int:
        """Pool commitment is lease-granular (per degraded cluster), not
        per accumulator, so it is constant across a degraded epoch."""
        return self.pool.tracks_in_use if self.pool is not None else 0

    def _ff_degraded_read_table(self, obj: MediaObject,
                                failed: list[int]) -> Optional[tuple]:
        """Per-track degraded table (divisor 1): natural-pace single
        reads, with the protocol's recovery burst folded into the group's
        scalar burst position — EAGER at the group start, LAZY at the
        failed offset (where the running XOR completes same-cycle).
        Unrecoverable failed offsets are invalid rows: the scalar path
        sheds the track there, a transition the engine must not cross.
        """
        stripe = self._stripe
        layout = self.layout
        name = obj.name
        data_address = layout.data_address
        sizes: list[int] = []
        flat: list[int] = []
        nexts: list[int] = []
        data_counts: list[int] = []
        parity_flags: list[int] = []
        valid: list[bool] = []
        deg_pairs: list[tuple[int, int]] = []
        acc_info: dict[int, tuple[int, int]] = {}
        eager = self.protocol is TransitionProtocol.EAGER

        def single(track: int) -> None:
            sizes.append(1)
            flat.append(data_address(name, track).disk_id)
            nexts.append(track + 1)
            data_counts.append(1)
            parity_flags.append(0)
            valid.append(True)

        def lost(track: int) -> None:
            sizes.append(0)
            nexts.append(track + 1)
            data_counts.append(0)
            parity_flags.append(0)
            valid.append(False)

        for group in range(-(-obj.num_tracks // stripe)):
            tracks = layout.group_tracks(name, group)
            cluster = layout.group_cluster(name, group)
            failed = [o for o in sorted(self._degraded.get(cluster, ()))
                      if o < len(tracks)]
            if not failed:
                for track in tracks:
                    single(track)
                continue
            parity_disk = layout.parity_address(name, group).disk_id
            recoverable = (len(failed) == 1
                           and cluster not in self._unprotected
                           and not self.array[parity_disk].is_failed)
            f = failed[0]
            after = tracks[-1] + 1
            for offset, track in enumerate(tracks):
                if not recoverable:
                    if offset in failed:
                        lost(track)
                    else:
                        single(track)
                elif eager:
                    if offset == 0:
                        burst = [data_address(name, m).disk_id
                                 for o, m in enumerate(tracks) if o != f]
                        burst.append(parity_disk)
                        sizes.append(len(burst))
                        flat.extend(burst)
                        nexts.append(after)
                        data_counts.append(len(tracks) - 1)
                        parity_flags.append(1)
                        valid.append(True)
                        deg_pairs.append((group, after))
                    elif offset == f:
                        # Mid-group under EAGER: the burst was missed, so
                        # the scalar path sheds the failed track here.
                        lost(track)
                    else:
                        single(track)
                elif offset == f:
                    burst = [data_address(name, m).disk_id
                             for m in tracks[f + 1:]]
                    burst.append(parity_disk)
                    sizes.append(len(burst))
                    flat.extend(burst)
                    nexts.append(after)
                    data_counts.append(len(tracks) - f - 1)
                    parity_flags.append(1)
                    valid.append(True)
                    deg_pairs.append((group, after))
                    if f >= 1:
                        acc_info[group] = (tracks[0] + 1, tracks[f])
                else:
                    single(track)
        cnt = np.asarray(sizes, dtype=np.int64)
        ptr = np.zeros(len(cnt) + 1, dtype=np.int64)
        np.cumsum(cnt, out=ptr[1:])
        return (cnt, ptr, np.asarray(flat, dtype=np.int64),
                np.asarray(nexts, dtype=np.int64),
                np.asarray(data_counts, dtype=np.int64),
                np.asarray(parity_flags, dtype=np.int64),
                np.asarray(valid, dtype=bool),
                tuple(deg_pairs), acc_info, 1)
