"""The Streaming RAID scheduler (Section 2, Figure 3).

Normal mode: every active stream reads its entire next parity group's data
blocks each cycle and delivers the previous group's ``C - 1`` blocks.  The
parity disks' bandwidth is held in reserve.

Degraded mode: a group with a member on a failed disk additionally reads
its parity block (from the cluster's dedicated parity disk, whose bandwidth
was reserved precisely for this) and the missing block is rebuilt before
its delivery deadline — zero hiccups, per Observation 2.
"""

from __future__ import annotations

from repro.sched.base import CycleScheduler
from repro.sched.plan import PlannedRead


class StreamingRAIDScheduler(CycleScheduler):
    """Full parity group per stream per cycle; k = k' = C - 1."""

    __slots__ = ()

    def plan_reads(self, cycle: int) -> list[PlannedRead]:
        """One full parity-group read per stream rate-unit per cycle."""
        plans: list[PlannedRead] = []
        # Iterate the stream table directly: planning runs every cycle,
        # and the ``active_streams`` snapshot list is allocation the
        # churn path cannot afford at VoD stream counts.
        for stream in self.streams.values():
            if not stream.is_active:
                continue
            # A rate-r stream consumes r parity groups per cycle; live
            # streams reduce ``reads_remaining`` to the pointer check.
            for _ in range(stream.rate):
                if stream.next_read_track >= stream.num_tracks:
                    break
                self._plan_group_read(stream, plans, include_parity=True)
        return plans
