"""Cycle-based schedulers for the four fault-tolerance schemes.

All schedulers share the cycle engine of :class:`CycleScheduler`
(deliver from buffers, plan reads, resolve disk-slot contention, execute,
reconstruct from parity) and differ in *what* they plan each cycle:

* :class:`StreamingRAIDScheduler` — a full parity group per stream per
  cycle (Section 2, Figure 3).
* :class:`StaggeredGroupScheduler` — group reads staggered across C - 1
  phases, one track delivered per cycle (Section 2, Figure 4).
* :class:`NonClusteredScheduler` — one track per stream per cycle, with
  the eager (Figure 6) or lazy (Figure 7) degraded-mode transition.
* :class:`ImprovedBandwidthScheduler` — SR-style reads on the shifted
  layout with the "shift to the right" parity cascade (Section 4).
* :class:`DeclusteredParityScheduler` — SR-style reads on the
  declustered layout, with distributed rebuild (extension).
"""

from repro.sched.base import CycleScheduler
from repro.sched.config import SchedulerConfig
from repro.sched.declustered import DeclusteredParityScheduler
from repro.sched.improved_bandwidth import ImprovedBandwidthScheduler
from repro.sched.non_clustered import NonClusteredScheduler, TransitionProtocol
from repro.sched.plan import PlannedRead, ReadKind, ReadPurpose
from repro.sched.slots import SlotTable
from repro.sched.staggered_group import StaggeredGroupScheduler
from repro.sched.streaming_raid import StreamingRAIDScheduler

__all__ = [
    "CycleScheduler",
    "DeclusteredParityScheduler",
    "ImprovedBandwidthScheduler",
    "NonClusteredScheduler",
    "PlannedRead",
    "ReadKind",
    "ReadPurpose",
    "SchedulerConfig",
    "SlotTable",
    "StaggeredGroupScheduler",
    "StreamingRAIDScheduler",
    "TransitionProtocol",
]
