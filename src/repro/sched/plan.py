"""Planned disk reads: the unit the slot table arbitrates."""

from __future__ import annotations

import enum


class ReadKind(enum.Enum):
    """What the read fetches."""

    DATA = "data"
    PARITY = "parity"


class ReadPurpose(enum.Enum):
    """Why the read is scheduled; determines its drop priority."""

    #: Regular schedule-driven fetch.
    NORMAL = "normal"
    #: Parity or moved-forward fetch needed to mask a failure.  Recovery
    #: reads win slot contention: "disks ... drop some of the local
    #: requests in favor of reading the parity blocks" (Section 4).
    RECOVERY = "recovery"
    #: A nice-to-have fetch that yields to everything else.  Section 4's
    #: "sophisticated scheduler": "Under lightly loaded conditions, the
    #: parity blocks can be read during normal operation and the isolated
    #: hiccup avoided.  As the load increases, reading parity blocks can
    #: be dropped in favor of supporting more streams."
    OPPORTUNISTIC = "opportunistic"


class PlannedRead:
    """One track-sized read planned for the coming cycle.

    ``index`` is the object-relative track number for DATA reads and the
    parity-group number for PARITY reads.

    A hand-written ``__slots__`` class rather than a dataclass: schedulers
    construct tens of these per cycle on the hot path, and a plain
    ``__init__`` with direct attribute stores is several times cheaper
    than a frozen dataclass's generated one.
    """

    __slots__ = ("disk_id", "position", "stream_id", "object_name",
                 "kind", "index", "purpose")

    def __init__(self, disk_id: int, position: int, stream_id: int,
                 object_name: str, kind: ReadKind, index: int,
                 purpose: ReadPurpose = ReadPurpose.NORMAL) -> None:
        self.disk_id = disk_id
        self.position = position
        self.stream_id = stream_id
        self.object_name = object_name
        self.kind = kind
        self.index = index
        self.purpose = purpose

    def __repr__(self) -> str:
        return (f"PlannedRead(disk_id={self.disk_id}, "
                f"position={self.position}, stream_id={self.stream_id}, "
                f"object_name={self.object_name!r}, kind={self.kind}, "
                f"index={self.index}, purpose={self.purpose})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PlannedRead):
            return NotImplemented
        return (self.disk_id == other.disk_id
                and self.position == other.position
                and self.stream_id == other.stream_id
                and self.object_name == other.object_name
                and self.kind is other.kind
                and self.index == other.index
                and self.purpose is other.purpose)

    # Identity hashing: arbitration tracks plans by object, not by value.
    __hash__ = object.__hash__

    @property
    def priority(self) -> int:
        """Slot-contention rank; lower wins."""
        if self.purpose is ReadPurpose.RECOVERY:
            return 0
        if self.purpose is ReadPurpose.NORMAL:
            return 1
        return 2  # OPPORTUNISTIC yields to all scheduled work
