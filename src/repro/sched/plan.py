"""Planned disk reads: the unit the slot table arbitrates."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ReadKind(enum.Enum):
    """What the read fetches."""

    DATA = "data"
    PARITY = "parity"


class ReadPurpose(enum.Enum):
    """Why the read is scheduled; determines its drop priority."""

    #: Regular schedule-driven fetch.
    NORMAL = "normal"
    #: Parity or moved-forward fetch needed to mask a failure.  Recovery
    #: reads win slot contention: "disks ... drop some of the local
    #: requests in favor of reading the parity blocks" (Section 4).
    RECOVERY = "recovery"
    #: A nice-to-have fetch that yields to everything else.  Section 4's
    #: "sophisticated scheduler": "Under lightly loaded conditions, the
    #: parity blocks can be read during normal operation and the isolated
    #: hiccup avoided.  As the load increases, reading parity blocks can
    #: be dropped in favor of supporting more streams."
    OPPORTUNISTIC = "opportunistic"


@dataclass(frozen=True)
class PlannedRead:
    """One track-sized read planned for the coming cycle.

    ``index`` is the object-relative track number for DATA reads and the
    parity-group number for PARITY reads.
    """

    disk_id: int
    position: int
    stream_id: int
    object_name: str
    kind: ReadKind
    index: int
    purpose: ReadPurpose = ReadPurpose.NORMAL

    @property
    def priority(self) -> int:
        """Slot-contention rank; lower wins."""
        if self.purpose is ReadPurpose.RECOVERY:
            return 0
        if self.purpose is ReadPurpose.NORMAL:
            return 1
        return 2  # OPPORTUNISTIC yields to all scheduled work
