"""The shared cycle engine behind all four scheme schedulers.

Each simulated cycle proceeds in the paper's order (Section 2):

1. **deliver** — every started stream sends its due ``k'`` tracks from its
   buffer to the display station; a missing track is a *hiccup* (the
   delivery clock never waits);
2. **plan** — the concrete scheme decides which track/parity reads to issue
   (:meth:`CycleScheduler.plan_reads`);
3. **resolve** — the slot table arbitrates per-disk capacity; recovery
   reads beat normal reads; losers are dropped;
4. **execute** — surviving reads move payloads from disks into stream
   buffers (data read during cycle *n* is deliverable from cycle *n + 1*);
5. **reconstruct** — groups that now hold parity plus all-but-one data
   block rebuild the missing block on the fly (Observation 2).

Concrete schedulers implement planning and failure-transition behaviour;
everything else — buffers, hiccup attribution, payload verification,
metrics — lives here so the four schemes stay comparable.
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.analysis.streams import data_disk_count
from repro.buffers.tracker import BufferTracker
from repro.disk.drive import DiskArray
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    ReconstructionError,
    SimulationError,
)
from repro.layout.base import DataLayout
from repro.media.objects import MediaObject
from repro.parity.xor import ParityCodec
from repro.sched.config import SchedulerConfig
from repro.schemes import Scheme
from repro.sched.plan import PlannedRead, ReadKind, ReadPurpose
from repro.sched.slots import SlotTable
from repro.server.metrics import (
    CycleReport,
    HiccupCause,
    HiccupRecord,
    SimulationReport,
)
from repro.server.stream import Stream, StreamStatus


class CycleScheduler(abc.ABC):
    """Cycle-synchronous scheduler: the common engine for all schemes."""

    def __init__(self, layout: DataLayout, array: DiskArray,
                 config: SchedulerConfig,
                 admission_limit: Optional[int] = None,
                 verify_payloads: bool = False):
        if layout.num_disks != len(array):
            raise ConfigurationError(
                f"layout covers {layout.num_disks} disks, array has {len(array)}"
            )
        if config.params.num_disks != layout.num_disks:
            raise ConfigurationError(
                f"parameters describe D={config.params.num_disks} disks, "
                f"layout has {layout.num_disks}"
            )
        self.layout = layout
        self.array = array
        self.config = config
        self.verify_payloads = verify_payloads
        self.track_bytes = int(round(array.spec.track_size_mb * 1_000_000))
        self.codec = ParityCodec(self.track_bytes)
        self.slot_table = SlotTable(array, config.slots_per_disk)
        self.report = SimulationReport()
        self.tracker = BufferTracker(array.spec.track_size_mb)
        self.cycle_index = 0
        self.streams: dict[int, Stream] = {}
        self._next_stream_id = 0
        self._phase_counter = 0
        #: (stream_id, track) -> why it will hiccup at delivery time.
        self._lost_causes: dict[tuple[int, int], HiccupCause] = {}
        #: Reads executed during the most recent cycle (for mid-cycle
        #: failure semantics).
        self._last_executed: list[PlannedRead] = []
        #: Reconstructions performed between cycles (mid-cycle failures
        #: masked by prefetched parity); credited to the next report.
        self._pending_reconstructions = 0
        #: Active on-line rebuilds (rebuild mode), one per failed disk.
        self.rebuilders: list = []
        if admission_limit is None:
            admission_limit = self._slot_based_stream_bound()
        self.admission_limit = admission_limit

    def _slot_based_stream_bound(self) -> int:
        """Streams the per-disk slot budget can carry.

        Each stream needs ``k`` track reads per read cycle spread over
        ``D'`` data disks (the staggered scheme's reads amortise to one
        per cycle — Section 2's "in effect uses k = 1").  This is the
        simulator's own capacity constraint, the discrete counterpart of
        equations (8)–(11).
        """
        effective_k = (1 if self.config.scheme is Scheme.STAGGERED_GROUP
                       else self.config.k)
        d_prime = data_disk_count(self.config.params,
                                  self.config.parity_group_size,
                                  self.config.scheme)
        return max(0, int(self.config.slots_per_disk * d_prime
                          // effective_k))

    # -- scheme-specific hooks ------------------------------------------------

    @abc.abstractmethod
    def plan_reads(self, cycle: int) -> list[PlannedRead]:
        """Decide this cycle's reads; may advance stream read pointers."""

    def on_disk_failure(self, disk_id: int) -> None:
        """Scheme reaction to a failure (default: none)."""

    def on_disk_repair(self, disk_id: int) -> None:
        """Scheme reaction to a repair (default: none)."""

    def deliveries_per_cycle(self, stream: Stream) -> int:
        """Tracks a started stream must send per cycle.

        A rate-``r`` stream (an object ``r`` times the base bandwidth)
        consumes ``r`` times the cycle's delivery quantum.
        """
        return self.config.k_prime * stream.rate

    def _on_read_executed(self, stream: Stream, plan: PlannedRead,
                          payload: bytes) -> None:
        """Hook after each executed read (NC folds accumulators here)."""

    def _on_track_delivered(self, stream: Stream, track: int,
                            payload: bytes) -> None:
        """Hook after each delivered track."""

    def _handle_dropped(self, dropped: list[PlannedRead],
                        report: CycleReport) -> None:
        """Default drop policy: a dropped data read is a lost track."""
        for plan in dropped:
            if self.array[plan.disk_id].is_failed:
                raise SimulationError(
                    f"scheduler planned a read on failed disk {plan.disk_id}"
                )
            if plan.kind is ReadKind.DATA:
                self._mark_lost(plan.stream_id, plan.index,
                                HiccupCause.SLOT_OVERFLOW)

    def resolve_plans(self, plans: list[PlannedRead], report: CycleReport,
                      ) -> tuple[list[PlannedRead], list[PlannedRead]]:
        """Arbitrate slots (IB overrides this with the shift-right cascade)."""
        return self.slot_table.resolve(plans)

    # -- stream management ------------------------------------------------------

    @property
    def active_streams(self) -> list[Stream]:
        """Streams currently occupying server resources, by id."""
        return [s for s in self.streams.values() if s.is_active]

    @property
    def active_load(self) -> int:
        """Capacity units in use: the rate-weighted active stream count."""
        return sum(s.rate for s in self.active_streams)

    def _rate_of(self, obj: MediaObject) -> int:
        """The object's bandwidth as a multiple of the server's base rate.

        Only (near-)integer multiples are schedulable on a fixed cycle —
        the paper's MPEG-2-on-an-MPEG-1-server case is exactly 3x.
        """
        ratio = obj.bandwidth_mb_s / self.config.params.object_bandwidth_mb_s
        rate = round(ratio)
        if rate < 1 or abs(ratio - rate) > 1e-6:
            raise AdmissionError(
                f"object {obj.name!r} needs {ratio:.3f}x the base rate; "
                "only integer multiples are schedulable on this cycle"
            )
        return rate

    def admit(self, obj: MediaObject) -> Stream:
        """Admit a new stream for ``obj`` (AdmissionError if at capacity).

        Admission is rate-weighted: one MPEG-2 stream on an MPEG-1-cycled
        server consumes three capacity units (Section 1's "or some
        combination of the two").
        """
        if obj.name not in {o.name for o in self.layout.objects}:
            raise AdmissionError(f"object {obj.name!r} is not on disk")
        rate = self._rate_of(obj)
        if self.active_load + rate > self.admission_limit:
            raise AdmissionError(
                f"at capacity: load {self.active_load} of "
                f"{self.admission_limit} units, request needs {rate}"
            )
        stream = Stream(
            stream_id=self._next_stream_id,
            obj=obj,
            admitted_cycle=self.cycle_index,
            phase=self._assign_phase(),
            rate=rate,
        )
        self._next_stream_id += 1
        self.streams[stream.stream_id] = stream
        return stream

    def _assign_phase(self) -> int:
        """Assign the least-loaded read phase (staggered schemes use this).

        Plain round-robin skews once streams complete unevenly; balancing
        on the *current* rate-weighted load per phase keeps every cycle's
        read volume equal, which the staggered capacity bound assumes.
        """
        width = self.config.stripe_width
        load = [0] * width
        for stream in self.active_streams:
            load[stream.phase % width] += stream.rate
        best = min(range(width), key=lambda p: (load[p], p))
        self._phase_counter += 1
        return best

    def terminate_stream(self, stream_id: int) -> None:
        """Drop a stream (degradation of service)."""
        stream = self.streams[stream_id]
        if stream.is_active:
            stream.terminate()

    def stop_stream(self, stream_id: int) -> None:
        """A viewer leaves early: free the stream's capacity and buffers.

        Unlike termination this is voluntary; the front door can admit a
        replacement in the same cycle.
        """
        stream = self.streams[stream_id]
        if stream.is_active:
            stream.stop()

    def _mark_lost(self, stream_id: int, track: int,
                   cause: HiccupCause) -> None:
        stream = self.streams[stream_id]
        stream.mark_lost(track)
        self._lost_causes.setdefault((stream_id, track), cause)

    # -- failure control ---------------------------------------------------------

    def fail_disk(self, disk_id: int, mid_cycle: bool = False) -> None:
        """Fail a disk between cycles.

        With ``mid_cycle=True`` the failure is deemed to have struck while
        the just-finished cycle's reads were in flight: tracks fetched from
        the failed disk in that cycle are invalidated and will hiccup
        (Section 4's "if a failure occurs in the middle of a cycle ... we
        are forced to ... cause a hiccup").
        """
        self.array.fail(disk_id)
        if mid_cycle:
            for plan in self._last_executed:
                if plan.disk_id != disk_id or plan.kind is not ReadKind.DATA:
                    continue
                stream = self.streams.get(plan.stream_id)
                if stream is None or not stream.is_active:
                    continue
                if stream.take_track(plan.index) is None:
                    continue
                # If the group's parity was prefetched (the "sophisticated
                # scheduler" of Section 4), the block can be rebuilt right
                # now and the hiccup avoided.
                group, _ = self.layout.group_of(plan.object_name, plan.index)
                if not self._try_direct_reconstruction(stream, group, None):
                    self._mark_lost(plan.stream_id, plan.index,
                                    HiccupCause.MID_CYCLE_FAILURE)
        self.on_disk_failure(disk_id)

    def repair_disk(self, disk_id: int) -> None:
        """Bring a reloaded disk back online between cycles."""
        self.array.repair(disk_id)
        self.on_disk_repair(disk_id)

    def start_rebuild(self, disk_id: int,
                      writes_per_cycle: Optional[int] = None):
        """Begin rebuilding a failed disk onto a spare (rebuild mode).

        The rebuild consumes only idle slots; the disk is repaired
        automatically when the last block lands.  Returns the
        :class:`~repro.sched.rebuild.OnlineRebuilder` for progress checks.
        """
        from repro.sched.rebuild import OnlineRebuilder
        rebuilder = OnlineRebuilder(self, disk_id,
                                    writes_per_cycle=writes_per_cycle)
        self.rebuilders.append(rebuilder)
        return rebuilder

    # -- the cycle engine -----------------------------------------------------------

    def run_cycle(self) -> CycleReport:
        """Simulate one full cycle; returns its report."""
        report = CycleReport(cycle=self.cycle_index)
        self._deliver_phase(report)
        plans = self.plan_reads(self.cycle_index)
        report.reads_planned = len(plans)
        executed, dropped = self.resolve_plans(plans, report)
        self._handle_dropped(dropped, report)
        report.reads_dropped = len(dropped)
        self._execute_reads(executed, report)
        self._reconstruct_phase(executed, report)
        self._rebuild_phase(executed, report)
        self._finalise(report)
        self.report.record(report)
        self.cycle_index += 1
        return report

    def run_cycles(self, count: int) -> list[CycleReport]:
        """Simulate ``count`` cycles."""
        return [self.run_cycle() for _ in range(count)]

    # -- phases ------------------------------------------------------------------------

    def _deliver_phase(self, report: CycleReport) -> None:
        for stream in self.active_streams:
            if stream.delivery_start_cycle is None:
                continue
            if self.cycle_index < stream.delivery_start_cycle:
                continue
            due = min(self.deliveries_per_cycle(stream),
                      stream.object.num_tracks - stream.next_delivery_track)
            for _ in range(due):
                track = stream.next_delivery_track
                self._deliver_track(stream, track, report)
                stream.next_delivery_track += 1
                stream.activate()
            self._release_finished_groups(stream)
            if not stream.deliveries_remaining:
                stream.complete()

    def _deliver_track(self, stream: Stream, track: int,
                       report: CycleReport) -> None:
        payload = stream.take_track(track)
        if payload is None:
            cause = self._lost_causes.pop(
                (stream.stream_id, track), None)
            if cause is None:
                address = self.layout.data_address(stream.object.name, track)
                cause = (HiccupCause.DISK_FAILURE
                         if self.array[address.disk_id].is_failed
                         else HiccupCause.TRANSITION)
            report.hiccups.append(HiccupRecord(
                cycle=self.cycle_index,
                stream_id=stream.stream_id,
                object_name=stream.object.name,
                track=track,
                cause=cause,
            ))
            stream.hiccup_count += 1
            stream.lost_tracks.discard(track)
            return
        if self.verify_payloads:
            expected = stream.object.track_payload(track, self.track_bytes)
            if payload != expected:
                self.report.payload_mismatches += 1
        report.tracks_delivered += 1
        stream.delivered_tracks += 1
        self._on_track_delivered(stream, track, payload)

    def _release_finished_groups(self, stream: Stream) -> None:
        """Drop parity/accumulator buffers of fully delivered groups."""
        if stream.next_delivery_track == 0:
            return
        current_group, offset = divmod(
            stream.next_delivery_track, self.config.stripe_width)
        for group in list(stream.parity_buffer):
            if group < current_group:
                stream.drop_parity(group)
        for group in list(stream.accumulators):
            if group < current_group:
                stream.drop_parity(group)

    def _execute_reads(self, executed: list[PlannedRead],
                       report: CycleReport) -> None:
        for plan in executed:
            stream = self.streams.get(plan.stream_id)
            if stream is None or not stream.is_active:
                continue
            payload = self.array[plan.disk_id].read(plan.position)
            if plan.kind is ReadKind.DATA:
                stream.store_track(plan.index, payload)
                if stream.delivery_start_cycle is None:
                    stream.delivery_start_cycle = self.cycle_index + 1
            else:
                stream.store_parity(plan.index, payload)
                report.parity_reads += 1
            report.reads_executed += 1
            self._on_read_executed(stream, plan, payload)
        self._last_executed = list(executed)

    def _reconstruct_phase(self, executed: list[PlannedRead],
                           report: CycleReport) -> None:
        """Rebuild missing blocks in groups touched this cycle."""
        touched: set[tuple[int, int]] = set()
        for plan in executed:
            if plan.kind is ReadKind.PARITY:
                touched.add((plan.stream_id, plan.index))
            else:
                group, _ = self.layout.group_of(plan.object_name, plan.index)
                touched.add((plan.stream_id, group))
        for stream_id, group in sorted(touched):
            stream = self.streams.get(stream_id)
            if stream is None or not stream.is_active:
                continue
            self._try_direct_reconstruction(stream, group, report)

    def _try_direct_reconstruction(self, stream: Stream, group: int,
                                   report: Optional[CycleReport]) -> bool:
        """Rebuild the single missing block of a fully resident group."""
        if group not in stream.parity_buffer:
            return False
        tracks = self.layout.group_tracks(stream.object.name, group)
        missing = [t for t in tracks
                   if t not in stream.buffer
                   and t >= stream.next_delivery_track]
        if len(missing) != 1:
            return False
        present = [t for t in tracks if t in stream.buffer]
        if len(present) != len(tracks) - 1:
            return False  # some member was already delivered and discarded
        blocks: list[Optional[bytes]] = [
            stream.buffer.get(t) for t in tracks]
        while len(blocks) < self.config.stripe_width:
            blocks.append(self.codec.zero_block())  # tail-group padding
        payload = self.codec.reconstruct(blocks, stream.parity_buffer[group])
        stream.store_track(missing[0], payload)
        self._lost_causes.pop((stream.stream_id, missing[0]), None)
        stream.lost_tracks.discard(missing[0])
        stream.reconstructed_tracks += 1
        if report is None:
            self._pending_reconstructions += 1
        else:
            report.reconstructions += 1
        return True

    def _rebuild_phase(self, executed: list[PlannedRead],
                       report: CycleReport) -> None:
        """Feed idle slots to any active rebuilds (lowest priority)."""
        if not self.rebuilders:
            return
        idle = self.slot_table.idle_slots(executed)
        for rebuilder in list(self.rebuilders):
            try:
                report.blocks_rebuilt += rebuilder.run_step(idle)
            except ReconstructionError:
                # A second failure made the rebuild impossible: this disk
                # now needs a tertiary reload (catastrophic failure).
                rebuilder.completed = True
                self.rebuilders.remove(rebuilder)
                continue
            if rebuilder.completed:
                self.rebuilders.remove(rebuilder)

    def _finalise(self, report: CycleReport) -> None:
        report.reconstructions += self._pending_reconstructions
        self._pending_reconstructions = 0
        report.streams_active = len(
            [s for s in self.streams.values()
             if s.status is StreamStatus.ACTIVE])
        report.streams_terminated = len(
            [s for s in self.streams.values()
             if s.status is StreamStatus.TERMINATED])
        report.buffered_tracks = self.tracker.sample(
            self.active_streams, extra_tracks=self._extra_buffer_tracks())
        report.pool_tracks_in_use = self._extra_buffer_tracks()

    def _extra_buffer_tracks(self) -> int:
        """Buffers held outside streams (NC's pool overrides this)."""
        return 0

    # -- helpers shared by group-at-a-time schemes -------------------------------

    def _plan_group_read(self, stream: Stream, plans: list[PlannedRead],
                         include_parity: bool,
                         data_purpose: ReadPurpose = ReadPurpose.NORMAL,
                         ) -> None:
        """Plan a whole-parity-group read for a stream's next group.

        Skips members on failed disks; adds a parity read when
        ``include_parity`` is set, a member is missing, and the parity disk
        is up.  Advances the read pointer to the end of the group.
        """
        name = stream.object.name
        group, offset = self.layout.group_of(name, stream.next_read_track)
        if offset != 0:
            raise SimulationError(
                f"group read planned mid-group (stream {stream.stream_id}, "
                f"track {stream.next_read_track})"
            )
        span = self.layout.group_span(name, group)
        tracks = self.layout.group_tracks(name, group)
        failed_members = 0
        for track, address in zip(tracks, span.data):
            if self.array[address.disk_id].is_failed:
                failed_members += 1
                continue
            plans.append(PlannedRead(
                disk_id=address.disk_id,
                position=address.position,
                stream_id=stream.stream_id,
                object_name=name,
                kind=ReadKind.DATA,
                index=track,
                purpose=data_purpose,
            ))
        parity_disk_ok = not self.array[span.parity.disk_id].is_failed
        if include_parity and failed_members and parity_disk_ok:
            plans.append(PlannedRead(
                disk_id=span.parity.disk_id,
                position=span.parity.position,
                stream_id=stream.stream_id,
                object_name=name,
                kind=ReadKind.PARITY,
                index=group,
                purpose=ReadPurpose.RECOVERY,
            ))
        stream.next_read_track = tracks[-1] + 1
