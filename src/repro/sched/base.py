"""The shared cycle engine behind all four scheme schedulers.

Each simulated cycle proceeds in the paper's order (Section 2):

1. **deliver** — every started stream sends its due ``k'`` tracks from its
   buffer to the display station; a missing track is a *hiccup* (the
   delivery clock never waits);
2. **plan** — the concrete scheme decides which track/parity reads to issue
   (:meth:`CycleScheduler.plan_reads`);
3. **resolve** — the slot table arbitrates per-disk capacity; recovery
   reads beat normal reads; losers are dropped;
4. **execute** — surviving reads move payloads from disks into stream
   buffers (data read during cycle *n* is deliverable from cycle *n + 1*);
5. **reconstruct** — groups that now hold parity plus all-but-one data
   block rebuild the missing block on the fly (Observation 2).

Concrete schedulers implement planning and failure-transition behaviour;
everything else — buffers, hiccup attribution, payload verification,
metrics — lives here so the four schemes stay comparable.
"""

from __future__ import annotations

import abc
from bisect import bisect_right
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:
    from repro.sched.rebuild import OnlineRebuilder

from repro.analysis.streams import data_disk_count
from repro.buffers.tracker import BufferTracker
from repro.disk.drive import DiskArray
from repro.errors import (
    AdmissionError,
    ConfigurationError,
    MediaReadError,
    ReconstructionError,
    SimulationError,
)
from repro.layout.base import DataLayout
from repro.media.objects import MediaObject
from repro.parity.xor import META_PAYLOAD, MetaParityCodec, ParityCodec
from repro.sched.config import SchedulerConfig
from repro.schemes import Scheme
from repro.sched.plan import PlannedRead, ReadKind, ReadPurpose
from repro.units import mb_to_bytes
from repro.sched.slots import SlotTable
from repro.server.admission import fault_aware_capacity
from repro.server.metrics import (
    CycleReport,
    DataLossEvent,
    HiccupCause,
    HiccupRecord,
    SimulationReport,
)
from repro.server.stream import Stream, StreamStatus


class GroupPlan:
    """The cached read plan for one (object, group) under one epoch.

    Resolves once per failure/placement epoch what `_plan_group_read`
    previously recomputed per stream per cycle: which members are on
    healthy disks (and where), how many are failed, and where the group's
    parity lives (``None`` when the parity disk is down).
    """

    __slots__ = ("healthy", "failed_members", "parity", "next_read_track")

    def __init__(self, healthy: tuple[tuple[int, int, int], ...],
                 failed_members: int,
                 parity: Optional[tuple[int, int]],
                 next_read_track: int) -> None:
        #: ``(disk_id, position, track)`` per member on an operational disk.
        self.healthy = healthy
        self.failed_members = failed_members
        #: ``(disk_id, position)`` of the parity block, or ``None``.
        self.parity = parity
        self.next_read_track = next_read_track


class CycleScheduler(abc.ABC):
    """Cycle-synchronous scheduler: the common engine for all schemes."""

    #: Schemes whose layouts spread parity groups over arbitrary disk
    #: subsets opt rebuilds into the distributed (source-disjoint
    #: round-robin) pending order; see ``OnlineRebuilder``.
    distributed_rebuild = False

    __slots__ = (
        "layout", "array", "config", "verify_payloads", "metadata_only",
        "track_bytes", "codec", "slot_table", "report", "tracker",
        "cycle_index", "streams", "_next_stream_id", "_phase_counter",
        "_lost_causes", "_last_executed", "_pending_reconstructions",
        "rebuilders", "_stripe", "_plan_cache", "_plan_cache_key",
        "_all_disks_up", "_read_hook_active", "_delivery_hook_active",
        "_base_quota", "admission_limit", "redundant_fault_commands",
        "_known_lost_tracks", "_pending_shed", "_ff_tables",
        "_ff_tables_key", "_ff_flat", "_ff_flat_names",
        "_ff_deg_tables", "_ff_deg_tables_key", "_ff_deg_flat",
        "_ff_deg_flat_names", "_ff_geom", "_ff_geom_epoch",
    )

    def __init__(self, layout: DataLayout, array: DiskArray,
                 config: SchedulerConfig,
                 admission_limit: Optional[int] = None,
                 verify_payloads: bool = False,
                 metrics_tail: Optional[int] = None) -> None:
        if layout.num_disks != len(array):
            raise ConfigurationError(
                f"layout covers {layout.num_disks} disks, array has {len(array)}"
            )
        if config.params.num_disks != layout.num_disks:
            raise ConfigurationError(
                f"parameters describe D={config.params.num_disks} disks, "
                f"layout has {layout.num_disks}"
            )
        self.layout = layout
        self.array = array
        self.config = config
        self.verify_payloads = verify_payloads
        #: Metadata-only fast path: the array stores occupancy, not bytes.
        self.metadata_only = not array.store_payloads
        if verify_payloads and self.metadata_only:
            raise ConfigurationError(
                "byte-level payload verification needs a payload-storing "
                "array; build with store_payloads=True"
            )
        self.track_bytes = mb_to_bytes(array.spec.track_size_mb)
        self.codec = (MetaParityCodec(self.track_bytes) if self.metadata_only
                      else ParityCodec(self.track_bytes))
        self.slot_table = SlotTable(array, config.slots_per_disk)
        #: ``metrics_tail`` bounds the retained per-cycle reports (long
        #: steady-state runs); run-wide totals stay exact via the
        #: report's streaming reducer.
        self.report = SimulationReport(tail=metrics_tail)
        self.tracker = BufferTracker(array.spec.track_size_mb)
        self.cycle_index = 0
        self.streams: dict[int, Stream] = {}
        self._next_stream_id = 0
        self._phase_counter = 0
        #: (stream_id, track) -> why it will hiccup at delivery time.
        self._lost_causes: dict[tuple[int, int], HiccupCause] = {}
        #: Reads executed during the most recent cycle (for mid-cycle
        #: failure semantics).
        self._last_executed: list[PlannedRead] = []
        #: Reconstructions performed between cycles (mid-cycle failures
        #: masked by prefetched parity); credited to the next report.
        self._pending_reconstructions = 0
        #: Active on-line rebuilds (rebuild mode), one per failed disk.
        self.rebuilders: list["OnlineRebuilder"] = []
        #: Data blocks per parity group; group arithmetic on the hot path.
        self._stripe = config.stripe_width
        #: Cycle-plan cache: object name -> {group -> GroupPlan}, valid
        #: for one (placement epoch, array state epoch) pair.  Two-level
        #: so a single object's plans can be evicted in O(1) when the
        #: layout's delta log reports its removal (incremental refresh).
        self._plan_cache: dict[str, dict[int, GroupPlan]] = {}
        self._plan_cache_key: Optional[tuple[int, int]] = None
        #: Fast-forward read tables: object name -> flat numpy arrays of
        #: (member count, member offset, member disks, next pointer) per
        #: read position, valid for one plan-cache key.
        self._ff_tables: dict[str, tuple[np.ndarray, np.ndarray,
                                         np.ndarray, np.ndarray, int]] = {}
        self._ff_tables_key: Optional[tuple[int, int]] = None
        #: Concatenated read tables for the last fast-forward entry's
        #: object tuple; valid while the key and the tuple both hold.
        self._ff_flat: Optional[tuple[np.ndarray, np.ndarray, np.ndarray,
                                      np.ndarray, list[int], int]] = None
        self._ff_flat_names: Optional[tuple[str, ...]] = None
        #: Degraded-epoch read tables (survivors + parity fallback per
        #: read position), keyed like ``_ff_tables``: valid for one
        #: (placement epoch, array state epoch) pair, so every
        #: fail/repair/media transition re-derives them.
        self._ff_deg_tables: dict[str, tuple] = {}
        self._ff_deg_tables_key: Optional[tuple[int, int]] = None
        self._ff_deg_flat: Optional[tuple] = None
        self._ff_deg_flat_names: Optional[tuple[str, ...]] = None
        #: Per-object placement geometry (group sizes, flat member
        #: disks, parity disks, group-end pointers) as numpy arrays,
        #: keyed on the *layout* epoch only: failures move no data, so
        #: the geometry survives every fail/repair/media transition and
        #: both table builders derive their tables from it with a cheap
        #: failure overlay instead of a full per-group replan.
        self._ff_geom: dict[str, tuple[np.ndarray, np.ndarray,
                                       np.ndarray, np.ndarray,
                                       np.ndarray]] = {}
        self._ff_geom_epoch: Optional[int] = None
        #: Skips per-member failure checks while no disk is down.
        self._all_disks_up = not any(d.is_failed for d in array.disks)
        # Skip per-read/per-track hook dispatch for schemes that keep the
        # base no-op hooks (everything but Non-clustered).
        cls = type(self)
        self._read_hook_active = (
            cls._on_read_executed is not CycleScheduler._on_read_executed)
        self._delivery_hook_active = (
            cls._on_track_delivered is not CycleScheduler._on_track_delivered)
        self._base_quota = (
            cls.deliveries_per_cycle is CycleScheduler.deliveries_per_cycle)
        if admission_limit is None:
            admission_limit = self._slot_based_stream_bound()
        self.admission_limit = admission_limit
        #: Fail/repair commands that found the disk already in the target
        #: state (idempotency: injectors may double-fire).
        self.redundant_fault_commands = 0
        #: object name -> tracks currently unreconstructable (double
        #: failures); maintained by :meth:`_account_data_loss`.
        self._known_lost_tracks: dict[str, set[int]] = {}
        #: Streams shed since the last cycle report (data loss or
        #: degraded-capacity enforcement).
        self._pending_shed = 0

    def _slot_based_stream_bound(self) -> int:
        """Streams the per-disk slot budget can carry.

        Each stream needs ``k`` track reads per read cycle spread over
        ``D'`` data disks (the staggered scheme's reads amortise to one
        per cycle — Section 2's "in effect uses k = 1").  This is the
        simulator's own capacity constraint, the discrete counterpart of
        equations (8)–(11).
        """
        effective_k = (1 if self.config.scheme is Scheme.STAGGERED_GROUP
                       else self.config.k)
        d_prime = data_disk_count(self.config.params,
                                  self.config.parity_group_size,
                                  self.config.scheme)
        return max(0, int(self.config.slots_per_disk * d_prime
                          // effective_k))

    # -- scheme-specific hooks ------------------------------------------------

    @abc.abstractmethod
    def plan_reads(self, cycle: int) -> list[PlannedRead]:
        """Decide this cycle's reads; may advance stream read pointers."""

    def on_disk_failure(self, disk_id: int) -> None:
        """Scheme reaction to a failure (default: none)."""

    def on_disk_repair(self, disk_id: int) -> None:
        """Scheme reaction to a repair (default: none)."""

    def deliveries_per_cycle(self, stream: Stream) -> int:
        """Tracks a started stream must send per cycle.

        A rate-``r`` stream (an object ``r`` times the base bandwidth)
        consumes ``r`` times the cycle's delivery quantum.
        """
        return self.config.k_prime * stream.rate

    def _on_read_executed(self, stream: Stream, plan: PlannedRead,
                          payload: bytes) -> None:
        """Hook after each executed read (NC folds accumulators here)."""

    def _on_track_delivered(self, stream: Stream, track: int,
                            payload: bytes) -> None:
        """Hook after each delivered track."""

    def _handle_dropped(self, dropped: list[PlannedRead],
                        report: CycleReport) -> None:
        """Default drop policy: a dropped data read is a lost track."""
        for plan in dropped:
            if self.array[plan.disk_id].is_failed:
                raise SimulationError(
                    f"scheduler planned a read on failed disk {plan.disk_id}"
                )
            if plan.kind is ReadKind.DATA:
                self._mark_lost(plan.stream_id, plan.index,
                                HiccupCause.SLOT_OVERFLOW)

    def resolve_plans(self, plans: list[PlannedRead], report: CycleReport,
                      ) -> tuple[list[PlannedRead], list[PlannedRead]]:
        """Arbitrate slots (IB overrides this with the shift-right cascade)."""
        return self.slot_table.resolve(plans)

    # -- stream management ------------------------------------------------------

    @property
    def active_streams(self) -> list[Stream]:
        """Streams currently occupying server resources, by id."""
        return [s for s in self.streams.values() if s.is_active]

    @property
    def active_load(self) -> int:
        """Capacity units in use: the rate-weighted active stream count."""
        return sum(s.rate for s in self.active_streams)

    def _rate_of(self, obj: MediaObject) -> int:
        """The object's bandwidth as a multiple of the server's base rate.

        Only (near-)integer multiples are schedulable on a fixed cycle —
        the paper's MPEG-2-on-an-MPEG-1-server case is exactly 3x.
        """
        ratio = obj.bandwidth_mb_s / self.config.params.object_bandwidth_mb_s
        rate = round(ratio)
        if rate < 1 or abs(ratio - rate) > 1e-6:
            raise AdmissionError(
                f"object {obj.name!r} needs {ratio:.3f}x the base rate; "
                "only integer multiples are schedulable on this cycle"
            )
        return rate

    def admit(self, obj: MediaObject) -> Stream:
        """Admit a new stream for ``obj`` (AdmissionError if at capacity).

        Admission is rate-weighted: one MPEG-2 stream on an MPEG-1-cycled
        server consumes three capacity units (Section 1's "or some
        combination of the two").
        """
        return self._admit_checked(obj, self._phase_loads(),
                                   self.effective_admission_limit())

    def admit_batch(self, objects: list[MediaObject],
                    ) -> tuple[list[Stream], int]:
        """Admit one cycle's arrivals; returns ``(streams, rejected)``.

        Behaviourally identical to calling :meth:`admit` per object and
        counting :class:`AdmissionError` as a rejection, but the
        rate-weighted phase loads and the fault-aware limit are computed
        once and maintained incrementally instead of rebuilt per arrival
        — O(active + arrivals) for the whole batch.
        """
        phase_load = self._phase_loads()
        limit = self.effective_admission_limit()
        streams: list[Stream] = []
        rejected = 0
        for obj in objects:
            try:
                streams.append(self._admit_checked(obj, phase_load, limit))
            except AdmissionError:
                rejected += 1
        return streams, rejected

    def _phase_loads(self) -> list[int]:
        """Rate-weighted load per read phase over the active streams."""
        width = self.config.stripe_width
        load = [0] * width
        for stream in self.streams.values():
            if stream.is_active:
                load[stream.phase % width] += stream.rate
        return load

    def _admit_checked(self, obj: MediaObject, phase_load: list[int],
                       limit: int) -> Stream:
        """The admission decision against caller-supplied load state.

        ``phase_load`` is updated in place on success so batch callers
        can reuse it; ``sum(phase_load)`` *is* the rate-weighted active
        load, which keeps single admissions on the same arithmetic.
        """
        if not self.layout.has_object(obj.name):
            raise AdmissionError(f"object {obj.name!r} is not on disk")
        if self._known_lost_tracks.get(obj.name):
            raise AdmissionError(
                f"object {obj.name!r} has tracks lost to a multiple-disk "
                "failure; tertiary reload required"
            )
        rate = self._rate_of(obj)
        load = sum(phase_load)
        if load + rate > limit:
            raise AdmissionError(
                f"at capacity: load {load} of "
                f"{limit} units, request needs {rate}"
            )
        # Least-loaded phase, lowest index first: plain round-robin skews
        # once streams complete unevenly; balancing on the current load
        # keeps every cycle's read volume equal, which the staggered
        # capacity bound assumes.
        width = len(phase_load)
        phase = min(range(width), key=lambda p: (phase_load[p], p))
        self._phase_counter += 1
        stream = Stream(
            stream_id=self._next_stream_id,
            obj=obj,
            admitted_cycle=self.cycle_index,
            phase=phase,
            rate=rate,
        )
        self._next_stream_id += 1
        self.streams[stream.stream_id] = stream
        phase_load[phase] += rate
        return stream

    def terminate_stream(self, stream_id: int) -> None:
        """Drop a stream (degradation of service)."""
        stream = self.streams[stream_id]
        if stream.is_active:
            stream.terminate()

    def stop_stream(self, stream_id: int) -> None:
        """A viewer leaves early: free the stream's capacity and buffers.

        Unlike termination this is voluntary; the front door can admit a
        replacement in the same cycle.
        """
        stream = self.streams[stream_id]
        if stream.is_active:
            stream.stop()

    def _mark_lost(self, stream_id: int, track: int,
                   cause: HiccupCause) -> None:
        stream = self.streams[stream_id]
        stream.mark_lost(track)
        self._lost_causes.setdefault((stream_id, track), cause)

    # -- failure control ---------------------------------------------------------

    def fail_disk(self, disk_id: int, mid_cycle: bool = False) -> None:
        """Fail a disk between cycles (idempotent).

        Failing an already-failed disk is a counted no-op, so stochastic
        injectors driving the scheduler directly cannot double-fail a
        drive; an unknown disk id raises
        :class:`~repro.errors.LayoutError` loudly.

        With ``mid_cycle=True`` the failure is deemed to have struck while
        the just-finished cycle's reads were in flight: tracks fetched from
        the failed disk in that cycle are invalidated and will hiccup
        (Section 4's "if a failure occurs in the middle of a cycle ... we
        are forced to ... cause a hiccup").
        """
        if self.array[disk_id].is_failed:
            self.redundant_fault_commands += 1
            return
        self.array.fail(disk_id)
        self._invalidate_plan_cache()
        if mid_cycle:
            for plan in self._last_executed:
                if plan.disk_id != disk_id or plan.kind is not ReadKind.DATA:
                    continue
                stream = self.streams.get(plan.stream_id)
                if stream is None or not stream.is_active:
                    continue
                if stream.take_track(plan.index) is None:
                    continue
                # If the group's parity was prefetched (the "sophisticated
                # scheduler" of Section 4), the block can be rebuilt right
                # now and the hiccup avoided.
                group = plan.index // self._stripe
                if not self._try_direct_reconstruction(stream, group, None):
                    self._mark_lost(plan.stream_id, plan.index,
                                    HiccupCause.MID_CYCLE_FAILURE)
        self.on_disk_failure(disk_id)
        self._account_data_loss()
        self._enforce_degraded_capacity()

    def repair_disk(self, disk_id: int) -> None:
        """Bring a reloaded disk back online between cycles (idempotent).

        Repairing a disk that is neither failed, fail-slow, nor carrying
        media errors is a counted no-op (stochastic injectors may fire
        repairs the scheduler already handled).
        """
        disk = self.array[disk_id]
        if not disk.is_failed and disk.service_fraction >= 1.0 \
                and not disk.has_media_errors:
            self.redundant_fault_commands += 1
            return
        self.array.repair(disk_id)
        self._invalidate_plan_cache()
        self.on_disk_repair(disk_id)
        self._account_data_loss()

    def degrade_disk(self, disk_id: int, slowdown: float) -> None:
        """Put a disk into fail-slow mode between cycles.

        ``slowdown`` is the factor by which the drive's per-track service
        time inflated (>= 1); the scheduler converts it into a service
        fraction through the paper's disk model and shrinks the disk's
        per-cycle slot budget accordingly.  Capacity the degraded array no
        longer has is shed immediately instead of surfacing as
        slot-overflow hiccup storms.
        """
        from repro.faults.domain import degraded_service_fraction
        fraction = degraded_service_fraction(
            self.array.spec, self.config.cycle_length_s, slowdown)
        self.array.degrade(disk_id, fraction)
        self._invalidate_plan_cache()
        self.on_disk_degraded(disk_id)
        self._enforce_degraded_capacity()

    def restore_disk(self, disk_id: int) -> None:
        """Return a fail-slow disk to full speed (idempotent)."""
        disk = self.array[disk_id]
        if disk.service_fraction >= 1.0 and not disk.is_failed:
            self.redundant_fault_commands += 1
            return
        self.array.restore(disk_id)
        self._invalidate_plan_cache()

    def inject_media_error(self, disk_id: int, position: int,
                           transient: bool = False) -> None:
        """Plant a media error on one track position of one disk."""
        self.array[disk_id].inject_media_error(position, transient=transient)
        self._invalidate_plan_cache()

    def on_disk_degraded(self, disk_id: int) -> None:
        """Scheme reaction to a fail-slow transition (default: none)."""

    # -- data-loss accounting and degraded capacity ------------------------------

    @property
    def lost_tracks(self) -> dict[str, tuple[int, ...]]:
        """Tracks currently unreconstructable, per object (ascending)."""
        return {name: tuple(sorted(tracks))
                for name, tracks in sorted(self._known_lost_tracks.items())
                if tracks}

    def _current_lost_tracks(self) -> dict[str, set[int]]:
        """Enumerate tracks no surviving disk or parity can reproduce.

        A parity group loses data when at least two of its blocks (data
        or parity) sit on failed disks: every *data* member on a failed
        disk is then gone.  Only runs the O(objects x groups) sweep while
        two or more disks are down.
        """
        failed = self.array.failed_ids
        lost: dict[str, set[int]] = {}
        if len(failed) < 2:
            return lost
        failed_set = set(failed)
        layout = self.layout
        for obj in layout.objects:
            name = obj.name
            for group in range(layout.group_count(obj)):
                members, parity_addr = layout.group_geometry(name, group)
                missing = [offset for offset, (disk_id, _pos)
                           in enumerate(members) if disk_id in failed_set]
                if not missing:
                    continue
                if len(missing) + (parity_addr[0] in failed_set) < 2:
                    continue
                tracks = layout.group_tracks(name, group)
                lost.setdefault(name, set()).update(
                    tracks[offset] for offset in missing)
        return lost

    def _account_data_loss(self) -> None:
        """Re-derive the lost-track set; shed streams that crossed into it.

        Called after every fail/repair transition.  Newly lost tracks are
        recorded as a :class:`DataLossEvent`; streams whose *remaining*
        playback includes a lost track are shed (their hiccup storm would
        never end), while streams past the damage keep playing.  A repair
        that recovers every track records an empty recovery event.
        """
        current = self._current_lost_tracks()
        previous = self._known_lost_tracks
        newly_lost: dict[str, tuple[int, ...]] = {}
        for name, tracks in current.items():
            fresh = tracks - previous.get(name, set())
            if fresh:
                newly_lost[name] = tuple(sorted(fresh))
        self._known_lost_tracks = current
        recovered = bool(previous) and not current
        if not newly_lost and not recovered:
            return
        shed: list[int] = []
        for stream in self.active_streams:
            tracks = current.get(stream.object.name)
            if not tracks:
                continue
            if any(t >= stream.next_delivery_track for t in tracks):
                for track in tracks:
                    if track >= stream.next_delivery_track:
                        self._mark_lost(stream.stream_id, track,
                                        HiccupCause.DATA_LOSS)
                self.terminate_stream(stream.stream_id)
                shed.append(stream.stream_id)
        self._pending_shed += len(shed)
        self.report.data_loss_events.append(DataLossEvent(
            cycle=self.cycle_index,
            failed_disks=tuple(self.array.failed_ids),
            lost_tracks=newly_lost,
            shed_streams=tuple(shed),
        ))

    def _capacity_penalty(self) -> int:
        """Stream capacity consumed by the current failure set.

        Zero here: for Streaming RAID and Staggered Group the parity
        disks' reserved bandwidth absorbs any single failure per cluster,
        and multi-failure loss is handled by shedding the affected
        streams.  Improved-bandwidth and Non-clustered override this with
        their reserve/pool pressure.
        """
        return 0

    def effective_admission_limit(self) -> int:
        """The admission bound under the live fault-domain state."""
        return fault_aware_capacity(self.admission_limit, self.array,
                                    self._capacity_penalty())

    def _enforce_degraded_capacity(self) -> None:
        """Shed newest streams while the load exceeds degraded capacity.

        Shedding whole streams keeps the survivors hiccup-free; without
        it, a fail-slow or reserve-exhausted array drops reads across
        *every* stream each cycle (a slot-overflow hiccup storm).
        """
        limit = self.effective_admission_limit()
        if self.active_load <= limit:
            return
        victims = sorted(self.active_streams,
                         key=lambda s: (s.admitted_cycle, s.stream_id),
                         reverse=True)
        for stream in victims:
            if self.active_load <= limit:
                break
            self.terminate_stream(stream.stream_id)
            self._pending_shed += 1

    def start_rebuild(self, disk_id: int,
                      writes_per_cycle: Optional[int] = None,
                      ) -> "OnlineRebuilder":
        """Begin rebuilding a failed disk onto a spare (rebuild mode).

        The rebuild consumes only idle slots; the disk is repaired
        automatically when the last block lands.  Returns the
        :class:`~repro.sched.rebuild.OnlineRebuilder` for progress checks.
        """
        from repro.sched.rebuild import OnlineRebuilder
        rebuilder = OnlineRebuilder(self, disk_id,
                                    writes_per_cycle=writes_per_cycle,
                                    distributed=self.distributed_rebuild)
        self.rebuilders.append(rebuilder)
        return rebuilder

    # -- the cycle-plan cache ---------------------------------------------------

    def _invalidate_plan_cache(self) -> None:
        """Drop every memoized group plan (failure/repair/placement)."""
        self._plan_cache.clear()
        self._plan_cache_key = None
        self._ff_flat = None
        self._ff_deg_flat = None
        self._all_disks_up = not any(
            disk.is_failed for disk in self.array.disks)

    def _refresh_plan_cache(self) -> None:
        """Re-key the plan cache if the layout or array state moved on.

        The epoch pair catches *every* invalidation source — scheduler-level
        ``fail_disk``/``repair_disk``, direct ``array.fail`` calls, and
        content-manager placements — at one O(D) check per cycle.

        When only the *placement* epoch moved and the layout can replay
        the gap from its delta log, the refresh is incremental: a
        ``place`` delta invalidates nothing (plans for other objects
        never reference the appended addresses) and a ``remove`` delta
        evicts just that object's plans and read tables.  Staging churn
        — the VoD tertiary swap-in/out cycle — therefore no longer costs
        a wholesale plan rebuild per placement.  A moved array epoch or
        an expired delta window still drops everything.
        """
        key = (self.layout.epoch, self.array.state_epoch)
        old = self._plan_cache_key
        if key == old:
            return
        if old is not None and old[1] == key[1]:
            deltas = self.layout.deltas_since(old[0])
            if deltas is not None:
                bridge_ff = self._ff_tables_key == old
                bridge_deg = self._ff_deg_tables_key == old
                for delta in deltas:
                    if delta.kind != "remove":
                        continue
                    self._plan_cache.pop(delta.name, None)
                    if bridge_ff:
                        self._ff_tables.pop(delta.name, None)
                        self._ff_flat = None
                    if bridge_deg:
                        self._ff_deg_tables.pop(delta.name, None)
                        self._ff_deg_flat = None
                self._plan_cache_key = key
                if bridge_ff:
                    self._ff_tables_key = key
                if bridge_deg:
                    self._ff_deg_tables_key = key
                return
        self._plan_cache.clear()
        self._plan_cache_key = key
        self._ff_flat = None
        self._ff_deg_flat = None
        self._all_disks_up = not any(
            disk.is_failed for disk in self.array.disks)

    def _group_plan(self, name: str, group: int) -> GroupPlan:
        """The memoized read plan for one (object, group)."""
        groups = self._plan_cache.get(name)
        if groups is None:
            groups = self._plan_cache[name] = {}
        plan = groups.get(group)
        if plan is None:
            members, parity_addr = self.layout.group_geometry(name, group)
            track = group * self._stripe
            if self._all_disks_up:
                healthy = []
                for disk_id, position in members:
                    healthy.append((disk_id, position, track))
                    track += 1
                plan = GroupPlan(tuple(healthy), 0, parity_addr, track)
            else:
                disks = self.array.disks
                healthy = []
                failed = 0
                for disk_id, position in members:
                    if disks[disk_id].is_failed:
                        failed += 1
                    else:
                        healthy.append((disk_id, position, track))
                    track += 1
                parity = (None if disks[parity_addr[0]].is_failed
                          else parity_addr)
                plan = GroupPlan(tuple(healthy), failed, parity, track)
            groups[group] = plan
        return plan

    # -- the cycle engine -----------------------------------------------------------

    def run_cycle(self) -> CycleReport:
        """Simulate one full cycle; returns its report."""
        self._refresh_plan_cache()
        report = CycleReport(cycle=self.cycle_index)
        self._deliver_phase(report)
        plans = self.plan_reads(self.cycle_index)
        report.reads_planned = len(plans)
        executed, dropped = self.resolve_plans(plans, report)
        self._handle_dropped(dropped, report)
        report.reads_dropped = len(dropped)
        self._execute_reads(executed, report)
        self._reconstruct_phase(executed, report)
        self._rebuild_phase(executed, report)
        self._finalise(report)
        self.report.record(report)
        self.cycle_index += 1
        return report

    def run_cycles(self, count: int,
                   fast_forward: bool = False) -> list[CycleReport]:
        """Simulate ``count`` cycles.

        With ``fast_forward=True``, stretches of *quiescent* cycles —
        metadata-only mode, every disk up and at full speed, no
        reconstruction or rebuild activity pending — are advanced by the
        batched accounting engine (:meth:`_fast_forward`) instead of the
        full per-read machinery.  The moment a cycle cannot be proven
        quiescent (a fault lands, a slot would overflow, a hiccup is
        imminent) the engine stops at the cycle boundary and the scalar
        path takes over, so results are **bit-identical** with the flag
        on or off.
        """
        if not fast_forward:
            return [self.run_cycle() for _ in range(count)]
        reports: list[CycleReport] = []
        remaining = count
        while remaining > 0:
            remaining -= self._fast_forward(remaining, reports)
            if remaining > 0:
                reports.append(self.run_cycle())
                remaining -= 1
        return reports

    # -- quiescent-epoch fast-forward -----------------------------------------------

    def _fast_forward_ready(self) -> bool:
        """Scheme veto for the fast-forward engine (default: no veto).

        Concrete schedulers override this to rule out states their
        quiescent planner does not model (NC: degraded clusters or open
        accumulators; IB: proactive parity or mirror balancing).  A
        subclass whose read/delivery hooks do work even in the healthy
        steady state must veto here, because the batched step skips hook
        dispatch entirely.
        """
        return True

    def _ff_stream_plan(self, stream: Stream, cycle: int,
                        loads: list[int]) -> Optional[tuple[int, int]]:
        """One stream's read plan for one quiescent cycle.

        Adds the planned reads to the per-disk ``loads`` scratch and
        returns ``(new read pointer, reads planned)`` without touching
        the stream; ``None`` means the plan cannot be expressed
        quiescently and the engine must fall back to the scalar cycle
        (which reproduces the exact behaviour — including raising on a
        mid-group pointer).  The default is the Streaming-RAID /
        Improved-bandwidth whole-group walk; with every disk up no
        parity is ever planned.
        """
        new_read = stream.next_read_track
        num_tracks = stream.num_tracks
        stripe = self._stripe
        name = stream.object.name
        planned = 0
        for _ in range(stream.rate):
            if new_read >= num_tracks:
                break
            group, offset = divmod(new_read, stripe)
            if offset:
                return None  # the scalar path raises SimulationError
            entry = self._group_plan(name, group)
            for disk_id, _position, _track in entry.healthy:
                loads[disk_id] += 1
            planned += len(entry.healthy)
            new_read = entry.next_read_track
        return new_read, planned

    def _ff_classify(self) -> tuple[Optional[str], Optional[str]]:
        """Which fast-forward engine the current state allows.

        Returns ``(mode, reason)``: mode is ``"healthy"`` (the quiescent
        engines), ``"degraded"`` (the stable-failure epoch engine —
        any number of group-disjoint failed disks, optionally with
        online rebuilds in flight), or ``None`` with the diagnostic
        reason callers tally via :meth:`_ff_note`.  Checked once per
        fast-forward entry (state cannot change under the engine's feet
        — fault commands only land between ``run_cycles`` calls).
        Cheapest checks first, so permanently ineligible runs (payload
        mode) pay next to nothing per scalar cycle.
        """
        if not self.metadata_only or self.verify_payloads:
            return None, "payload-mode"
        if self._pending_reconstructions or self._pending_shed \
                or self._lost_causes:
            return None, "pending-state"
        if self._known_lost_tracks:
            # Lost tracks mean some parity group holds two or more
            # failed blocks: the degraded tables cannot express the
            # shed transition, so shared-group failure sets stay
            # scalar.  Conversely, an *empty* lost-track set under K
            # failures proves every pair of failed disks is parity-
            # group-disjoint — the geometric precondition the degraded
            # engine needs — because a shared group would have lost a
            # data track the sweep in ``_current_lost_tracks`` records.
            return None, ("shared-group"
                          if len(self.array.failed_ids) > 1
                          else "pending-state")
        for disk in self.array.disks:
            if disk.service_fraction < 1.0:
                return None, "fail-slow"
            if disk.has_media_errors:
                return None, "media-error"
        if self._all_disks_up and not self.rebuilders:
            if not self._fast_forward_ready():
                return None, "scheme-veto"
            if self._extra_buffer_tracks() != 0:
                return None, "pool-buffers"
            for stream in self.streams.values():
                if not stream.is_active:
                    continue
                if stream.parity_buffer or stream.accumulators \
                        or stream.lost_tracks:
                    return None, "stream-state"
                # The engine models the buffer as the contiguous range
                # [next_delivery, next_read); holes (lost tracks already
                # surfaced) always come with state the checks above
                # catch, so the length equality pins the exact contents.
                if len(stream.buffer) != (stream.next_read_track
                                          - stream.next_delivery_track):
                    return None, "stream-state"
            return "healthy", None
        if not self._ff_degraded_ready():
            return None, "degraded-veto"
        for stream in self.streams.values():
            if not stream.is_active:
                continue
            if stream.lost_tracks:
                return None, "stream-state"
            # Degraded steady state keeps the data buffer contiguous
            # too: reconstruction lands the failed member's track in the
            # same cycle its group is read.
            if len(stream.buffer) != (stream.next_read_track
                                      - stream.next_delivery_track):
                return None, "stream-state"
        return "degraded", None

    def _ff_note(self, reason: Optional[str]) -> None:
        """Tally why the fast path declined an entry or bailed mid-epoch.

        Event-granular: one entry per refused engine entry plus one per
        in-epoch bail.  The tally lives outside the report's rows and
        summary, so fast and scalar runs stay fingerprint-identical.
        """
        if reason is None:
            return
        tally = self.report.ff_disengagements
        tally[reason] = tally.get(reason, 0) + 1

    def _ff_eligible(self) -> bool:
        """Whether the *current* state allows a quiescent epoch at all."""
        return self._ff_classify()[0] == "healthy"

    def _fast_forward(self, limit: int, reports: list[CycleReport],
                      stop_on_completion: bool = False) -> int:
        """Advance up to ``limit`` fast-forwardable cycles.

        Each cycle is planned against scratch state first (per-disk
        loads, per-stream pointers); only a cycle proven identical to
        what the scalar engine would do — no drops, no hiccups, no
        unmodelled reconstruction — is committed: disk read counters
        advance in bulk, stream pointers move arithmetically, and a
        synthesized :class:`CycleReport` is recorded.  Stream buffers
        stay *virtual* during the epoch and are rematerialised (every
        payload is the metadata token) at the boundary, so the post-run
        state is indistinguishable from a scalar run.  Returns the
        number of cycles advanced (0 when no engine fits the state).

        Healthy states run the quiescent engines: the vectorised path
        for uniform rate-1 populations, the per-stream generic loop
        otherwise.  A stable degraded state — any number of failed
        disks in pairwise-disjoint parity groups, optionally with
        online rebuilds in flight — runs the degraded epoch engine,
        which folds reconstruction and rebuild traffic into the same
        batched accounting and bails only on state *transitions*
        (shared-group failure, rebuild completion, media error).  With
        ``stop_on_completion`` every engine also ends its epoch right
        after a cycle in which a stream completed, so drivers that
        re-admit per completed object observe scalar admission timing.
        """
        self._refresh_plan_cache()
        if limit <= 0:
            return 0
        mode, reason = self._ff_classify()
        if mode is None:
            self._ff_note(reason)
            return 0
        live = [s for s in self.streams.values() if s.is_active]
        if mode == "degraded":
            if not all(s.rate == 1 for s in live):
                self._ff_note("mixed-rates")
                return 0
            return self._fast_forward_degraded(limit, live, reports,
                                               stop_on_completion)[0]
        if live and all(s.rate == 1 for s in live):
            done = self._fast_forward_vector(limit, live, reports,
                                             stop_on_completion)
            if done >= 0:
                return done
        return self._fast_forward_generic(limit, live, reports,
                                          stop_on_completion)

    def run_epoch(self, limit: int, stop_on_completion: bool = False) -> int:
        """Advance up to ``limit`` cycles on a fast-forward engine.

        The public entry point for drivers (chaos replay, reliability
        probes) that manage their own cycle loop: cycles are recorded on
        :attr:`report` exactly as scalar cycles would be, and the return
        value says how far the engine got — 0 means the current state is
        not fast-forwardable and the caller should fall back to
        :meth:`run_cycle`.
        """
        reports: list[CycleReport] = []
        return self._fast_forward(limit, reports, stop_on_completion)

    def _fast_forward_generic(self, limit: int, live: list[Stream],
                              reports: list[CycleReport],
                              stop_on_completion: bool = False) -> int:
        """Per-stream quiescent loop: any rate mix, any scheme with an
        :meth:`_ff_stream_plan`."""
        disks = self.array.disks
        num_disks = len(disks)
        slots = self.config.slots_per_disk
        k_prime = self.config.k_prime
        base_quota = self._base_quota
        admitted_status = StreamStatus.ADMITTED
        active = terminated = 0
        for stream in self.streams.values():
            if stream.status is StreamStatus.ACTIVE:
                active += 1
            elif stream.status is StreamStatus.TERMINATED:
                terminated += 1
        loads = [0] * num_disks
        done = 0
        bail: Optional[str] = None
        while done < limit:
            cycle = self.cycle_index
            # -- plan: scratch only, so a bail leaves no trace ------------
            staged: list[tuple[Stream, int, int, int]] = []
            planned_total = 0
            quiescent = True
            for stream in live:
                start = stream.delivery_start_cycle
                if start is not None and cycle >= start:
                    quota = (k_prime * stream.rate if base_quota
                             else self.deliveries_per_cycle(stream))
                    due = min(quota, stream.num_tracks
                              - stream.next_delivery_track)
                    if due > (stream.next_read_track
                              - stream.next_delivery_track):
                        quiescent = False  # an imminent hiccup: go scalar
                        bail = "imminent-hiccup"
                        break
                else:
                    due = 0
                plan = self._ff_stream_plan(stream, cycle, loads)
                if plan is None:
                    quiescent = False
                    bail = "mid-group-pointer"
                    break
                new_read, planned = plan
                planned_total += planned
                staged.append((stream, due, new_read, planned))
            if quiescent and planned_total:
                for disk_id in range(num_disks):
                    if loads[disk_id] > slots:
                        quiescent = False  # slot overflow: scalar drops
                        bail = "slot-overflow"
                        break
            if not quiescent:
                for disk_id in range(num_disks):
                    loads[disk_id] = 0
                break
            # -- commit: pointers, counters, synthesized report -----------
            delivered_total = 0
            held: dict[int, int] = {}
            completed = False
            next_cycle = cycle + 1
            for stream, due, new_read, planned in staged:
                if due:
                    stream.next_delivery_track += due
                    stream.delivered_tracks += due
                    delivered_total += due
                    if stream.status is admitted_status:
                        stream.activate()
                        active += 1
                if planned and stream.delivery_start_cycle is None:
                    stream.delivery_start_cycle = next_cycle
                stream.next_read_track = new_read
                if stream.next_delivery_track >= stream.num_tracks:
                    stream.complete()
                    active -= 1
                    completed = True
                else:
                    held[stream.stream_id] = (stream.next_read_track
                                              - stream.next_delivery_track)
            for disk_id in range(num_disks):
                planned = loads[disk_id]
                if planned:
                    disks[disk_id].reads += planned
                    loads[disk_id] = 0
            report = CycleReport(cycle=cycle)
            report.reads_planned = planned_total
            report.reads_executed = planned_total
            report.tracks_delivered = delivered_total
            report.streams_active = active
            report.streams_terminated = terminated
            report.buffered_tracks = self.tracker.sample_counts(held)
            reports.append(report)
            self.report.record(report)
            self.cycle_index = next_cycle
            done += 1
            if completed:
                live = [s for s in live if s.is_active]
                if stop_on_completion:
                    bail = "stream-completed"
                    break
        if done:
            # Rematerialise the virtual buffers at the epoch boundary.
            for stream in live:
                stream.buffer = dict.fromkeys(
                    range(stream.next_delivery_track,
                          stream.next_read_track), META_PAYLOAD)
            self.report.ff_engaged_cycles += done
        self._ff_note(bail)
        return done

    def _ff_gate_params(self, stream: Stream) -> tuple[int, int, int, int]:
        """Static read-gate parameters for the vector engine.

        ``(pace_rate, pace_base, phase_mod, phase_val)``: in cycle ``c``
        the stream reads only if ``c % phase_mod == phase_val`` and (when
        ``pace_rate`` is non-zero) its read pointer is below
        ``(c + 1 - pace_base) * pace_rate``.  The base schemes read every
        cycle, unpaced; SG gates on the stream's phase, NC paces on the
        delivery schedule.
        """
        return 0, 0, 1, 0

    def _ff_object_geometry(self, obj: MediaObject,
                            ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                       np.ndarray, np.ndarray]:
        """Flat placement geometry for one object, as numpy arrays.

        ``(cnt, ptr, disks, parity, nxt)``: per group the data-member
        count, the member offset (``disks[ptr[g]:ptr[g+1]]`` are the
        group's data disks in track order), the parity disk, and the
        group-end read pointer.  Keyed on the layout epoch alone —
        failures move no data — so fail/repair/media transitions reuse
        it and only re-derive the cheap failure overlay on top.
        """
        epoch = self.layout.epoch
        if self._ff_geom_epoch != epoch:
            self._ff_geom = {}
            self._ff_geom_epoch = epoch
        entry = self._ff_geom.get(obj.name)
        if entry is None:
            stripe = self._stripe
            positions = -(-obj.num_tracks // stripe)
            geometry = self.layout.group_geometry
            name = obj.name
            sizes: list[int] = []
            flat: list[int] = []
            parity_ids: list[int] = []
            for position in range(positions):
                members, parity_addr = geometry(name, position)
                sizes.append(len(members))
                flat.extend(disk_id for disk_id, _pos in members)
                parity_ids.append(parity_addr[0])
            cnt = np.asarray(sizes, dtype=np.int64)
            ptr = np.zeros(positions + 1, dtype=np.int64)
            np.cumsum(cnt, out=ptr[1:])
            disks = np.asarray(flat, dtype=np.int64)
            parity = np.asarray(parity_ids, dtype=np.int64)
            entry = (cnt, ptr, disks, parity, ptr[1:])
            self._ff_geom[obj.name] = entry
        return entry

    def _ff_read_table(self, obj: MediaObject,
                       ) -> Optional[tuple[np.ndarray, np.ndarray,
                                           np.ndarray, np.ndarray, int]]:
        """Per-object read table for the vector engine, or None.

        ``(cnt, ptr, disks, next_pointers, divisor)``: a stream whose
        read pointer is ``p`` (with ``p % divisor == 0`` for
        group-at-a-time schemes) performs one read on each disk in
        ``disks[ptr[q]:ptr[q] + cnt[q]]`` for ``q = p // divisor`` and
        its pointer becomes ``next_pointers[q]``.  The base table is the
        healthy group walk straight from the cached geometry (failed
        members dropped by overlay); NC overrides with a
        one-track-per-position table.
        """
        cnt, ptr, disks, _parity, nxt = self._ff_object_geometry(obj)
        if not self._all_disks_up:
            failed = self.array.failed_ids
            down = (disks == failed[0] if len(failed) == 1
                    else np.isin(disks, np.asarray(failed, dtype=np.int64)))
            if bool(down.any()):
                fcnt = np.add.reduceat(down.astype(np.int64), ptr[:-1])
                cnt = cnt - fcnt
                disks = disks[~down]
                ptr = np.zeros(len(cnt) + 1, dtype=np.int64)
                np.cumsum(cnt, out=ptr[1:])
        return cnt, ptr, disks, nxt, self._stripe

    def _ff_flat_tables(self, objects: list[MediaObject],
                        ) -> Optional[tuple[np.ndarray, np.ndarray,
                                            np.ndarray, np.ndarray,
                                            list[int], int]]:
        """Concatenated read tables for a set of objects.

        Returns ``(counts, offsets, member_disks, next_pointers,
        per-object position bases, divisor)`` with per-object tables
        cached against the plan-cache key, or None when any object lacks
        a table.  The concatenated result itself is memoized against the
        object tuple, so a churn epoch re-entering with the same working
        set pays nothing.
        """
        if self._ff_tables_key != self._plan_cache_key:
            self._ff_tables = {}
            self._ff_tables_key = self._plan_cache_key
            self._ff_flat = None
            self._ff_flat_names = None
        names = tuple(obj.name for obj in objects)
        if self._ff_flat is not None and self._ff_flat_names == names:
            return self._ff_flat
        cache = self._ff_tables
        per_obj = []
        for obj in objects:
            entry = cache.get(obj.name)
            if entry is None:
                entry = self._ff_read_table(obj)
                if entry is None:
                    return None
                cache[obj.name] = entry
            per_obj.append(entry)
        divisor = per_obj[0][4]
        pos_base: list[int] = []
        base = 0
        for cnt, _ptr, _disks, _nxt, _div in per_obj:
            pos_base.append(base)
            base += len(cnt)
        counts = np.concatenate([e[0] for e in per_obj])
        offsets = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        member_disks = np.concatenate([e[2] for e in per_obj])
        next_pointers = np.concatenate([e[3] for e in per_obj])
        flat = (counts, offsets, member_disks, next_pointers, pos_base,
                divisor)
        self._ff_flat = flat
        self._ff_flat_names = names
        return flat

    def _fast_forward_vector(self, limit: int, live: list[Stream],
                             reports: list[CycleReport],
                             stop_on_completion: bool = False) -> int:
        """Vectorised quiescent engine for uniform rate-1 streams.

        Stream state lives in numpy arrays for the whole epoch; each
        cycle is a handful of whole-array operations (delivery quotas,
        read-table gathers, a bincount for per-disk loads) with the same
        stage-then-commit bail points as the generic loop.  Python-side
        stream/disk/tracker objects are written back once, at the epoch
        boundary.  Returns -1 when a scheme provides no read table (the
        caller then runs the generic loop).
        """
        distinct: dict[str, int] = {}
        objects: list[MediaObject] = []
        for stream in live:
            name = stream.object.name
            if name not in distinct:
                distinct[name] = len(objects)
                objects.append(stream.object)
        flat = self._ff_flat_tables(objects)
        if flat is None:
            return -1
        counts, offsets, member_disks, next_pointers, pos_base, divisor = \
            flat
        n = len(live)
        num_disks = len(self.array.disks)
        slots = self.config.slots_per_disk
        k_prime = self.config.k_prime
        base_quota = self._base_quota
        obj_base = np.fromiter(
            (pos_base[distinct[s.object.name]] for s in live),
            dtype=np.int64, count=n)
        next_read = np.fromiter((s.next_read_track for s in live),
                                dtype=np.int64, count=n)
        next_del = np.fromiter((s.next_delivery_track for s in live),
                               dtype=np.int64, count=n)
        num_tracks = np.fromiter((s.num_tracks for s in live),
                                 dtype=np.int64, count=n)
        start = np.fromiter(
            (-1 if s.delivery_start_cycle is None
             else s.delivery_start_cycle for s in live),
            dtype=np.int64, count=n)
        quota = np.fromiter(
            (k_prime * s.rate if base_quota
             else self.deliveries_per_cycle(s) for s in live),
            dtype=np.int64, count=n)
        gates = [self._ff_gate_params(s) for s in live]
        pace_rate = np.fromiter((g[0] for g in gates), dtype=np.int64,
                                count=n)
        pace_base = np.fromiter((g[1] for g in gates), dtype=np.int64,
                                count=n)
        phase_mod = np.fromiter((g[2] for g in gates), dtype=np.int64,
                                count=n)
        phase_val = np.fromiter((g[3] for g in gates), dtype=np.int64,
                                count=n)
        unpaced = pace_rate == 0
        ungated = bool((phase_mod == 1).all())
        admitted = np.fromiter(
            (s.status is StreamStatus.ADMITTED for s in live),
            dtype=bool, count=n)
        live_mask = np.ones(n, dtype=bool)
        deliv_delta = np.zeros(n, dtype=np.int64)
        tracker = self.tracker
        peak0 = np.fromiter(
            (tracker.stream_peak(s.stream_id) for s in live),
            dtype=np.int64, count=n)
        peak = peak0.copy()
        total_loads = np.zeros(num_disks, dtype=np.int64)
        active = terminated = 0
        for stream in self.streams.values():
            if stream.status is StreamStatus.ACTIVE:
                active += 1
            elif stream.status is StreamStatus.TERMINATED:
                terminated += 1
        samples: list[int] = []
        done = 0
        bail: Optional[str] = None
        while done < limit:
            cycle = self.cycle_index
            # -- stage (no mutation yet, so a bail leaves no trace) -------
            started = live_mask & (start >= 0) & (start <= cycle)
            due = np.where(started,
                           np.minimum(quota, num_tracks - next_del), 0)
            if bool((due > next_read - next_del).any()):
                bail = "imminent-hiccup"  # go scalar
                break
            reading = live_mask & (next_read < num_tracks)
            if not ungated:
                reading &= (cycle % phase_mod) == phase_val
            reading &= unpaced | (next_read
                                  < (cycle + 1 - pace_base) * pace_rate)
            if divisor > 1 \
                    and bool((reading & (next_read % divisor != 0)).any()):
                bail = "mid-group-pointer"  # the scalar path raises
                break
            idx = np.where(reading, obj_base + next_read // divisor, 0)
            cnt = np.where(reading, counts[idx], 0)
            planned_total = int(cnt.sum())
            if planned_total:
                r_idx = idx[reading]
                r_cnt = counts[r_idx]
                ends = np.cumsum(r_cnt)
                within = np.arange(planned_total) \
                    - np.repeat(ends - r_cnt, r_cnt)
                disk_ids = member_disks[np.repeat(offsets[r_idx], r_cnt)
                                        + within]
                loads = np.bincount(disk_ids, minlength=num_disks)
                if int(loads.max(initial=0)) > slots:
                    bail = "slot-overflow"  # scalar drops / cascades
                    break
                total_loads += loads
            # -- commit ---------------------------------------------------
            newly = admitted & (due > 0)
            if bool(newly.any()):
                active += int(newly.sum())
                admitted &= ~newly
            first_read = (start < 0) & (cnt > 0)
            if bool(first_read.any()):
                start[first_read] = cycle + 1
            next_del += due
            deliv_delta += due
            next_read = np.where(reading, next_pointers[idx], next_read)
            finished = live_mask & (next_del >= num_tracks)
            finished_any = bool(finished.any())
            if finished_any:
                active -= int(finished.sum())
                live_mask &= ~finished
            held = np.where(live_mask, next_read - next_del, 0)
            np.maximum(peak, held, out=peak)
            buffered = int(held.sum())
            samples.append(buffered)
            report = CycleReport(cycle=cycle)
            report.reads_planned = planned_total
            report.reads_executed = planned_total
            report.tracks_delivered = int(due.sum())
            report.streams_active = active
            report.streams_terminated = terminated
            report.buffered_tracks = buffered
            reports.append(report)
            self.report.record(report)
            self.cycle_index = cycle + 1
            done += 1
            if stop_on_completion and finished_any:
                bail = "stream-completed"
                break
        if done:
            # -- write the epoch's state back to the Python objects -------
            for i, stream in enumerate(live):
                stream.next_read_track = int(next_read[i])
                stream.next_delivery_track = int(next_del[i])
                stream.delivered_tracks += int(deliv_delta[i])
                if stream.delivery_start_cycle is None and start[i] >= 0:
                    stream.delivery_start_cycle = int(start[i])
                if stream.status is StreamStatus.ADMITTED \
                        and not admitted[i]:
                    stream.activate()
                if live_mask[i]:
                    stream.buffer = dict.fromkeys(
                        range(stream.next_delivery_track,
                              stream.next_read_track), META_PAYLOAD)
                else:
                    stream.complete()
            raised = np.nonzero(peak > peak0)[0]
            tracker.fold_epoch(
                samples,
                {live[int(i)].stream_id: int(peak[int(i)]) for i in raised})
            disks = self.array.disks
            for disk_id in np.nonzero(total_loads)[0]:
                disks[int(disk_id)].reads += int(total_loads[disk_id])
            self.report.ff_engaged_cycles += done
        self._ff_note(bail)
        return done

    # -- degraded-epoch fast-forward --------------------------------------------------

    def _ff_degraded_ready(self) -> bool:
        """Scheme veto for the degraded-epoch engine.

        Defaults to the quiescent veto (:meth:`_fast_forward_ready`): a
        scheme whose healthy steady state the engine cannot model
        certainly cannot be modelled degraded.  Non-clustered overrides
        this — its quiescent veto fires on any degraded cluster, but the
        degraded engine models exactly that state, open accumulators
        included.
        """
        return self._fast_forward_ready()

    def _ff_degraded_stream_ok(self, stream: Stream) -> bool:
        """Per-stream canonical-state check at degraded-engine entry.

        The group schemes never hold accumulators, so any accumulator is
        leftover transition state: the stream stays on the scalar path
        until its buffers return to the canonical degraded shape (at
        most one group's worth of cycles).
        """
        return not stream.accumulators

    def _ff_degraded_sync_stream(self, stream: Stream) -> None:
        """Rematerialise scheme-specific stream state at epoch exit."""

    def _ff_degraded_credit(self, reconstructions: int) -> None:
        """Fold an epoch's reconstruction count into scheme counters."""

    def _ff_degraded_pool_tracks(self, open_accumulators: int) -> int:
        """Pool tracks held outside streams for ``open_accumulators``."""
        return 0

    def _ff_degraded_read_table(self, obj: MediaObject,
                                failed: list[int]) -> Optional[tuple]:
        """Per-object read table under the current failure set.

        Mirrors :meth:`_ff_read_table` with the degraded columns the
        epoch engine needs: ``(cnt, ptr, disks, next_pointers,
        data_counts, parity_flags, valid, deg_pairs, acc_info,
        divisor)`` where a degraded position's member slice includes the
        parity-fallback disk, *parity_flags* marks positions whose read
        carries one parity fetch **and** one same-cycle reconstruction,
        and *valid* is False where the scalar planner cannot recover the
        position (the engine bails before touching it).  ``deg_pairs``
        are the ``(group, acquired-at-pointer)`` pairs that predict a
        stream's parity buffer; ``acc_info`` the accumulator
        open-windows (empty for group-at-a-time schemes).  ``None``
        means the scheme has no vectorisable degraded plan.

        Built as a failure overlay on the cached geometry: only groups
        that actually lost a member are re-derived in Python, so a
        single failure in a large farm touches a handful of groups and
        every other object's table is a zero-copy view of its geometry.
        """
        cnt, ptr, disks, parity, nxt = self._ff_object_geometry(obj)
        positions = len(cnt)
        if len(failed) == 1:
            down = disks == failed[0]
            parity_down = parity == failed[0]
        else:
            failed_arr = np.asarray(failed, dtype=np.int64)
            down = np.isin(disks, failed_arr)
            parity_down = np.isin(parity, failed_arr)
        if not bool(down.any()):
            # No data member down (a failed parity disk never appears
            # in a healthy group read): the healthy walk verbatim.
            return (cnt, ptr, disks, nxt, cnt,
                    np.zeros(positions, dtype=np.int64),
                    np.ones(positions, dtype=bool), (), {}, self._stripe)
        fcnt = np.add.reduceat(down.astype(np.int64), ptr[:-1])
        recoverable = (fcnt == 1) & ~parity_down
        dat = cnt - fcnt
        par = np.zeros(positions, dtype=np.int64)
        val = np.ones(positions, dtype=bool)
        new_cnt = dat.copy()
        keep = ~down
        deg_pairs: list[tuple[int, int]] = []
        segments: list[np.ndarray] = []
        prev = 0
        for group in np.nonzero(fcnt > 0)[0]:
            lo, hi = int(ptr[group]), int(ptr[group + 1])
            if prev < lo:
                segments.append(disks[prev:lo])
            survivors = disks[lo:hi][keep[lo:hi]]
            if recoverable[group]:
                segments.append(np.append(survivors, parity[group]))
                new_cnt[group] += 1
                par[group] = 1
                deg_pairs.append((int(group), int(nxt[group])))
            else:
                # Unreconstructable group: the scalar path sheds the
                # stream here (data loss) — a state transition the
                # engine must never cross.
                segments.append(survivors)
                val[group] = False
            prev = hi
        if prev < len(disks):
            segments.append(disks[prev:])
        new_disks = np.concatenate(segments)
        new_ptr = np.zeros(positions + 1, dtype=np.int64)
        np.cumsum(new_cnt, out=new_ptr[1:])
        return (new_cnt, new_ptr, new_disks, nxt, dat, par, val,
                tuple(deg_pairs), {}, self._stripe)

    def _ff_degraded_flat_tables(self, objects: list[MediaObject],
                                 ) -> Optional[tuple]:
        """Concatenated degraded read tables for a set of objects.

        The degraded counterpart of :meth:`_ff_flat_tables`: per-object
        tables (including the pointer-indexed parity-held / released /
        accumulator-window prefix sums the engine uses to reproduce
        ``buffered_track_count`` arithmetically) are cached against the
        plan-cache key, so every fail/repair/media transition re-derives
        them; the concatenation is memoized against the object tuple.
        """
        if self._ff_deg_tables_key != self._plan_cache_key:
            self._ff_deg_tables = {}
            self._ff_deg_tables_key = self._plan_cache_key
            self._ff_deg_flat = None
            self._ff_deg_flat_names = None
        names = tuple(obj.name for obj in objects)
        if self._ff_deg_flat is not None \
                and self._ff_deg_flat_names == names:
            return self._ff_deg_flat
        cache = self._ff_deg_tables
        stripe = self._stripe
        failed = self.array.failed_ids
        per_obj = []
        for obj in objects:
            entry = cache.get(obj.name)
            if entry is None:
                raw = self._ff_degraded_read_table(obj, failed)
                if raw is None:
                    return None
                (cnt, ptr, disks, nxt, dat, par, val,
                 deg_pairs, acc_info, divisor) = raw
                # Pointer-indexed prefix sums: with read pointer ``r``
                # and delivery pointer ``d``, a canonical stream holds
                # ``pheld[r] - prel[d]`` parity blocks and ``acch[r]``
                # open accumulators (acquired at the group's end
                # pointer, released once delivery passes the group).
                tracks = obj.num_tracks
                diff_held = np.zeros(tracks + 2, dtype=np.int64)
                diff_rel = np.zeros(tracks + 2, dtype=np.int64)
                for group, acquired in deg_pairs:
                    diff_held[acquired] += 1
                    released = (group + 1) * stripe
                    if released <= tracks:
                        diff_rel[released] += 1
                pheld = np.cumsum(diff_held)[:tracks + 1]
                prel = np.cumsum(diff_rel)[:tracks + 1]
                acch = np.zeros(tracks + 1, dtype=np.int64)
                for lo, hi in acc_info.values():
                    acch[lo:hi + 1] += 1
                entry = (cnt, ptr, disks, nxt, dat, par, val,
                         pheld, prel, acch, deg_pairs, acc_info, divisor)
                cache[obj.name] = entry
            per_obj.append(entry)
        divisor = per_obj[0][12]
        pos_base: list[int] = []
        ptr_base: list[int] = []
        position_total = pointer_total = 0
        for entry in per_obj:
            pos_base.append(position_total)
            position_total += len(entry[0])
            ptr_base.append(pointer_total)
            pointer_total += len(entry[7])
        counts = np.concatenate([e[0] for e in per_obj])
        offsets = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        member_disks = np.concatenate([e[2] for e in per_obj])
        next_pointers = np.concatenate([e[3] for e in per_obj])
        data_counts = np.concatenate([e[4] for e in per_obj])
        parity_flags = np.concatenate([e[5] for e in per_obj])
        valid = np.concatenate([e[6] for e in per_obj])
        pheld = np.concatenate([e[7] for e in per_obj])
        prel = np.concatenate([e[8] for e in per_obj])
        acch = np.concatenate([e[9] for e in per_obj])
        deg_by_name = {name: per_obj[i][10] for i, name in enumerate(names)}
        flat = (counts, offsets, member_disks, next_pointers, data_counts,
                parity_flags, valid, pheld, prel, acch, pos_base, ptr_base,
                deg_by_name, divisor)
        self._ff_deg_flat = flat
        self._ff_deg_flat_names = names
        return flat

    def _fast_forward_degraded(
            self, limit: int, live: list[Stream],
            reports: list[CycleReport],
            stop_on_completion: bool = False,
            arrivals: Optional[dict[int, tuple[MediaObject, ...]]] = None,
    ) -> tuple[int, int, int, bool]:
        """Vectorised epoch engine for stable degraded states, with churn.

        Handles any number of failed disks whose parity groups are
        pairwise disjoint (:meth:`_ff_classify` proves disjointness via
        the empty lost-track set): per-group reconstruction reads appear
        as extra rows in the flat read tables (the parity-fallback disk
        joins the group's member list), reconstruction commits are pure
        arithmetic (a degraded group read always completes its rebuild
        in the same cycle, since every survivor is resident by
        construction), and every in-flight online rebuild advances as a
        vectorised cursor fed with the cycle's idle slots — in scalar
        rebuilder order, sharing one idle budget, exactly like
        :meth:`_rebuild_phase`.

        With ``arrivals``, each arrival cycle admits its batch through
        the *same* :meth:`_admit_checked` decision the scalar front
        door uses — including degraded-capacity enforcement, since
        :meth:`effective_admission_limit` is constant for the epoch
        (every ``_capacity_penalty`` override is a pure function of
        array/layout/degraded-cluster state, which only changes on the
        transitions the engine bails on) — and accepted streams join
        the row arrays in place at read pointer 0, which is trivially
        canonical (no parity held, no open accumulators).

        The engine bails only on state transitions: a rebuild that
        could complete, a stream crossing an unreconstructable
        position, or the generic quiescence breaks (imminent hiccup,
        slot overflow).  Cycle reports, disk loads, tracker samples and
        per-stream peaks are bit-identical to the scalar path.

        Returns ``(cycles done, admitted, rejected, consumed)`` where
        ``consumed`` means the *current* cycle's arrivals were already
        admitted before a bail, so the scalar fallback must not
        re-admit them.
        """
        rows = list(live)
        distinct: dict[str, int] = {}
        objects: list[MediaObject] = []
        for stream in rows:
            name = stream.object.name
            if name not in distinct:
                distinct[name] = len(objects)
                objects.append(stream.object)
        start_cycle = self.cycle_index
        end_cycle = start_cycle + limit
        stop_cycle = end_cycle
        cap = len(rows)
        if arrivals:
            # Working set: live objects plus every placed rate-1 arrival
            # in the window.  A placed arrival whose rate is not 1
            # cannot join the uniform row engine: the epoch must end
            # *before* its cycle.
            for cycle, batch in arrivals.items():
                if not start_cycle <= cycle < end_cycle:
                    continue
                for obj in batch:
                    if not self.layout.has_object(obj.name):
                        continue  # _admit_checked rejects it in-engine
                    try:
                        rate = self._rate_of(obj)
                    except AdmissionError:
                        continue  # ditto
                    if rate != 1:
                        stop_cycle = min(stop_cycle, cycle)
                        break
                    cap += 1
                    if obj.name not in distinct:
                        distinct[obj.name] = len(objects)
                        objects.append(obj)
            if stop_cycle <= start_cycle:
                return 0, 0, 0, False
        if objects:
            flat = self._ff_degraded_flat_tables(objects)
            if flat is None:
                self._ff_note("no-read-table")
                return 0, 0, 0, False
        else:
            zeros = np.zeros(0, dtype=np.int64)
            flat = (zeros, np.zeros(1, dtype=np.int64), zeros, zeros,
                    zeros, zeros, np.zeros(0, dtype=bool), zeros, zeros,
                    zeros, [], [], {}, 1)
        (counts, offsets, member_disks, next_pointers, data_counts,
         parity_flags, valid, pheld, prel, acch, pos_base, ptr_base,
         deg_by_name, divisor) = flat
        stripe = self._stripe
        # -- canonical-state entry checks: every stream must sit exactly
        #    where the scalar degraded steady state would leave it ------
        for stream in rows:
            pairs = deg_by_name[stream.object.name]
            pointer = stream.next_read_track
            floor = stream.next_delivery_track // stripe
            predicted = [g for g, acquired in pairs
                         if acquired <= pointer and g >= floor]
            if sorted(stream.parity_buffer) != predicted:
                self._ff_note("stream-state")
                return 0, 0, 0, False
            if not self._ff_degraded_stream_ok(stream):
                self._ff_note("stream-state")
                return 0, 0, 0, False
        rebuilders = list(self.rebuilders)
        for rebuilder in rebuilders:
            if rebuilder.prepare_fast_plan() is None:
                self._ff_note("rebuild-veto")
                return 0, 0, 0, False
        n = len(rows)
        num_disks = len(self.array.disks)
        slots = self.config.slots_per_disk
        k_prime = self.config.k_prime
        base_quota = self._base_quota
        tracker = self.tracker
        phase_load = self._phase_loads()
        width = len(phase_load)
        limit_units = self.effective_admission_limit()
        # Row arrays over the window's worst-case population; rows past
        # the current count are neutral (not live, not reading).
        obj_base = np.zeros(cap, dtype=np.int64)
        held_base = np.zeros(cap, dtype=np.int64)
        next_read = np.zeros(cap, dtype=np.int64)
        next_del = np.zeros(cap, dtype=np.int64)
        num_tracks = np.zeros(cap, dtype=np.int64)
        start = np.full(cap, -1, dtype=np.int64)
        quota = np.zeros(cap, dtype=np.int64)
        pace_rate = np.zeros(cap, dtype=np.int64)
        pace_base = np.zeros(cap, dtype=np.int64)
        phase_mod = np.ones(cap, dtype=np.int64)
        phase_val = np.zeros(cap, dtype=np.int64)
        unpaced = np.ones(cap, dtype=bool)
        admitted_mask = np.zeros(cap, dtype=bool)
        live_mask = np.zeros(cap, dtype=bool)
        deliv_delta = np.zeros(cap, dtype=np.int64)
        recon_delta = np.zeros(cap, dtype=np.int64)
        peak0 = np.zeros(cap, dtype=np.int64)
        obj_base[:n] = np.fromiter(
            (pos_base[distinct[s.object.name]] for s in rows),
            dtype=np.int64, count=n)
        held_base[:n] = np.fromiter(
            (ptr_base[distinct[s.object.name]] for s in rows),
            dtype=np.int64, count=n)
        next_read[:n] = np.fromiter((s.next_read_track for s in rows),
                                    dtype=np.int64, count=n)
        next_del[:n] = np.fromiter((s.next_delivery_track for s in rows),
                                   dtype=np.int64, count=n)
        num_tracks[:n] = np.fromiter((s.num_tracks for s in rows),
                                     dtype=np.int64, count=n)
        start[:n] = np.fromiter(
            (-1 if s.delivery_start_cycle is None
             else s.delivery_start_cycle for s in rows),
            dtype=np.int64, count=n)
        quota[:n] = np.fromiter(
            (k_prime * s.rate if base_quota
             else self.deliveries_per_cycle(s) for s in rows),
            dtype=np.int64, count=n)
        gates = [self._ff_gate_params(s) for s in rows]
        pace_rate[:n] = np.fromiter((g[0] for g in gates), dtype=np.int64,
                                    count=n)
        pace_base[:n] = np.fromiter((g[1] for g in gates), dtype=np.int64,
                                    count=n)
        phase_mod[:n] = np.fromiter((g[2] for g in gates), dtype=np.int64,
                                    count=n)
        phase_val[:n] = np.fromiter((g[3] for g in gates), dtype=np.int64,
                                    count=n)
        unpaced[:n] = pace_rate[:n] == 0
        ungated = bool((phase_mod == 1).all())
        admitted_mask[:n] = np.fromiter(
            (s.status is StreamStatus.ADMITTED for s in rows),
            dtype=bool, count=n)
        live_mask[:n] = True
        peak0[:n] = np.fromiter(
            (tracker.stream_peak(s.stream_id) for s in rows),
            dtype=np.int64, count=n)
        peak = peak0.copy()
        total_loads = np.zeros(num_disks, dtype=np.int64)
        failed_ids = np.asarray(self.array.failed_ids, dtype=np.int64)
        # The shared pool must hold exactly the open accumulators' pages
        # (anything else is unmodelled transition state).
        entry_open = int(np.where(live_mask, acch[held_base + next_read],
                                  0).sum()) if cap else 0
        if self._ff_degraded_pool_tracks(entry_open) \
                != self._extra_buffer_tracks():
            self._ff_note("pool-buffers")
            return 0, 0, 0, False
        active = terminated = 0
        for stream in self.streams.values():
            if stream.status is StreamStatus.ACTIVE:
                active += 1
            elif stream.status is StreamStatus.TERMINATED:
                terminated += 1
        samples: list[int] = []
        done = 0
        admitted_n = rejected_n = 0
        consumed = False
        bail: Optional[str] = None
        while done < limit and self.cycle_index < stop_cycle:
            cycle = self.cycle_index
            if any(rb.total_blocks - rb.blocks_rebuilt
                   <= rb.writes_per_cycle for rb in rebuilders):
                # A rebuild could finish this cycle.  Completion is a
                # state transition with in-cycle side effects the engine
                # does not model (repair_disk releases pool leases and
                # clears scheme degraded state *before* the cycle's
                # buffer sample) — hand the tail to the scalar path
                # before this cycle's batch is admitted.
                bail = "rebuild-complete"
                break
            # -- admit this cycle's batch through the scalar decision -----
            batch = arrivals.get(cycle) if arrivals else None
            if batch:
                consumed = True
                for obj in batch:
                    try:
                        stream = self._admit_checked(obj, phase_load,
                                                     limit_units)
                    except AdmissionError:
                        rejected_n += 1
                        continue
                    admitted_n += 1
                    i = len(rows)
                    rows.append(stream)
                    obj_base[i] = pos_base[distinct[obj.name]]
                    held_base[i] = ptr_base[distinct[obj.name]]
                    num_tracks[i] = stream.num_tracks
                    quota[i] = (k_prime * stream.rate if base_quota
                                else self.deliveries_per_cycle(stream))
                    gate = self._ff_gate_params(stream)
                    pace_rate[i], pace_base[i] = gate[0], gate[1]
                    phase_mod[i], phase_val[i] = gate[2], gate[3]
                    unpaced[i] = gate[0] == 0
                    if gate[2] != 1:
                        ungated = False
                    admitted_mask[i] = True
                    live_mask[i] = True
                    peak0[i] = tracker.stream_peak(stream.stream_id)
                    peak[i] = peak0[i]
            # -- stage (no mutation yet, so a bail leaves no trace) -------
            started = live_mask & (start >= 0) & (start <= cycle)
            due = np.where(started,
                           np.minimum(quota, num_tracks - next_del), 0)
            if bool((due > next_read - next_del).any()):
                bail = "imminent-hiccup"
                break
            reading = live_mask & (next_read < num_tracks)
            if not ungated:
                reading &= (cycle % phase_mod) == phase_val
            reading &= unpaced | (next_read
                                  < (cycle + 1 - pace_base) * pace_rate)
            if divisor > 1 \
                    and bool((reading & (next_read % divisor != 0)).any()):
                bail = "mid-group-pointer"
                break
            idx = np.where(reading, obj_base + next_read // divisor, 0)
            if bool((reading & ~valid[idx]).any()):
                bail = "unrecoverable-group"  # scalar sheds: transition
                break
            cnt = np.where(reading, counts[idx], 0)
            planned_total = int(cnt.sum())
            loads = None
            if planned_total:
                r_idx = idx[reading]
                r_cnt = counts[r_idx]
                ends = np.cumsum(r_cnt)
                within = np.arange(planned_total) \
                    - np.repeat(ends - r_cnt, r_cnt)
                disk_ids = member_disks[np.repeat(offsets[r_idx], r_cnt)
                                        + within]
                loads = np.bincount(disk_ids, minlength=num_disks)
                if int(loads.max(initial=0)) > slots:
                    bail = "slot-overflow"
                    break
                total_loads += loads
            recon_vec = np.where(reading, parity_flags[idx], 0)
            parity_cycle = int(recon_vec.sum())
            # -- commit ---------------------------------------------------
            recon_delta += recon_vec
            newly = admitted_mask & (due > 0)
            if bool(newly.any()):
                active += int(newly.sum())
                admitted_mask &= ~newly
            # Parity fetches never start the delivery clock: only a
            # cycle with at least one *data* read does.
            first_read = (start < 0) \
                & (np.where(reading, data_counts[idx], 0) > 0)
            if bool(first_read.any()):
                start[first_read] = cycle + 1
            next_del += due
            deliv_delta += due
            next_read = np.where(reading, next_pointers[idx], next_read)
            finished = live_mask & (next_del >= num_tracks)
            finished_any = bool(finished.any())
            if finished_any:
                active -= int(finished.sum())
                live_mask &= ~finished
                # Completed rows free their capacity for later batches.
                for i in np.nonzero(finished)[0]:
                    row = rows[int(i)]
                    phase_load[row.phase % width] -= row.rate
            # -- rebuild: lowest priority, idle slots only ----------------
            blocks = 0
            if rebuilders:
                idle = np.full(num_disks, slots, dtype=np.int64)
                if loads is not None:
                    idle -= loads
                idle[failed_ids] = 0
                for rebuilder in rebuilders:
                    blocks += rebuilder.fast_step(idle, total_loads)
            pointer_idx = held_base + next_read
            acc_open = np.where(live_mask, acch[pointer_idx], 0)
            held = np.where(live_mask,
                            next_read - next_del + pheld[pointer_idx]
                            - prel[held_base + next_del] + acc_open, 0)
            np.maximum(peak, held, out=peak)
            pool_now = self._ff_degraded_pool_tracks(int(acc_open.sum()))
            buffered = int(held.sum()) + pool_now
            samples.append(buffered)
            report = CycleReport(cycle=cycle)
            report.reads_planned = planned_total
            report.reads_executed = planned_total
            report.parity_reads = parity_cycle
            report.reconstructions = parity_cycle
            report.blocks_rebuilt = blocks
            report.tracks_delivered = int(due.sum())
            report.streams_active = active
            report.streams_terminated = terminated
            report.buffered_tracks = buffered
            report.pool_tracks_in_use = pool_now
            reports.append(report)
            self.report.record(report)
            self.cycle_index = cycle + 1
            done += 1
            consumed = False
            if stop_on_completion and finished_any:
                bail = "stream-completed"
                break
        if done or len(rows) > n:
            # -- write the epoch's state back to the Python objects -------
            for i, stream in enumerate(rows):
                stream.next_read_track = int(next_read[i])
                stream.next_delivery_track = int(next_del[i])
                stream.delivered_tracks += int(deliv_delta[i])
                stream.reconstructed_tracks += int(recon_delta[i])
                if stream.delivery_start_cycle is None and start[i] >= 0:
                    stream.delivery_start_cycle = int(start[i])
                if stream.status is StreamStatus.ADMITTED \
                        and not admitted_mask[i]:
                    stream.activate()
                if live_mask[i]:
                    stream.buffer = dict.fromkeys(
                        range(stream.next_delivery_track,
                              stream.next_read_track), META_PAYLOAD)
                    pairs = deg_by_name[stream.object.name]
                    pointer = stream.next_read_track
                    floor = stream.next_delivery_track // stripe
                    stream.parity_buffer = {
                        g: META_PAYLOAD for g, acquired in pairs
                        if acquired <= pointer and g >= floor}
                else:
                    stream.complete()
                self._ff_degraded_sync_stream(stream)
            self._ff_degraded_credit(int(recon_delta.sum()))
            raised = np.nonzero(peak > peak0)[0]
            tracker.fold_epoch(
                samples,
                {rows[int(i)].stream_id: int(peak[int(i)]) for i in raised})
            disks = self.array.disks
            for disk_id in np.nonzero(total_loads)[0]:
                disks[int(disk_id)].reads += int(total_loads[disk_id])
            self.report.ff_engaged_cycles += done
        self._ff_note(bail)
        return done, admitted_n, rejected_n, consumed

    # -- churn-tolerant fast-forward --------------------------------------------------

    def run_churn(self, count: int,
                  arrivals: dict[int, tuple[MediaObject, ...]],
                  fast_forward: bool = True,
                  ) -> tuple[list[CycleReport], int, int]:
        """Run ``count`` cycles with per-cycle arrival batches.

        ``arrivals`` maps *absolute* cycle indices to the objects
        requested in that cycle.  With ``fast_forward`` on, quiescent
        stretches — including the arrival cycles themselves — run on the
        churn engine (:meth:`_fast_forward_churn`), which admits batches
        in-engine instead of ending the epoch at every arrival; anything
        the engine cannot prove quiescent falls back to the scalar cycle
        with :meth:`admit_batch` at the front door.  Results are
        bit-identical either way.  Returns ``(reports, admitted,
        rejected)``.
        """
        reports: list[CycleReport] = []
        admitted = rejected = 0
        end = self.cycle_index + count
        arrival_cycles = sorted(arrivals) if fast_forward else []
        consumed = False
        while self.cycle_index < end:
            if fast_forward:
                _done, a, r, consumed = self._fast_forward_churn(
                    end - self.cycle_index, arrivals, reports)
                admitted += a
                rejected += r
                if self.cycle_index >= end:
                    break
                if not consumed and not arrivals.get(self.cycle_index):
                    # The churn engine models healthy and stable-degraded
                    # rate-1 populations; a mixed-rate stretch between
                    # arrival cycles can still ride the generic epoch
                    # engine up to the next arrival boundary.
                    pos = bisect_right(arrival_cycles, self.cycle_index)
                    boundary = (arrival_cycles[pos]
                                if pos < len(arrival_cycles)
                                and arrival_cycles[pos] < end
                                else end)
                    if self._fast_forward(boundary - self.cycle_index,
                                          reports):
                        continue
            if not consumed:
                a, r = self._admit_cycle_arrivals(arrivals)
                admitted += a
                rejected += r
            consumed = False
            reports.append(self.run_cycle())
        return reports, admitted, rejected

    def _admit_cycle_arrivals(self, arrivals: dict[int, tuple[MediaObject,
                                                              ...]],
                              ) -> tuple[int, int]:
        """Batch-admit the current cycle's arrivals (scalar fallback)."""
        batch = arrivals.get(self.cycle_index)
        if not batch:
            return 0, 0
        streams, rejected = self.admit_batch(list(batch))
        return len(streams), rejected

    def _fast_forward_churn(self, limit: int,
                            arrivals: dict[int, tuple[MediaObject, ...]],
                            reports: list[CycleReport],
                            ) -> tuple[int, int, int, bool]:
        """The vector engine extended with in-engine batch admission.

        Stream rows live in preallocated numpy arrays sized for the
        window's worst case; each arrival cycle admits its batch through
        the *same* :meth:`_admit_checked` decision the scalar front door
        uses (so acceptance, phase assignment, stream ids, and error
        accounting are identical by construction) and the accepted
        streams join the arrays in place — no epoch break, no table
        rebuild.  Returns ``(cycles done, admitted, rejected,
        consumed)`` where ``consumed`` means the *current* cycle's
        arrivals were already admitted before a bail, so the scalar
        fallback must not re-admit them.
        """
        self._refresh_plan_cache()
        if limit <= 0:
            return 0, 0, 0, False
        mode, reason = self._ff_classify()
        if mode is None:
            self._ff_note(reason)
            return 0, 0, 0, False
        rows = [s for s in self.streams.values() if s.is_active]
        if any(s.rate != 1 for s in rows):
            self._ff_note("mixed-rates")
            return 0, 0, 0, False
        if mode == "degraded":
            # Stable degraded state under churn: the merged engine
            # absorbs arrivals in-epoch with reconstruction rows and
            # rebuild cursors in the same batched accounting.
            return self._fast_forward_degraded(limit, rows, reports,
                                               arrivals=arrivals)
        start_cycle = self.cycle_index
        end_cycle = start_cycle + limit
        # Working set: live objects plus every placed rate-1 arrival in
        # the window.  A placed arrival whose rate is not 1 cannot join
        # the uniform row engine: the epoch must end *before* its cycle.
        distinct: dict[str, int] = {}
        objects: list[MediaObject] = []
        for stream in rows:
            name = stream.object.name
            if name not in distinct:
                distinct[name] = len(objects)
                objects.append(stream.object)
        stop_cycle = end_cycle
        cap = len(rows)
        for cycle, batch in arrivals.items():
            if not start_cycle <= cycle < end_cycle:
                continue
            for obj in batch:
                if not self.layout.has_object(obj.name):
                    continue  # _admit_checked rejects it in-engine
                try:
                    rate = self._rate_of(obj)
                except AdmissionError:
                    continue  # ditto
                if rate != 1:
                    stop_cycle = min(stop_cycle, cycle)
                    break
                cap += 1
                if obj.name not in distinct:
                    distinct[obj.name] = len(objects)
                    objects.append(obj)
        if stop_cycle <= start_cycle:
            return 0, 0, 0, False
        if objects:
            flat = self._ff_flat_tables(objects)
            if flat is None:
                return 0, 0, 0, False
        else:
            # No live streams and no admittable arrivals in the window:
            # every batched request below is a guaranteed rejection, and
            # the cycles themselves are empty.
            flat = (np.zeros(0, dtype=np.int64), np.zeros(1, dtype=np.int64),
                    np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64),
                    [], 1)
        counts, offsets, member_disks, next_pointers, pos_base, divisor = \
            flat
        n = len(rows)
        num_disks = len(self.array.disks)
        slots = self.config.slots_per_disk
        k_prime = self.config.k_prime
        base_quota = self._base_quota
        tracker = self.tracker
        phase_load = self._phase_loads()
        width = len(phase_load)
        limit_units = self.effective_admission_limit()
        # Row arrays over the window's worst-case population; rows past
        # the current count are neutral (not live, not reading).
        obj_base = np.zeros(cap, dtype=np.int64)
        next_read = np.zeros(cap, dtype=np.int64)
        next_del = np.zeros(cap, dtype=np.int64)
        num_tracks = np.zeros(cap, dtype=np.int64)
        start = np.full(cap, -1, dtype=np.int64)
        quota = np.zeros(cap, dtype=np.int64)
        pace_rate = np.zeros(cap, dtype=np.int64)
        pace_base = np.zeros(cap, dtype=np.int64)
        phase_mod = np.ones(cap, dtype=np.int64)
        phase_val = np.zeros(cap, dtype=np.int64)
        unpaced = np.ones(cap, dtype=bool)
        admitted_mask = np.zeros(cap, dtype=bool)
        live_mask = np.zeros(cap, dtype=bool)
        deliv_delta = np.zeros(cap, dtype=np.int64)
        peak0 = np.zeros(cap, dtype=np.int64)
        obj_base[:n] = np.fromiter(
            (pos_base[distinct[s.object.name]] for s in rows),
            dtype=np.int64, count=n)
        next_read[:n] = np.fromiter((s.next_read_track for s in rows),
                                    dtype=np.int64, count=n)
        next_del[:n] = np.fromiter((s.next_delivery_track for s in rows),
                                   dtype=np.int64, count=n)
        num_tracks[:n] = np.fromiter((s.num_tracks for s in rows),
                                     dtype=np.int64, count=n)
        start[:n] = np.fromiter(
            (-1 if s.delivery_start_cycle is None
             else s.delivery_start_cycle for s in rows),
            dtype=np.int64, count=n)
        quota[:n] = np.fromiter(
            (k_prime * s.rate if base_quota
             else self.deliveries_per_cycle(s) for s in rows),
            dtype=np.int64, count=n)
        gates = [self._ff_gate_params(s) for s in rows]
        pace_rate[:n] = np.fromiter((g[0] for g in gates), dtype=np.int64,
                                    count=n)
        pace_base[:n] = np.fromiter((g[1] for g in gates), dtype=np.int64,
                                    count=n)
        phase_mod[:n] = np.fromiter((g[2] for g in gates), dtype=np.int64,
                                    count=n)
        phase_val[:n] = np.fromiter((g[3] for g in gates), dtype=np.int64,
                                    count=n)
        unpaced[:n] = pace_rate[:n] == 0
        ungated = bool((phase_mod == 1).all())
        admitted_mask[:n] = np.fromiter(
            (s.status is StreamStatus.ADMITTED for s in rows),
            dtype=bool, count=n)
        live_mask[:n] = True
        peak0[:n] = np.fromiter(
            (tracker.stream_peak(s.stream_id) for s in rows),
            dtype=np.int64, count=n)
        peak = peak0.copy()
        total_loads = np.zeros(num_disks, dtype=np.int64)
        active = terminated = 0
        for stream in self.streams.values():
            if stream.status is StreamStatus.ACTIVE:
                active += 1
            elif stream.status is StreamStatus.TERMINATED:
                terminated += 1
        samples: list[int] = []
        done = 0
        admitted_n = rejected_n = 0
        bailed = False
        while done < limit and self.cycle_index < stop_cycle:
            cycle = self.cycle_index
            # -- admit this cycle's batch through the scalar decision -----
            batch = arrivals.get(cycle)
            if batch:
                for obj in batch:
                    try:
                        stream = self._admit_checked(obj, phase_load,
                                                     limit_units)
                    except AdmissionError:
                        rejected_n += 1
                        continue
                    admitted_n += 1
                    i = len(rows)
                    rows.append(stream)
                    obj_base[i] = pos_base[distinct[obj.name]]
                    num_tracks[i] = stream.num_tracks
                    quota[i] = (k_prime * stream.rate if base_quota
                                else self.deliveries_per_cycle(stream))
                    gate = self._ff_gate_params(stream)
                    pace_rate[i], pace_base[i] = gate[0], gate[1]
                    phase_mod[i], phase_val[i] = gate[2], gate[3]
                    unpaced[i] = gate[0] == 0
                    if gate[2] != 1:
                        ungated = False
                    admitted_mask[i] = True
                    live_mask[i] = True
                    peak0[i] = tracker.stream_peak(stream.stream_id)
                    peak[i] = peak0[i]
            # -- stage (no mutation yet, so a bail leaves no trace) -------
            started = live_mask & (start >= 0) & (start <= cycle)
            due = np.where(started,
                           np.minimum(quota, num_tracks - next_del), 0)
            if bool((due > next_read - next_del).any()):
                bailed = True  # an imminent hiccup: go scalar
                self._ff_note("imminent-hiccup")
                break
            reading = live_mask & (next_read < num_tracks)
            if not ungated:
                reading &= (cycle % phase_mod) == phase_val
            reading &= unpaced | (next_read
                                  < (cycle + 1 - pace_base) * pace_rate)
            if divisor > 1 \
                    and bool((reading & (next_read % divisor != 0)).any()):
                bailed = True  # mid-group pointer: the scalar path raises
                self._ff_note("mid-group-pointer")
                break
            idx = np.where(reading, obj_base + next_read // divisor, 0)
            cnt = np.where(reading, counts[idx], 0)
            planned_total = int(cnt.sum())
            if planned_total:
                r_idx = idx[reading]
                r_cnt = counts[r_idx]
                ends = np.cumsum(r_cnt)
                within = np.arange(planned_total) \
                    - np.repeat(ends - r_cnt, r_cnt)
                disk_ids = member_disks[np.repeat(offsets[r_idx], r_cnt)
                                        + within]
                loads = np.bincount(disk_ids, minlength=num_disks)
                if int(loads.max(initial=0)) > slots:
                    bailed = True  # slot overflow: scalar drops / cascades
                    self._ff_note("slot-overflow")
                    break
                total_loads += loads
            # -- commit ---------------------------------------------------
            newly = admitted_mask & (due > 0)
            if bool(newly.any()):
                active += int(newly.sum())
                admitted_mask &= ~newly
            first_read = (start < 0) & (cnt > 0)
            if bool(first_read.any()):
                start[first_read] = cycle + 1
            next_del += due
            deliv_delta += due
            next_read = np.where(reading, next_pointers[idx], next_read)
            finished = live_mask & (next_del >= num_tracks)
            if bool(finished.any()):
                active -= int(finished.sum())
                live_mask &= ~finished
                # Completed rows free their capacity for later batches.
                for i in np.nonzero(finished)[0]:
                    row = rows[int(i)]
                    phase_load[row.phase % width] -= row.rate
            held = np.where(live_mask, next_read - next_del, 0)
            np.maximum(peak, held, out=peak)
            buffered = int(held.sum())
            samples.append(buffered)
            report = CycleReport(cycle=cycle)
            report.reads_planned = planned_total
            report.reads_executed = planned_total
            report.tracks_delivered = int(due.sum())
            report.streams_active = active
            report.streams_terminated = terminated
            report.buffered_tracks = buffered
            reports.append(report)
            self.report.record(report)
            self.cycle_index = cycle + 1
            done += 1
        if done or len(rows) > n:
            # -- write the epoch's state back to the Python objects -------
            for i, stream in enumerate(rows):
                stream.next_read_track = int(next_read[i])
                stream.next_delivery_track = int(next_del[i])
                stream.delivered_tracks += int(deliv_delta[i])
                if stream.delivery_start_cycle is None and start[i] >= 0:
                    stream.delivery_start_cycle = int(start[i])
                if stream.status is StreamStatus.ADMITTED \
                        and not admitted_mask[i]:
                    stream.activate()
                if live_mask[i]:
                    stream.buffer = dict.fromkeys(
                        range(stream.next_delivery_track,
                              stream.next_read_track), META_PAYLOAD)
                else:
                    stream.complete()
            raised = np.nonzero(peak > peak0)[0]
            tracker.fold_epoch(
                samples,
                {rows[int(i)].stream_id: int(peak[int(i)]) for i in raised})
            disks = self.array.disks
            for disk_id in np.nonzero(total_loads)[0]:
                disks[int(disk_id)].reads += int(total_loads[disk_id])
            self.report.ff_engaged_cycles += done
        return done, admitted_n, rejected_n, bailed

    # -- phases ------------------------------------------------------------------------

    def _delivery_hook_needed(self) -> bool:
        """Whether ``_on_track_delivered`` has any work this cycle.

        Schemes overriding the hook can override this too (NC: only while
        accumulators are open) so healthy cycles keep the fast path.
        """
        return True

    def _deliver_phase(self, report: CycleReport) -> None:
        verify = self.verify_payloads
        hook_active = (self._delivery_hook_active
                       and self._delivery_hook_needed())
        cycle = self.cycle_index
        k_prime = self.config.k_prime
        base_quota = self._base_quota
        for stream in self.active_streams:
            start = stream.delivery_start_cycle
            if start is None or cycle < start:
                continue
            quota = (k_prime * stream.rate if base_quota
                     else self.deliveries_per_cycle(stream))
            due = min(quota, stream.num_tracks - stream.next_delivery_track)
            buffer = stream.buffer
            delivered = 0
            for _ in range(due):
                track = stream.next_delivery_track
                payload = buffer.pop(track, None)
                if payload is None or verify or hook_active:
                    self._deliver_track(stream, track, payload, report)
                else:
                    delivered += 1
                stream.next_delivery_track += 1
            if due:
                if delivered:
                    report.tracks_delivered += delivered
                    stream.delivered_tracks += delivered
                stream.activate()
            if stream.parity_buffer or stream.accumulators:
                self._release_finished_groups(stream)
            if stream.next_delivery_track >= stream.num_tracks \
                    and stream.is_active:
                stream.complete()

    def _deliver_track(self, stream: Stream, track: int,
                       payload: Optional[bytes],
                       report: CycleReport) -> None:
        """The slow delivery path: a hiccup, byte verification, or a
        scheme delivery hook (the healthy metadata-mode fast path is
        inlined in :meth:`_deliver_phase`)."""
        if payload is None:
            cause = self._lost_causes.pop(
                (stream.stream_id, track), None)
            if cause is None:
                address = self.layout.data_address(stream.object.name, track)
                cause = (HiccupCause.DISK_FAILURE
                         if self.array[address.disk_id].is_failed
                         else HiccupCause.TRANSITION)
            report.hiccups.append(HiccupRecord(
                cycle=self.cycle_index,
                stream_id=stream.stream_id,
                object_name=stream.object.name,
                track=track,
                cause=cause,
            ))
            stream.hiccup_count += 1
            stream.lost_tracks.discard(track)
            return
        if self.verify_payloads:
            expected = stream.object.track_payload(track, self.track_bytes)
            if payload != expected:
                self.report.payload_mismatches += 1
        report.tracks_delivered += 1
        stream.delivered_tracks += 1
        if self._delivery_hook_active:
            self._on_track_delivered(stream, track, payload)

    def _release_finished_groups(self, stream: Stream) -> None:
        """Drop parity/accumulator buffers of fully delivered groups."""
        if stream.next_delivery_track == 0:
            return
        if not stream.parity_buffer and not stream.accumulators:
            return
        current_group, offset = divmod(
            stream.next_delivery_track, self.config.stripe_width)
        for group in list(stream.parity_buffer):
            if group < current_group:
                stream.drop_parity(group)
        for group in list(stream.accumulators):
            if group < current_group:
                stream.drop_parity(group)

    def _execute_reads(self, executed: list[PlannedRead],
                       report: CycleReport) -> None:
        streams = self.streams
        disks = self.array.disks
        data_kind = ReadKind.DATA
        next_cycle = self.cycle_index + 1
        hook = self._on_read_executed if self._read_hook_active else None
        #: Idle capacity left this cycle, computed lazily on the first
        #: media error: the deadline-aware budget for retries and
        #: recovery reads.
        slack: Optional[dict[int, int]] = None
        media_failed: list[PlannedRead] = []
        # Plans arrive grouped by stream; hoist the lookup across the run.
        last_id = None
        stream = None
        for plan in executed:
            if plan.stream_id != last_id:
                last_id = plan.stream_id
                candidate = streams.get(last_id)
                stream = (candidate if candidate is not None
                          and candidate.is_active else None)
            if stream is None:
                continue
            disk = disks[plan.disk_id]
            try:
                payload = disk.read(plan.position)
            except MediaReadError as exc:
                report.media_errors += 1
                if slack is None:
                    slack = self.slot_table.idle_slots(executed)
                if exc.transient and slack.get(plan.disk_id, 0) > 0:
                    # A transient glitch clears on the failed attempt; an
                    # immediate retry within the cycle's slack succeeds.
                    slack[plan.disk_id] -= 1
                    report.media_retries += 1
                    try:
                        payload = disk.read(plan.position)
                    except MediaReadError:
                        media_failed.append(plan)
                        continue
                else:
                    media_failed.append(plan)
                    continue
            if plan.kind is data_kind:
                stream.buffer[plan.index] = payload
                if stream.delivery_start_cycle is None:
                    stream.delivery_start_cycle = next_cycle
            else:
                stream.parity_buffer[plan.index] = payload
                report.parity_reads += 1
            report.reads_executed += 1
            if hook is not None:
                hook(stream, plan, payload)
        self._last_executed = executed
        if media_failed:
            assert slack is not None
            self._recover_media_failures(media_failed, slack, report)

    def _recover_media_failures(self, failed_plans: list[PlannedRead],
                                slack: dict[int, int],
                                report: CycleReport) -> None:
        """Per-track parity fallback for reads lost to media errors.

        Each unreadable *data* track is rebuilt from its parity group:
        sibling blocks already buffered this cycle are reused, the rest
        (plus parity) are read directly within the cycle's remaining
        idle-slot slack, and the XOR lands in the stream buffer before
        the delivery deadline — a single bad sector never hiccups a
        stream.  Recovery is impossible (and the track marked lost with a
        media-error cause) when the group already has a failed member,
        its parity disk is down, or the slack cannot cover the extra
        reads.  An unreadable *parity* block costs nothing by itself.
        """
        next_cycle = self.cycle_index + 1
        for plan in failed_plans:
            if plan.kind is not ReadKind.DATA:
                continue
            stream = self.streams.get(plan.stream_id)
            if stream is None or not stream.is_active:
                continue
            group = plan.index // self._stripe
            entry = self._group_plan(plan.object_name, group)
            if entry.failed_members or entry.parity is None:
                # The group is already one block short: the media error is
                # a second fault and the track cannot be rebuilt in-cycle.
                self._mark_lost(plan.stream_id, plan.index,
                                HiccupCause.MEDIA_ERROR)
                continue
            payload = self._rebuild_from_group(stream, plan, entry, slack,
                                               report)
            if payload is None:
                self._mark_lost(plan.stream_id, plan.index,
                                HiccupCause.MEDIA_ERROR)
                continue
            stream.buffer[plan.index] = payload
            if stream.delivery_start_cycle is None:
                stream.delivery_start_cycle = next_cycle
            stream.reconstructed_tracks += 1
            report.media_reconstructions += 1
            if self._read_hook_active:
                self._on_read_executed(stream, plan, payload)

    def _rebuild_from_group(self, stream: Stream, plan: PlannedRead,
                            entry: GroupPlan, slack: dict[int, int],
                            report: CycleReport) -> Optional[bytes]:
        """XOR the group's survivors + parity; None if sources are short.

        Consumes idle-slot slack for every source that is not already
        buffered; restores nothing on failure (the attempted reads were
        genuinely issued).
        """
        disks = self.array.disks
        buffer = stream.buffer
        survivors: list[bytes] = []
        for disk_id, position, track in entry.healthy:
            if track == plan.index:
                continue
            resident = buffer.get(track)
            if resident is not None:
                survivors.append(resident)
                continue
            if slack.get(disk_id, 0) < 1:
                return None  # no deadline-safe capacity for the re-read
            slack[disk_id] -= 1
            try:
                survivors.append(disks[disk_id].read(position))
            except MediaReadError:
                report.media_errors += 1
                return None
            report.media_recovery_reads += 1
        parity = stream.parity_buffer.get(plan.index // self._stripe)
        if parity is None:
            parity_disk, parity_position = entry.parity  # type: ignore[misc]
            if slack.get(parity_disk, 0) < 1:
                return None
            slack[parity_disk] -= 1
            try:
                parity = disks[parity_disk].read(parity_position)
            except MediaReadError:
                report.media_errors += 1
                return None
            report.media_recovery_reads += 1
        blocks: list[Optional[bytes]] = [None]
        blocks.extend(survivors)
        return self.codec.reconstruct(blocks, parity)

    def _reconstruct_phase(self, executed: list[PlannedRead],
                           report: CycleReport) -> None:
        """Rebuild missing blocks in groups touched this cycle.

        All eligible groups of the cycle are XOR-reduced together in one
        matrix operation (:meth:`ParityCodec.reconstruct_batch`) instead of
        block by block.
        """
        streams = self.streams
        touched: set[tuple[int, int]] = set()
        stripe = self._stripe
        parity_kind = ReadKind.PARITY
        last_id = None
        has_parity = False
        for plan in executed:
            # Only streams holding a parity block can reconstruct; in the
            # healthy steady state no parity is buffered and the whole
            # phase is a cheap scan.
            if plan.stream_id != last_id:
                last_id = plan.stream_id
                stream = streams.get(last_id)
                has_parity = stream is not None and bool(stream.parity_buffer)
            if not has_parity:
                continue
            if plan.kind is parity_kind:
                touched.add((plan.stream_id, plan.index))
            else:
                touched.add((plan.stream_id, plan.index // stripe))
        if not touched:
            return
        candidates: list[tuple[Stream, int, int]] = []
        rows: list[list[bytes]] = []
        for stream_id, group in sorted(touched):
            stream = streams.get(stream_id)
            if stream is None or not stream.is_active:
                continue
            found = self._reconstruction_candidate(stream, group)
            if found is None:
                continue
            missing_track, row = found
            candidates.append((stream, group, missing_track))
            rows.append(row)
        if not candidates:
            return
        payloads = self.codec.reconstruct_batch(rows)
        for (stream, group, missing_track), payload in zip(candidates,
                                                           payloads):
            self._commit_reconstruction(stream, missing_track, payload,
                                        report)

    def _reconstruction_candidate(self, stream: Stream, group: int,
                                  ) -> Optional[tuple[int, list[bytes]]]:
        """``(missing track, survivors + parity row)`` if the group is one
        fetched block short and everything else is resident; else None."""
        parity = stream.parity_buffer.get(group)
        if parity is None:
            return None
        tracks = self.layout.group_tracks(stream.object.name, group)
        buffer = stream.buffer
        missing = [t for t in tracks
                   if t not in buffer
                   and t >= stream.next_delivery_track]
        if len(missing) != 1:
            return None
        present = [buffer[t] for t in tracks if t in buffer]
        if len(present) != len(tracks) - 1:
            return None  # some member was already delivered and discarded
        # Zero padding for short tail groups is unnecessary: zero blocks
        # are the XOR identity.
        present.append(parity)
        return missing[0], present

    def _commit_reconstruction(self, stream: Stream, track: int,
                               payload: bytes,
                               report: Optional[CycleReport]) -> None:
        stream.store_track(track, payload)
        self._lost_causes.pop((stream.stream_id, track), None)
        stream.lost_tracks.discard(track)
        stream.reconstructed_tracks += 1
        if report is None:
            self._pending_reconstructions += 1
        else:
            report.reconstructions += 1

    def _try_direct_reconstruction(self, stream: Stream, group: int,
                                   report: Optional[CycleReport]) -> bool:
        """Rebuild the single missing block of a fully resident group."""
        found = self._reconstruction_candidate(stream, group)
        if found is None:
            return False
        missing_track, row = found
        payload = self.codec.reconstruct(
            [None] + row[:-1], row[-1])
        self._commit_reconstruction(stream, missing_track, payload, report)
        return True

    def _rebuild_phase(self, executed: list[PlannedRead],
                       report: CycleReport) -> None:
        """Feed idle slots to any active rebuilds (lowest priority)."""
        if not self.rebuilders:
            return
        idle = self.slot_table.idle_slots(executed)
        for rebuilder in list(self.rebuilders):
            try:
                report.blocks_rebuilt += rebuilder.run_step(idle)
            except ReconstructionError:
                # A second failure made the rebuild impossible: this disk
                # now needs a tertiary reload (catastrophic failure).
                rebuilder.completed = True
                self.rebuilders.remove(rebuilder)
                continue
            if rebuilder.completed:
                self.rebuilders.remove(rebuilder)

    def _finalise(self, report: CycleReport) -> None:
        report.reconstructions += self._pending_reconstructions
        self._pending_reconstructions = 0
        report.streams_shed += self._pending_shed
        self._pending_shed = 0
        active = terminated = 0
        active_status = StreamStatus.ACTIVE
        terminated_status = StreamStatus.TERMINATED
        for stream in self.streams.values():
            if stream.status is active_status:
                active += 1
            elif stream.status is terminated_status:
                terminated += 1
        report.streams_active = active
        report.streams_terminated = terminated
        report.buffered_tracks = self.tracker.sample(
            self.active_streams, extra_tracks=self._extra_buffer_tracks())
        report.pool_tracks_in_use = self._extra_buffer_tracks()

    def _extra_buffer_tracks(self) -> int:
        """Buffers held outside streams (NC's pool overrides this)."""
        return 0

    # -- helpers shared by group-at-a-time schemes -------------------------------

    def _plan_group_read(self, stream: Stream, plans: list[PlannedRead],
                         include_parity: bool,
                         data_purpose: ReadPurpose = ReadPurpose.NORMAL,
                         ) -> None:
        """Plan a whole-parity-group read for a stream's next group.

        Skips members on failed disks; adds a parity read when
        ``include_parity`` is set, a member is missing, and the parity disk
        is up.  Advances the read pointer to the end of the group.
        """
        name = stream.object.name
        group, offset = divmod(stream.next_read_track, self._stripe)
        if offset != 0:
            raise SimulationError(
                f"group read planned mid-group (stream {stream.stream_id}, "
                f"track {stream.next_read_track})"
            )
        entry = self._group_plan(name, group)
        stream_id = stream.stream_id
        append = plans.append
        data_kind = ReadKind.DATA
        for disk_id, position, track in entry.healthy:
            append(PlannedRead(disk_id, position, stream_id, name,
                               data_kind, track, data_purpose))
        if include_parity and entry.failed_members \
                and entry.parity is not None:
            append(PlannedRead(entry.parity[0], entry.parity[1], stream_id,
                               name, ReadKind.PARITY, group,
                               ReadPurpose.RECOVERY))
        stream.next_read_track = entry.next_read_track
