"""The Improved-bandwidth scheduler (Section 4, Figure 8).

Normal mode is Streaming-RAID-like — each stream reads its whole next
parity group's *data* blocks every cycle — but on the shifted layout, so
every disk serves data and no bandwidth idles in reserve (beyond the
admission headroom of ``K_IB`` disks).

When a disk fails, groups with a block on it read their parity block from
the *next* cluster instead.  Those parity reads land on disks that already
carry their own data load; a disk with no idle slot "drops some of the
local requests in favor of reading the parity blocks", and each dropped
local read is treated as a partial failure whose group in turn reads *its*
parity from the cluster one further right — the shift-to-the-right cascade.
If the cascade finds no idle capacity anywhere, a request must be
terminated: degradation of service.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ConfigurationError, SimulationError
from repro.sched.base import CycleScheduler
from repro.sched.plan import PlannedRead, ReadKind, ReadPurpose
from repro.server.metrics import CycleReport, HiccupCause
from repro.server.stream import Stream


class ImprovedBandwidthScheduler(CycleScheduler):
    """SR-style group reads on the shifted layout, with the parity cascade.

    ``proactive_parity`` enables Section 4's "sophisticated scheduler":
    parity blocks are also fetched in normal mode, but *opportunistically*
    — they yield slot contention to all scheduled work, so under light
    load a mid-cycle failure can be masked (the parity is already in
    memory) while under heavy load they silently drop and cost nothing.

    ``mirror_read_balance`` implements footnote 11's C = 2 special case:
    the "parity" block *is* a second copy of the data, so normal-mode
    reads can be served from either copy, balancing load and roughly
    doubling the read capacity — at the price the footnote warns about:
    after a failure, the surviving copy carries both halves of the load
    and "some streams would have to be dropped".
    """

    __slots__ = ("proactive_parity", "mirror_read_balance")

    def __init__(self, *args: Any, proactive_parity: bool = False,
                 mirror_read_balance: bool = False,
                 **kwargs: Any) -> None:
        # Set before super().__init__: the admission bound consults them.
        self.proactive_parity = proactive_parity
        self.mirror_read_balance = mirror_read_balance
        super().__init__(*args, **kwargs)
        if mirror_read_balance and self.config.parity_group_size != 2:
            raise ConfigurationError(
                "mirror read balancing needs C = 2 (footnote 11): the "
                "parity block is only a usable replica when groups hold "
                "a single data block"
            )

    def _slot_based_stream_bound(self) -> int:
        bound = super()._slot_based_stream_bound()
        if self.mirror_read_balance:
            # Two copies of every block: each disk carries half the reads.
            return 2 * bound
        return bound

    def _fast_forward_ready(self) -> bool:
        """Veto when normal-mode cycles do more than the plain group walk:
        opportunistic parity prefetches and mirrored-read balancing both
        plan extra reads even with every disk up."""
        return not self.proactive_parity and not self.mirror_read_balance

    def _capacity_penalty(self) -> int:
        """Reserve consumption: failures beyond ``K_IB`` cost capacity.

        The scheme holds the bandwidth of ``K_IB`` disks idle precisely to
        absorb failures (Section 4), so the first ``reserve_k`` concurrent
        failures are free; each one beyond the reserve charges one disk's
        share of the stream bound, shrinking admission before the
        shift-right cascade starts terminating streams mid-play.
        """
        excess = len(self.array.failed_ids) - self.config.params.reserve_k
        if excess <= 0:
            return 0
        per_disk_share = max(1, self.admission_limit // len(self.array))
        return excess * per_disk_share

    def plan_reads(self, cycle: int) -> list[PlannedRead]:
        """Group data reads per stream; parity only for failure-hit groups
        (plus opportunistic prefetches when enabled)."""
        plans: list[PlannedRead] = []
        # Direct table iteration: no per-cycle snapshot list (churn path).
        for stream in self.streams.values():
            if not stream.is_active:
                continue
            for _ in range(stream.rate):
                if not stream.reads_remaining:
                    break
                self._plan_stream_group(stream, plans)
        return plans

    def _plan_stream_group(self, stream: Stream,
                           plans: list[PlannedRead]) -> None:
        if self.mirror_read_balance:
            self._plan_mirrored_track(stream, plans)
            return
        # Data reads only in normal mode; groups touching a failed disk
        # get their parity read planned up front, with their surviving
        # data reads elevated so the group cannot lose a second block.
        name = stream.object.name
        group = stream.next_read_track // self._stripe
        entry = self._group_plan(name, group)
        group_hit = entry.failed_members > 0
        purpose = (ReadPurpose.RECOVERY if group_hit
                   else ReadPurpose.NORMAL)
        self._plan_group_read(stream, plans, include_parity=group_hit,
                              data_purpose=purpose)
        if self.proactive_parity and not group_hit \
                and entry.parity is not None:
            plans.append(PlannedRead(
                disk_id=entry.parity[0],
                position=entry.parity[1],
                stream_id=stream.stream_id,
                object_name=name,
                kind=ReadKind.PARITY,
                index=group,
                purpose=ReadPurpose.OPPORTUNISTIC,
            ))

    def _plan_mirrored_track(self, stream: Stream,
                             plans: list[PlannedRead]) -> None:
        """Footnote 11: read the track from whichever copy balances load.

        At C = 2 each group is one track plus its mirror (the "parity"
        block has identical bytes).  The copy is chosen by a deterministic
        coin (stream id + group parity); a failed copy routes to its twin,
        whose overload then surfaces as slot drops — the footnote's
        dropped streams.
        """
        name = stream.object.name
        track = stream.next_read_track
        group = track // self._stripe
        primary = self.layout.data_address(name, track)
        mirror = self.layout.parity_address(name, group)
        # The coin must decorrelate from the disk walk: successive groups
        # already alternate disk parity, so flipping the copy every group
        # would lock each stream onto one parity class.  Flipping every
        # *two* groups spreads reads over all four residues.
        prefer_mirror = (stream.stream_id + group // 2) % 2 == 1
        first, second = ((mirror, primary) if prefer_mirror
                         else (primary, mirror))
        if self.array[first.disk_id].is_failed:
            first, second = second, first
        if self.array[first.disk_id].is_failed:
            # Both copies down: the track is lost (catastrophic pair).
            self._mark_lost(stream.stream_id, track,
                            HiccupCause.DISK_FAILURE)
            stream.next_read_track = track + 1
            return
        plans.append(PlannedRead(
            disk_id=first.disk_id,
            position=first.position,
            stream_id=stream.stream_id,
            object_name=name,
            kind=ReadKind.DATA,
            index=track,
            purpose=ReadPurpose.NORMAL,
        ))
        stream.next_read_track = track + 1

    def resolve_plans(self, plans: list[PlannedRead], report: CycleReport,
                      ) -> tuple[list[PlannedRead], list[PlannedRead]]:
        """Slot arbitration with the shift-to-the-right cascade.

        Iterates: resolve; every *normal* data read that lost its slot
        turns its parity group into a "protected" group — the lost block
        will be reconstructed, so the group's surviving data reads become
        recovery-priority and a parity read is added on the next cluster.
        Repeats until no new drops appear (bounded by the group count).
        A recovery read that still cannot be placed means the cascade found
        no idle capacity: the stream is terminated (degradation of
        service).
        """
        work = list(plans)
        removed: list[PlannedRead] = []          # reads replaced by parity
        protected: set[tuple[int, int]] = set()  # (stream_id, group)
        for _ in range(len(plans) + 1):
            executed, dropped = self.slot_table.resolve(work)
            overflow = [p for p in dropped
                        if not self.array[p.disk_id].is_failed]
            if not overflow:
                return executed, removed
            progressed = False
            for plan in overflow:
                key = self._group_key(plan)
                if plan.purpose is ReadPurpose.OPPORTUNISTIC:
                    # Nice-to-have prefetches drop freely under load.
                    work = [p for p in work if p is not plan]
                    progressed = True
                elif plan.purpose is ReadPurpose.NORMAL \
                        and plan.kind is ReadKind.DATA \
                        and key not in protected:
                    # Partial failure: reconstruct this block via parity
                    # one cluster to the right.
                    protected.add(key)
                    work = self._protect_group(work, plan, key)
                    removed.append(plan)
                    progressed = True
                else:
                    # A recovery read lost contention: no idle capacity in
                    # the chain — degradation of service.
                    self._degrade(plan, work, report)
                    work = [p for p in work
                            if p.stream_id != plan.stream_id]
                    progressed = True
            if not progressed:  # pragma: no cover - defensive
                break
        raise SimulationError("shift-right cascade failed to converge")

    def _group_key(self, plan: PlannedRead) -> tuple[int, int]:
        if plan.kind is ReadKind.PARITY:
            return (plan.stream_id, plan.index)
        return (plan.stream_id, plan.index // self._stripe)

    def _protect_group(self, work: list[PlannedRead], dropped: PlannedRead,
                       key: tuple[int, int]) -> list[PlannedRead]:
        """Replace a dropped data read with a parity read; elevate the rest."""
        stream_id, group = key
        parity_address = self.layout.parity_address(dropped.object_name,
                                                    group)
        updated: list[PlannedRead] = []
        for plan in work:
            if plan is dropped:
                continue  # the block will be reconstructed instead
            if self._group_key(plan) == key \
                    and plan.purpose is ReadPurpose.NORMAL:
                plan = PlannedRead(
                    disk_id=plan.disk_id, position=plan.position,
                    stream_id=plan.stream_id, object_name=plan.object_name,
                    kind=plan.kind, index=plan.index,
                    purpose=ReadPurpose.RECOVERY,
                )
            updated.append(plan)
        if self.array[parity_address.disk_id].is_failed:
            # Parity unavailable too: the block is simply lost.
            self._mark_lost(stream_id, dropped.index,
                            HiccupCause.DISK_FAILURE)
            return updated
        updated.append(PlannedRead(
            disk_id=parity_address.disk_id,
            position=parity_address.position,
            stream_id=stream_id,
            object_name=dropped.object_name,
            kind=ReadKind.PARITY,
            index=group,
            purpose=ReadPurpose.RECOVERY,
        ))
        return updated

    def _degrade(self, plan: PlannedRead, work: list[PlannedRead],
                 report: CycleReport) -> None:
        """Terminate the stream that the cascade could not serve."""
        stream = self.streams.get(plan.stream_id)
        if stream is not None and stream.is_active:
            self.terminate_stream(plan.stream_id)

    def _handle_dropped(self, dropped: list[PlannedRead],
                        report: CycleReport) -> None:
        """Cascade-replaced reads are expected, not lost.

        Each dropped data read's group has a parity read planned, so the
        block is reconstructed at the end of the cycle; if reconstruction
        nevertheless fails, the delivery phase records the hiccup with a
        disk-failure/transition cause.
        """
