"""Rebuild mode: reconstructing a failed disk onto a spare, on-line.

The paper names three operating modes — normal, degraded, rebuild — and
analyses the first two ("due to lack of space, we only discuss the
system's behavior under normal and degraded modes").  This module supplies
the third as an extension faithful to the paper's machinery:

* the failed disk's blocks are rebuilt *from parity*, one at a time:
  read the group's surviving members and its parity block, XOR, write the
  result to the spare;
* rebuild traffic is strictly lower priority than stream traffic — it
  consumes only the slots the cycle left idle, so delivery is never
  perturbed (the flip side: a fully loaded server rebuilds slowly,
  lengthening the window in which a second failure is catastrophic);
* when the last block lands, the spare takes the failed disk's place and
  the scheduler returns the cluster to normal mode.

Data blocks are reconstructed from their group's survivors + parity;
parity blocks are recomputed from the group's data members.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

import numpy as np

if TYPE_CHECKING:
    from repro.sched.base import CycleScheduler

from repro.errors import (
    ConfigurationError,
    MediaReadError,
    ReconstructionError,
)
from repro.layout.address import BlockKind, DiskAddress, StoredBlock
from repro.parity.xor import META_PAYLOAD, ParityCodec


class OnlineRebuilder:
    """Rebuilds one failed disk using the scheduler's idle slots.

    Attach via :meth:`CycleScheduler.start_rebuild`; the scheduler calls
    :meth:`run_step` at the end of every cycle with the per-disk idle slot
    budget.  ``writes_per_cycle`` models the spare's write bandwidth (in
    track writes per cycle); the read side is limited by the idle slots on
    the surviving disks.
    """

    __slots__ = ("scheduler", "disk_id", "writes_per_cycle", "codec",
                 "distributed", "_pending", "total_blocks", "blocks_rebuilt",
                 "reads_consumed", "source_reads", "completed",
                 "media_blocked", "_ff_plan", "_ff_plan_key")

    def __init__(self, scheduler: "CycleScheduler", disk_id: int,
                 writes_per_cycle: Optional[int] = None,
                 distributed: bool = False) -> None:
        if scheduler.array[disk_id].is_failed is False:
            raise ConfigurationError(
                f"disk {disk_id} is not failed; nothing to rebuild"
            )
        self.scheduler = scheduler
        self.disk_id = disk_id
        self.writes_per_cycle = (writes_per_cycle if writes_per_cycle
                                 is not None else scheduler.config.slots_per_disk)
        if self.writes_per_cycle < 1:
            raise ConfigurationError("spare needs at least one write/cycle")
        self.codec: ParityCodec = scheduler.codec
        #: Distributed rebuild (parity declustering): pending blocks are
        #: ordered so consecutive blocks draw their reconstruction reads
        #: from disjoint survivor sets, spreading the load round-robin
        #: over all ``D - 1`` survivors.
        self.distributed = distributed
        blocks = scheduler.layout.blocks_on_disk(disk_id)
        if distributed:
            blocks = self._distributed_order(blocks)
        self._pending: deque[StoredBlock] = deque(blocks)
        self.total_blocks = len(self._pending)
        self.blocks_rebuilt = 0
        self.reads_consumed = 0
        #: Reconstruction reads issued per source disk — the raw material
        #: for the survivor read-load spread (max/mean) metric.
        self.source_reads: dict[int, int] = {}
        #: Rebuild steps deferred because a source read hit a media error.
        self.media_blocked = 0
        self.completed = self.total_blocks == 0
        # Flattened source/target plan for the degraded fast-forward
        # engine; rebuilt lazily and re-keyed on layout/array epochs.
        self._ff_plan: Optional[tuple] = None
        self._ff_plan_key: Optional[tuple] = None
        # FAILED -> REBUILDING: the fault-domain state machine marks the
        # spare reconstruction in progress (reads keep failing until done).
        scheduler.array[disk_id].begin_rebuild()
        # The spare starts blank; reconstructed tracks land as they come.
        scheduler.array[disk_id].erase()

    @property
    def progress(self) -> float:
        """Fraction of blocks rebuilt so far."""
        if self.total_blocks == 0:
            return 1.0
        return self.blocks_rebuilt / self.total_blocks

    def run_step(self, idle_slots: dict[int, int]) -> int:
        """Rebuild as many blocks as this cycle's idle slots allow.

        Mutates ``idle_slots`` as it consumes capacity; returns the number
        of blocks rebuilt this cycle.
        """
        if self.completed:
            return 0
        rebuilt = 0
        budget = self.writes_per_cycle
        rotations = 0
        while self._pending and budget > 0:
            block = self._pending[0]
            sources = self._source_addresses(block)
            if any(self.scheduler.array[a.disk_id].is_failed
                   for a in sources):
                # A second failure inside this block's parity group: the
                # rebuild cannot proceed from parity — catastrophic.
                raise ReconstructionError(
                    f"rebuild of disk {self.disk_id} blocked by a second "
                    "failure in the same parity group; tertiary reload "
                    "required"
                )
            if any(idle_slots.get(a.disk_id, 0) < 1 for a in sources):
                break  # not enough idle capacity this cycle
            try:
                payloads = []
                for address in sources:
                    idle_slots[address.disk_id] -= 1
                    self.reads_consumed += 1
                    self.source_reads[address.disk_id] = \
                        self.source_reads.get(address.disk_id, 0) + 1
                    payloads.append(
                        self.scheduler.array[address.disk_id].read(
                            address.position))
            except MediaReadError:
                # A source block is unreadable right now; defer this block
                # to the back of the queue so the scrubber (or a transient
                # clearing itself) can unblock it, and move on.  One full
                # rotation without progress ends the cycle's step.
                self.media_blocked += 1
                self._pending.rotate(-1)
                rotations += 1
                if rotations >= len(self._pending):
                    break
                continue
            payload = self._reconstruct(block, payloads)
            target = self._target_address(block)
            self.scheduler.array[self.disk_id].write(target.position,
                                                     payload)
            self._pending.popleft()
            self.blocks_rebuilt += 1
            budget -= 1
            rebuilt += 1
        if not self._pending:
            self.completed = True
            self.scheduler.repair_disk(self.disk_id)
        return rebuilt

    # -- fast-forward support --------------------------------------------------

    def prepare_fast_plan(self) -> Optional[tuple]:
        """Flatten the pending queue into numpy source/target arrays.

        Returns ``(src, off, pos, built_at)`` where block ``i`` of the
        planned order reads disks ``src[off[i]:off[i+1]]`` and writes the
        spare at ``pos[i]``; ``built_at`` anchors the cursor so
        ``blocks_rebuilt - built_at`` indexes the next pending block.
        Returns ``None`` when any source sits on a failed disk (a second
        failure in the group — the scalar path raises, so the engine must
        bail and let it).  The plan is memoised against the scheduler's
        plan-cache key plus ``media_blocked`` (media deferrals rotate the
        queue, invalidating the flattened order).
        """
        key = (self.scheduler._plan_cache_key, self.media_blocked)
        plan = self._ff_plan
        if plan is not None and self._ff_plan_key == key:
            built_at = plan[3]
            if built_at + len(plan[2]) == (self.blocks_rebuilt
                                           + len(self._pending)):
                return plan
        array = self.scheduler.array
        src_ids: list[int] = []
        offsets = [0]
        positions: list[int] = []
        for block in self._pending:
            sources = self._source_addresses(block)
            if any(array[a.disk_id].is_failed for a in sources):
                return None
            src_ids.extend(a.disk_id for a in sources)
            offsets.append(len(src_ids))
            positions.append(self._target_address(block).position)
        plan = (np.asarray(src_ids, dtype=np.int64),
                np.asarray(offsets, dtype=np.int64),
                np.asarray(positions, dtype=np.int64),
                self.blocks_rebuilt)
        self._ff_plan = plan
        self._ff_plan_key = key
        return plan

    def fast_step(self, idle: "np.ndarray", load_sink: "np.ndarray") -> int:
        """One cycle's rebuild against a vectorised idle-slot budget.

        Mirrors :meth:`run_step` bit-for-bit in metadata mode: same
        slot-availability check (all sources ≥ 1 before consuming, so
        duplicate source disks can legitimately drive a slot negative,
        exactly as the scalar loop does), same break-on-short-slot, same
        spare writes in queue order.  Source reads are accounted through
        ``load_sink`` — the engine folds them into its bulk per-disk
        ``reads`` writeback — rather than issued per block.  The engine
        never lets a fast cycle reach completion (it bails one cycle
        early), but completion here matches the scalar path regardless.
        """
        if self.completed:
            return 0
        src, off, pos, built_at = self._ff_plan
        base = self.blocks_rebuilt - built_at
        limit = min(self.writes_per_cycle, len(self._pending))
        take = 0
        while take < limit:
            block_src = src[off[base + take]:off[base + take + 1]]
            if (idle[block_src] < 1).any():
                break
            np.subtract.at(idle, block_src, 1)
            take += 1
        if take:
            span = src[off[base]:off[base + take]]
            np.add.at(load_sink, span, 1)
            self.reads_consumed += int(off[base + take] - off[base])
            for source_id, count in zip(*np.unique(span, return_counts=True)):
                self.source_reads[int(source_id)] = \
                    self.source_reads.get(int(source_id), 0) + int(count)
            spare = self.scheduler.array[self.disk_id]
            for index in range(take):
                spare.write(int(pos[base + index]), META_PAYLOAD)
                self._pending.popleft()
            self.blocks_rebuilt += take
        if not self._pending:
            self.completed = True
            self.scheduler.repair_disk(self.disk_id)
        return take

    # -- helpers ---------------------------------------------------------------

    def _distributed_order(self,
                           blocks: list[StoredBlock]) -> list[StoredBlock]:
        """Order blocks so consecutive blocks use disjoint source disks.

        Deterministic greedy list scheduling: each block lands in the
        earliest *round* in which none of its source disks is already
        claimed, and the rounds are concatenated (stable within a
        round).  On a clustered layout every block shares the same
        handful of sources, so rounds hold one block each and the order
        is unchanged; on a declustered layout each round packs
        ``~(D - 1) / C`` source-disjoint blocks, so the head-first idle
        slot consumption of :meth:`run_step` / :meth:`fast_step` drains
        reads round-robin across *all* survivors instead of stalling on
        one cluster.  O(blocks * C); no RNG, no wall clock.
        """
        next_free: dict[int, int] = {}
        rounds: list[list[StoredBlock]] = []
        for block in blocks:
            sources = self._source_addresses(block)
            start = max((next_free.get(a.disk_id, 0) for a in sources),
                        default=0)
            while len(rounds) <= start:
                rounds.append([])
            rounds[start].append(block)
            for address in sources:
                next_free[address.disk_id] = start + 1
        return [block for bucket in rounds for block in bucket]

    def _group_of_block(self, block: StoredBlock) -> int:
        if block.kind is BlockKind.PARITY:
            return block.index
        group, _offset = self.scheduler.layout.group_of(
            block.object_name, block.index)
        return group

    def _source_addresses(self, block: StoredBlock) -> list[DiskAddress]:
        layout = self.scheduler.layout
        group = self._group_of_block(block)
        span = layout.group_span(block.object_name, group)
        if block.kind is BlockKind.PARITY:
            return list(span.data)
        sources = [a for a in span.data if a.disk_id != self.disk_id]
        sources.append(span.parity)
        return sources

    def _target_address(self, block: StoredBlock) -> DiskAddress:
        layout = self.scheduler.layout
        if block.kind is BlockKind.PARITY:
            return layout.parity_address(block.object_name, block.index)
        return layout.data_address(block.object_name, block.index)

    def _reconstruct(self, block: StoredBlock,
                     payloads: list[bytes]) -> bytes:
        layout = self.scheduler.layout
        group = self._group_of_block(block)
        tracks = layout.group_tracks(block.object_name, group)
        stripe = self.scheduler.config.stripe_width
        if block.kind is BlockKind.PARITY:
            # Recompute parity from the data members (zero-padded tail).
            padded = list(payloads)
            while len(padded) < stripe:
                padded.append(self.codec.zero_block())
            return self.codec.encode(padded)
        # Rebuild the data block from survivors + parity.
        span = layout.group_span(block.object_name, group)
        survivors = payloads[:-1]
        parity = payloads[-1]
        blocks: list[Optional[bytes]] = []
        source_iter = iter(survivors)
        for address in span.data:
            if address.disk_id == self.disk_id:
                blocks.append(None)
            else:
                blocks.append(next(source_iter))
        while len(blocks) < stripe:
            blocks.append(self.codec.zero_block())
        if blocks.count(None) != 1:
            raise ReconstructionError(
                "rebuild found a group with more than one missing block "
                "(catastrophic failure); tertiary reload required"
            )
        return self.codec.reconstruct(blocks, parity)
