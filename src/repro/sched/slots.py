"""Per-disk per-cycle slot arbitration.

Each disk can serve a bounded number of track reads in one cycle
(``SchedulerConfig.slots_per_disk``).  The slot table takes the cycle's
planned reads and decides which execute and which are *dropped*:

* reads aimed at a failed disk never execute (the planner should not emit
  them; they are returned as failed-disk drops so bugs surface in metrics);
* within a disk, recovery reads beat normal reads (Section 4's "drop some
  of the local requests in favor of reading the parity blocks");
* ties break by planning order, keeping the simulation deterministic.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.disk.drive import DiskArray
from repro.sched.plan import PlannedRead


class SlotTable:
    """Arbitrates one cycle's reads against per-disk slot budgets."""

    __slots__ = ("array", "slots_per_disk")

    def __init__(self, array: DiskArray, slots_per_disk: int) -> None:
        if slots_per_disk < 1:
            raise ValueError(
                f"slots per disk must be >= 1, got {slots_per_disk}"
            )
        self.array = array
        self.slots_per_disk = slots_per_disk

    def resolve(self, plans: Sequence[PlannedRead],
                ) -> tuple[list[PlannedRead], list[PlannedRead]]:
        """Partition ``plans`` into (executed, dropped).

        Preserves planning order within each outcome list.
        """
        # Fast path: every touched disk is up, at full speed, and under
        # budget — all plans execute, nothing is dropped, no per-disk
        # ranking is needed.  This is the overwhelmingly common
        # healthy-cycle case; it only counts loads, deferring the per-disk
        # plan lists to the slow path.
        slots = self.slots_per_disk
        array = self.array
        counts: dict[int, int] = {}
        over_budget = False
        for plan in plans:
            disk_id = plan.disk_id
            load = counts.get(disk_id, 0) + 1
            counts[disk_id] = load
            if load > slots:
                over_budget = True
        if not over_budget and not any(
                array[disk_id].is_failed
                or array[disk_id].service_fraction < 1.0
                for disk_id in counts):
            plans = plans if type(plans) is list else list(plans)
            return plans, []
        by_disk: dict[int, list[PlannedRead]] = {}
        for plan in plans:
            by_disk.setdefault(plan.disk_id, []).append(plan)
        executed: list[PlannedRead] = []
        dropped: list[PlannedRead] = []
        for disk_id, disk_plans in by_disk.items():
            disk = array[disk_id]
            if disk.is_failed:
                dropped.extend(disk_plans)
                continue
            # A fail-slow drive's budget shrinks with its service fraction.
            budget = disk.effective_slots(slots)
            if len(disk_plans) <= budget:
                executed.extend(disk_plans)
                continue
            # Stable sort: priority first, planning order second.
            ranked = sorted(disk_plans, key=lambda p: p.priority)
            executed.extend(ranked[:budget])
            dropped.extend(ranked[budget:])
        # Return in global planning order for determinism downstream.
        order = {id(plan): i for i, plan in enumerate(plans)}
        executed.sort(key=lambda p: order[id(p)])
        dropped.sort(key=lambda p: order[id(p)])
        return executed, dropped

    def load(self, plans: Iterable[PlannedRead]) -> dict[int, int]:
        """Reads per disk implied by a plan list (diagnostics)."""
        loads: dict[int, int] = {}
        for plan in plans:
            loads[plan.disk_id] = loads.get(plan.disk_id, 0) + 1
        return loads

    def idle_slots(self, plans: Iterable[PlannedRead]) -> dict[int, int]:
        """Free slots per operational disk under a plan list.

        Fail-slow drives expose their *effective* budget, so rebuild and
        media-recovery traffic cannot overdrive a throttled disk.
        """
        loads = self.load(plans)
        return {
            disk.disk_id: disk.effective_slots(self.slots_per_disk)
            - loads.get(disk.disk_id, 0)
            for disk in self.array if not disk.is_failed
        }
