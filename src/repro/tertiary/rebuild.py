"""Rebuild-mode estimates: tape reload versus on-line parity rebuild.

The paper defers rebuild-mode analysis ("due to lack of space, we only
discuss ... normal and degraded modes"), but motivates the whole design
with how *slow* a tertiary rebuild is (Section 1).  This extension
quantifies both paths:

* **tape reload** — :func:`repro.tertiary.tape.estimate_rebuild_time_s`:
  one robot exchange + seek per object whose fragments live on the failed
  disk, transfers at ~4 Mb/s;
* **on-line parity rebuild** — reconstruct each of the failed disk's
  blocks from its parity group's survivors, using only the disk bandwidth
  left idle by the active streams.  Each rebuilt track costs one track
  read on each of ``C - 1`` surviving disks (they proceed in parallel, so
  the wall-clock cost per track is one idle track-slot) plus a write to
  the spare, which is otherwise idle and never the bottleneck.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.parameters import SystemParameters
from repro.layout.base import DataLayout
from repro.tertiary.tape import TapeLibrary, estimate_rebuild_time_s


def estimate_online_rebuild_time_s(layout: DataLayout, disk_id: int,
                                   params: SystemParameters,
                                   idle_fraction: float) -> float:
    """Wall-clock time to rebuild one disk from parity, on-line.

    ``idle_fraction`` is the share of each surviving disk's bandwidth not
    committed to active streams (the paper's reserved/idle capacity).  The
    rebuild reads one surviving track per idle track-slot; the group's
    survivors are read in parallel, so the group's wall-clock cost is the
    *per-disk* cost of one track.
    """
    if not 0.0 < idle_fraction <= 1.0:
        raise ValueError(
            f"idle fraction must be in (0, 1], got {idle_fraction}"
        )
    tracks = layout.used_positions(disk_id)
    if tracks == 0:
        return 0.0
    # One idle track-slot per rebuilt track, diluted by the idle share.
    return tracks * params.track_time_s / idle_fraction


@dataclass(frozen=True)
class RebuildComparison:
    """Tape versus on-line rebuild for one failed disk."""

    disk_id: int
    tracks: int
    tape_time_s: float
    online_time_s: float

    @property
    def speedup(self) -> float:
        """How much faster the parity rebuild is than the tape reload."""
        if self.online_time_s == 0:
            return float("inf")
        return self.tape_time_s / self.online_time_s


def compare_rebuild_paths(layout: DataLayout, disk_id: int,
                          params: SystemParameters,
                          library: TapeLibrary,
                          idle_fraction: float = 0.2) -> RebuildComparison:
    """Estimate both rebuild paths for one failed disk."""
    return RebuildComparison(
        disk_id=disk_id,
        tracks=layout.used_positions(disk_id),
        tape_time_s=estimate_rebuild_time_s(
            layout, disk_id, params.track_size_mb, library),
        online_time_s=estimate_online_rebuild_time_s(
            layout, disk_id, params, idle_fraction),
    )
