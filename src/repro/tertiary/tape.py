"""Tertiary storage: a tape-library model and rebuild-time estimates.

The paper (Section 1): "Rebuilding a failed disk from tertiary storage can
be a slow process.  Loading a standby disk with the missing data requires
portions of many objects to be loaded from tertiary store; many tapes may
need to be referenced and that is very time consuming" — and footnote 2
prices a $1000 tape drive at ~4 megabits/s against a disk's ~32 Mb/s.

This module quantifies that claim: a failed disk holds *fragments* of many
objects (striping spreads each object thinly over all clusters), so a
rebuild from tape touches one tape per object stored there, each paying a
robot exchange plus a serial seek, while a parity-based on-line rebuild
reads surviving disks at disk speed.  The paper defers rebuild-mode
analysis; this model is an extension flagged in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.layout.base import DataLayout
from repro.units import mbits_per_sec


@dataclass(frozen=True)
class TapeSpec:
    """One tape drive + robot, mid-1990s flavoured defaults.

    ``bandwidth_mb_s`` defaults to the paper's footnote-2 figure (4 Mb/s).
    """

    bandwidth_mb_s: float = mbits_per_sec(4.0)
    exchange_time_s: float = 30.0      # robot unload/load for a tape switch
    average_seek_s: float = 60.0       # serial wind to the wanted offset
    capacity_mb: float = 10_000.0      # one cartridge

    def __post_init__(self) -> None:
        for field_name in ("bandwidth_mb_s", "exchange_time_s",
                           "average_seek_s", "capacity_mb"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")


class TapeLibrary:
    """A robot library with one or more identical drives.

    Objects are stored contiguously, one (or more) per cartridge; fetching
    a fragment of an object costs an exchange + seek + transfer.  Multiple
    drives work fragments in parallel (perfect speedup — optimistic, which
    only *strengthens* the paper's point that tape rebuilds are slow).
    """

    def __init__(self, spec: TapeSpec = TapeSpec(), num_drives: int = 1) -> None:
        if num_drives < 1:
            raise ValueError(f"need at least one drive, got {num_drives}")
        self.spec = spec
        self.num_drives = num_drives

    def fragment_fetch_time_s(self, fragment_mb: float) -> float:
        """Exchange + seek + transfer for one object fragment."""
        if fragment_mb < 0:
            raise ValueError(f"fragment size must be non-negative: {fragment_mb}")
        if fragment_mb == 0:
            return 0.0
        return (self.spec.exchange_time_s + self.spec.average_seek_s +
                fragment_mb / self.spec.bandwidth_mb_s)

    def batch_fetch_time_s(self, fragments_mb: list[float]) -> float:
        """Total time to fetch many fragments with the drive pool.

        Uses the parallel lower bound ``sum / num_drives`` (plus nothing
        for scheduling) — deliberately optimistic.
        """
        total = sum(self.fragment_fetch_time_s(f) for f in fragments_mb)
        return total / self.num_drives


def estimate_rebuild_time_s(layout: DataLayout, disk_id: int,
                            track_size_mb: float,
                            library: TapeLibrary) -> float:
    """Time to reload one failed disk's contents from the tape library.

    Groups the failed disk's blocks by object (each object lives on its own
    tape region, so one exchange+seek per object) and charges transfers at
    tape speed.  Parity blocks are recomputed from the fetched data rather
    than fetched — they are not stored on tertiary — but the XOR time is
    negligible next to the tape time, so it is ignored.
    """
    if track_size_mb <= 0:
        raise ValueError("track size must be positive")
    per_object_mb: dict[str, float] = {}
    for block in layout.blocks_on_disk(disk_id):
        per_object_mb[block.object_name] = \
            per_object_mb.get(block.object_name, 0.0) + track_size_mb
    return library.batch_fetch_time_s(list(per_object_mb.values()))
