"""Tertiary storage (tape library) model and rebuild-time estimation."""

from repro.tertiary.rebuild import (
    RebuildComparison,
    compare_rebuild_paths,
    estimate_online_rebuild_time_s,
)
from repro.tertiary.tape import TapeLibrary, TapeSpec, estimate_rebuild_time_s

__all__ = [
    "RebuildComparison",
    "TapeLibrary",
    "TapeSpec",
    "compare_rebuild_paths",
    "estimate_online_rebuild_time_s",
    "estimate_rebuild_time_s",
]
