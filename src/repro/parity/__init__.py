"""Parity coding substrate (bitwise XOR over track payloads)."""

from repro.parity.xor import ParityCodec, xor_blocks

__all__ = ["ParityCodec", "xor_blocks"]
