"""Parity coding substrate (bitwise XOR over track payloads)."""

from repro.parity.xor import (
    META_PAYLOAD,
    MetaParityCodec,
    ParityCodec,
    xor_blocks,
    xor_matrix,
)

__all__ = ["META_PAYLOAD", "MetaParityCodec", "ParityCodec", "xor_blocks",
           "xor_matrix"]
