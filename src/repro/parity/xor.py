"""Bitwise-XOR parity over track payloads.

The paper's schemes all use single-parity groups: the parity block is the
bitwise exclusive-or of the ``C - 1`` data blocks, so any *one* missing block
can be reconstructed from the remaining ``C - 1`` blocks of its group
(Section 1, ``XOp = X0 ^ X1 ^ X2 ^ X3``).

The codec here operates on real byte payloads so that the simulator can
verify reconstruction *byte-for-byte* rather than just book-keeping block
identities.  It also supports the Non-clustered "lazy" transition protocol
(Figure 7), which keeps a *running* XOR of already-delivered blocks and
folds in later arrivals — :meth:`ParityCodec.accumulate`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import ReconstructionError


def xor_blocks(blocks: Iterable[bytes]) -> bytes:
    """Bitwise XOR of equal-length byte blocks.

    >>> xor_blocks([b"\\x0f", b"\\xf0"])
    b'\\xff'
    """
    accumulator: Optional[np.ndarray] = None
    length: Optional[int] = None
    for block in blocks:
        data = np.frombuffer(block, dtype=np.uint8)
        if accumulator is None:
            accumulator = data.copy()
            length = len(block)
        else:
            if len(block) != length:
                raise ReconstructionError(
                    f"parity over unequal block sizes: {len(block)} vs {length}"
                )
            accumulator ^= data
    if accumulator is None:
        raise ReconstructionError("parity of an empty block list is undefined")
    return accumulator.tobytes()


class ParityCodec:
    """Encode/verify/reconstruct single-parity groups of fixed block size."""

    def __init__(self, block_size_bytes: int):
        if block_size_bytes <= 0:
            raise ValueError(
                f"block size must be positive, got {block_size_bytes}"
            )
        self.block_size_bytes = block_size_bytes

    def _check(self, block: bytes, role: str) -> None:
        if len(block) != self.block_size_bytes:
            raise ReconstructionError(
                f"{role} block has size {len(block)}, codec expects "
                f"{self.block_size_bytes}"
            )

    def encode(self, data_blocks: Sequence[bytes]) -> bytes:
        """Compute the parity block for a full set of data blocks."""
        if not data_blocks:
            raise ReconstructionError("cannot encode parity of zero blocks")
        for block in data_blocks:
            self._check(block, "data")
        return xor_blocks(data_blocks)

    def verify(self, data_blocks: Sequence[bytes], parity: bytes) -> bool:
        """True iff ``parity`` matches the XOR of ``data_blocks``."""
        self._check(parity, "parity")
        return self.encode(data_blocks) == parity

    def reconstruct(self, blocks: Sequence[Optional[bytes]],
                    parity: bytes) -> bytes:
        """Reconstruct the single missing (None) entry of ``blocks``.

        ``blocks`` is the full ordered list of data blocks with exactly one
        ``None`` hole; ``parity`` is the group's parity block.

        Raises
        ------
        ReconstructionError
            If zero or more than one block is missing (the latter is the
            paper's *catastrophic* case — single parity cannot recover it).
        """
        self._check(parity, "parity")
        missing = [i for i, block in enumerate(blocks) if block is None]
        if len(missing) != 1:
            raise ReconstructionError(
                f"single-parity reconstruction needs exactly one missing "
                f"block, found {len(missing)}"
            )
        survivors = [block for block in blocks if block is not None]
        for block in survivors:
            self._check(block, "data")
        return xor_blocks(survivors + [parity])

    def zero_block(self) -> bytes:
        """An all-zero block: the XOR identity, used to seed accumulators."""
        return bytes(self.block_size_bytes)

    def accumulate(self, accumulator: bytes, block: bytes) -> bytes:
        """Fold one more block into a running XOR (Figure 7's protocol).

        The Non-clustered *lazy* degraded-mode transition delivers blocks as
        they arrive but keeps ``X0 ^ X1 ^ ...`` buffered; once every
        surviving block and the parity have been folded in, the accumulator
        *is* the missing block.
        """
        self._check(accumulator, "accumulator")
        self._check(block, "data")
        return xor_blocks([accumulator, block])
