"""Bitwise-XOR parity over track payloads.

The paper's schemes all use single-parity groups: the parity block is the
bitwise exclusive-or of the ``C - 1`` data blocks, so any *one* missing block
can be reconstructed from the remaining ``C - 1`` blocks of its group
(Section 1, ``XOp = X0 ^ X1 ^ X2 ^ X3``).

The codec here operates on real byte payloads so that the simulator can
verify reconstruction *byte-for-byte* rather than just book-keeping block
identities.  It also supports the Non-clustered "lazy" transition protocol
(Figure 7), which keeps a *running* XOR of already-delivered blocks and
folds in later arrivals — :meth:`ParityCodec.accumulate`.

Two batching/performance layers sit on top of the per-block primitives:

* :func:`xor_matrix` XOR-reduces many groups in one 2-D numpy operation —
  the cycle engine hands it every parity group reconstructed in a cycle at
  once instead of XORing blocks one at a time;
* :class:`MetaParityCodec` is the metadata-only counterpart used by the
  ``verify_payloads=False`` fast path: payloads are zero-length tokens, so
  every operation is O(1) while the *accounting* (exactly-one-missing
  checks, accumulator folding) stays identical to the byte-level codec.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import ReconstructionError


def xor_blocks(blocks: Iterable[bytes]) -> bytes:
    """Bitwise XOR of equal-length byte blocks.

    >>> xor_blocks([b"\\x0f", b"\\xf0"])
    b'\\xff'
    """
    accumulator: Optional[np.ndarray] = None
    length: Optional[int] = None
    for block in blocks:
        data = np.frombuffer(block, dtype=np.uint8)
        if accumulator is None:
            accumulator = data.copy()
            length = len(block)
        else:
            if len(block) != length:
                raise ReconstructionError(
                    f"parity over unequal block sizes: {len(block)} vs {length}"
                )
            accumulator ^= data
    if accumulator is None:
        raise ReconstructionError("parity of an empty block list is undefined")
    return accumulator.tobytes()


def xor_matrix(rows: Sequence[Sequence[bytes]]) -> list[bytes]:
    """XOR-reduce each row of blocks in one vectorized 2-D operation.

    ``rows`` is a list of block lists (one per parity group); every block
    must have the same byte length, but rows may hold different block
    *counts* — short rows are implicitly padded with zero blocks, the XOR
    identity (exactly how tail parity groups are padded on disk).

    Returns one reduced block per row.  This is the batched equivalent of
    calling :func:`xor_blocks` once per row, used by the cycle engine to
    rebuild every group touched in a cycle with a single numpy reduction.

    >>> xor_matrix([[b"\\x0f", b"\\xf0"], [b"\\x01"]])
    [b'\\xff', b'\\x01']
    """
    if not rows:
        return []
    length: Optional[int] = None
    for row in rows:
        if not row:
            raise ReconstructionError(
                "parity of an empty block list is undefined")
        for block in row:
            if length is None:
                length = len(block)
            elif len(block) != length:
                raise ReconstructionError(
                    f"parity over unequal block sizes: {len(block)} "
                    f"vs {length}"
                )
    assert length is not None
    if length == 0:
        return [b""] * len(rows)
    width = max(len(row) for row in rows)
    matrix = np.zeros((len(rows), width, length), dtype=np.uint8)
    for i, row in enumerate(rows):
        for j, block in enumerate(row):
            matrix[i, j] = np.frombuffer(block, dtype=np.uint8)
    reduced = np.bitwise_xor.reduce(matrix, axis=1)
    return [reduced[i].tobytes() for i in range(len(rows))]


class ParityCodec:
    """Encode/verify/reconstruct single-parity groups of fixed block size."""

    def __init__(self, block_size_bytes: int) -> None:
        if block_size_bytes <= 0:
            raise ValueError(
                f"block size must be positive, got {block_size_bytes}"
            )
        self.block_size_bytes = block_size_bytes

    def _check(self, block: bytes, role: str) -> None:
        if len(block) != self.block_size_bytes:
            raise ReconstructionError(
                f"{role} block has size {len(block)}, codec expects "
                f"{self.block_size_bytes}"
            )

    def encode(self, data_blocks: Sequence[bytes]) -> bytes:
        """Compute the parity block for a full set of data blocks."""
        if not data_blocks:
            raise ReconstructionError("cannot encode parity of zero blocks")
        for block in data_blocks:
            self._check(block, "data")
        return xor_blocks(data_blocks)

    def verify(self, data_blocks: Sequence[bytes], parity: bytes) -> bool:
        """True iff ``parity`` matches the XOR of ``data_blocks``."""
        self._check(parity, "parity")
        return self.encode(data_blocks) == parity

    def reconstruct(self, blocks: Sequence[Optional[bytes]],
                    parity: bytes) -> bytes:
        """Reconstruct the single missing (None) entry of ``blocks``.

        ``blocks`` is the full ordered list of data blocks with exactly one
        ``None`` hole; ``parity`` is the group's parity block.

        Raises
        ------
        ReconstructionError
            If zero or more than one block is missing (the latter is the
            paper's *catastrophic* case — single parity cannot recover it).
        """
        self._check(parity, "parity")
        missing = [i for i, block in enumerate(blocks) if block is None]
        if len(missing) != 1:
            raise ReconstructionError(
                f"single-parity reconstruction needs exactly one missing "
                f"block, found {len(missing)}"
            )
        survivors = [block for block in blocks if block is not None]
        for block in survivors:
            self._check(block, "data")
        return xor_blocks(survivors + [parity])

    def reconstruct_batch(self, rows: Sequence[Sequence[bytes]],
                          ) -> list[bytes]:
        """Rebuild one missing block per row in a single matrix XOR.

        Each row holds a group's *surviving* data blocks plus its parity
        block (zero padding is unnecessary: zero blocks are the XOR
        identity).  Returns the reconstructed blocks, row for row.
        """
        for row in rows:
            for block in row:
                self._check(block, "data")
        return xor_matrix(rows)

    def zero_block(self) -> bytes:
        """An all-zero block: the XOR identity, used to seed accumulators."""
        return bytes(self.block_size_bytes)

    def accumulate(self, accumulator: bytes, block: bytes) -> bytes:
        """Fold one more block into a running XOR (Figure 7's protocol).

        The Non-clustered *lazy* degraded-mode transition delivers blocks as
        they arrive but keeps ``X0 ^ X1 ^ ...`` buffered; once every
        surviving block and the parity have been folded in, the accumulator
        *is* the missing block.
        """
        self._check(accumulator, "accumulator")
        self._check(block, "data")
        return xor_blocks([accumulator, block])


#: The token standing in for any payload in metadata-only mode.
META_PAYLOAD = b""


class MetaParityCodec(ParityCodec):
    """The metadata-only codec: every payload is the zero-length token.

    Used by the ``verify_payloads=False`` fast path.  All the *accounting*
    of the byte-level codec is preserved — reconstruction still demands
    exactly one missing block, accumulators still fold — but no bytes are
    ever XORed or copied, so every operation is O(1) regardless of the
    track size.  Cycle metrics are therefore bit-identical to payload mode.
    """

    def __init__(self, block_size_bytes: int) -> None:
        # The *logical* block size is remembered for reports; physical
        # payloads are zero-length tokens.
        if block_size_bytes <= 0:
            raise ValueError(
                f"block size must be positive, got {block_size_bytes}"
            )
        self.block_size_bytes = block_size_bytes

    def _check(self, block: bytes, role: str) -> None:
        if block != META_PAYLOAD:
            raise ReconstructionError(
                f"{role} block carries {len(block)} payload bytes; the "
                "metadata-only codec expects zero-length tokens"
            )

    def encode(self, data_blocks: Sequence[bytes]) -> bytes:
        if not data_blocks:
            raise ReconstructionError("cannot encode parity of zero blocks")
        for block in data_blocks:
            self._check(block, "data")
        return META_PAYLOAD

    def verify(self, data_blocks: Sequence[bytes], parity: bytes) -> bool:
        self._check(parity, "parity")
        return self.encode(data_blocks) == parity

    def reconstruct(self, blocks: Sequence[Optional[bytes]],
                    parity: bytes) -> bytes:
        self._check(parity, "parity")
        missing = sum(1 for block in blocks if block is None)
        if missing != 1:
            raise ReconstructionError(
                f"single-parity reconstruction needs exactly one missing "
                f"block, found {missing}"
            )
        return META_PAYLOAD

    def reconstruct_batch(self, rows: Sequence[Sequence[bytes]],
                          ) -> list[bytes]:
        for row in rows:
            if not row:
                raise ReconstructionError(
                    "parity of an empty block list is undefined")
            for block in row:
                self._check(block, "data")
        return [META_PAYLOAD] * len(rows)

    def zero_block(self) -> bytes:
        return META_PAYLOAD

    def accumulate(self, accumulator: bytes, block: bytes) -> bytes:
        self._check(accumulator, "accumulator")
        self._check(block, "data")
        return META_PAYLOAD
