"""Degraded-churn benchmark cell: faults and arrivals at the same time.

``benchmarks/bench_degraded_churn.py`` runs a warm 1000-disk
Streaming-RAID farm that loses a disk and then faces ~30 arrivals every
cycle for the rest of the run — the "degraded + churning" state that
dominates simulated time in replication studies and flash-crowd
campaigns.  (No rebuild runs inside the measured segment: a toy farm
rebuilds in a couple dozen cycles and the repaired farm would spend the
rest of the segment healthy; the rebuild-under-churn merge is covered
bit-exactly by the determinism tests.)  The measured segment runs
twice, through the scalar per-cycle loop (admission at the front door)
and through the merged degraded-churn engine (admission and
reconstruction in one epoch), and the >= 5x wall-clock gate is
evaluated only after the full-state digests and the admit/reject
tallies prove the two runs bit-identical.

A second, smaller arc exercises the multi-failure generalisation: two
failed disks in *disjoint* parity groups must still build vectorised
epochs (``ff_residency > 0``) where the engine was previously 100%
scalar.

The cell logic lives here (importable, spawn-safe) so notebooks and the
benchmark script share one implementation.
"""

from __future__ import annotations

import time
from typing import Any

from repro.experiments.degradedbench import degraded_digest
from repro.experiments.scalegrid import build_scale_server
from repro.schemes import Scheme
from repro.units import seconds_to_microseconds

NUM_DISKS = 1000
SCHEME = Scheme.STREAMING_RAID
#: Scalar-mode cycles before the failure lands (start-up transient).
WARMUP_CYCLES = 5
#: Degraded steady-state cycles before the rebuild starts.
DEGRADED_WARMUP_CYCLES = 3
#: The measured segment: degraded, rebuilding, and churning throughout.
CYCLES = 150
#: Requests per cycle, sustained over the whole measured segment.
ARRIVALS_PER_CYCLE = 30
FAILED_DISK = 0
MIN_SPEEDUP = 5.0

#: The double-failure arc runs on a smaller farm: residency, not
#: wall-clock, is what it gates.
ARC_DISKS = 200
ARC_CYCLES = 40
ARC_ARRIVALS_PER_CYCLE = 4


def churn_arrivals(server: Any, start: int, cycles: int,
                   per_cycle: int) -> dict[int, tuple[Any, ...]]:
    """A deterministic round-robin arrival batch for every cycle."""
    names = server.catalog.names()
    arrivals: dict[int, tuple[Any, ...]] = {}
    for offset in range(cycles):
        base = offset * per_cycle
        arrivals[start + offset] = tuple(
            server.catalog.get(names[(base + k) % len(names)])
            for k in range(per_cycle))
    return arrivals


def run_degraded_churn_cell(fast_forward: bool) -> dict[str, Any]:
    """One measured run: warm farm, fail a disk, churn for the timer.

    Warm-up segments run in the same mode as the measured segment, so
    the fast cell enters the timed window with geometry and degraded
    tables warm; the full-state digest plus the admit/reject tallies
    keep the comparison honest.
    """
    t0 = time.perf_counter()
    server = build_scale_server(SCHEME, NUM_DISKS)
    names = server.catalog.names()
    per_object = max(1, NUM_DISKS // len(names))
    target = min(NUM_DISKS, server.scheduler.admission_limit)
    streams = 0
    for name in names:
        for _ in range(per_object):
            if streams >= target:
                break
            server.admit(name)
            streams += 1
    build_s = time.perf_counter() - t0

    server.run_cycles(WARMUP_CYCLES, fast_forward=fast_forward)
    server.scheduler.fail_disk(FAILED_DISK)
    server.run_cycles(DEGRADED_WARMUP_CYCLES, fast_forward=fast_forward)
    arrivals = churn_arrivals(server, server.cycle_index, CYCLES,
                              ARRIVALS_PER_CYCLE)

    t0 = time.perf_counter()
    reports, admitted, rejected = server.scheduler.run_churn(
        CYCLES, arrivals, fast_forward=fast_forward)
    run_s = time.perf_counter() - t0
    assert len(reports) == CYCLES

    report = server.report
    return {
        "engine": "fast" if fast_forward else "scalar",
        "scheme": SCHEME.value,
        "num_disks": NUM_DISKS,
        "streams": streams,
        "cycles": CYCLES,
        "arrivals_per_cycle": ARRIVALS_PER_CYCLE,
        "admitted": admitted,
        "rejected": rejected,
        "build_s": round(build_s, 4),
        "run_s": round(run_s, 4),
        "us_per_cycle": round(seconds_to_microseconds(run_s) / CYCLES, 1),
        "ff_engaged_cycles": report.ff_engaged_cycles,
        "ff_residency": round(report.ff_residency(), 4),
        "ff_disengagements": dict(sorted(
            report.ff_disengagements.items())),
        "state_sha256": degraded_digest(server),
    }


def check_pair(scalar: dict[str, Any], fast: dict[str, Any],
               min_speedup: float = MIN_SPEEDUP) -> dict[str, Any]:
    """The gate: state *and* admission tallies must match before the
    speedup is evaluated."""
    digests_equal = (
        scalar["state_sha256"] == fast["state_sha256"]
        and scalar["admitted"] == fast["admitted"]
        and scalar["rejected"] == fast["rejected"])
    speedup = (scalar["run_s"] / fast["run_s"]
               if fast["run_s"] > 0 else float("inf"))
    return {
        "digests_equal": digests_equal,
        "speedup": round(speedup, 2),
        "min_speedup": min_speedup,
        "fast_residency": fast["ff_residency"],
        "passed": digests_equal and speedup >= min_speedup,
    }


def _disjoint_partner(server: Any, first: int) -> int:
    """A second disk whose failure loses no data alongside ``first``."""
    for candidate in range(len(server.array.disks)):
        if candidate == first:
            continue
        probe = build_scale_server(SCHEME, len(server.array.disks))
        probe.scheduler.fail_disk(first)
        probe.scheduler.fail_disk(candidate)
        if not probe.scheduler._known_lost_tracks:
            return candidate
    raise RuntimeError("no disjoint failure partner in this layout")


def run_double_failure_arc(fast_forward: bool = True) -> dict[str, Any]:
    """Two disjoint failures under churn: the multi-failure epoch arc.

    Small on purpose — the gate here is residency (the engine builds
    >= 1 vectorised epoch where it used to be 100% scalar) and digest
    equality against the scalar loop, not wall-clock.
    """
    server = build_scale_server(SCHEME, ARC_DISKS)
    partner = _disjoint_partner(server, FAILED_DISK)
    names = server.catalog.names()
    for name in names:
        server.admit(name)
    server.run_cycles(WARMUP_CYCLES, fast_forward=fast_forward)
    server.scheduler.fail_disk(FAILED_DISK)
    server.scheduler.fail_disk(partner)
    arrivals = churn_arrivals(server, server.cycle_index + 2, ARC_CYCLES,
                              ARC_ARRIVALS_PER_CYCLE)
    reports, admitted, rejected = server.scheduler.run_churn(
        ARC_CYCLES, arrivals, fast_forward=fast_forward)
    assert len(reports) == ARC_CYCLES
    report = server.report
    return {
        "engine": "fast" if fast_forward else "scalar",
        "num_disks": ARC_DISKS,
        "failed_disks": [FAILED_DISK, partner],
        "cycles": ARC_CYCLES,
        "admitted": admitted,
        "rejected": rejected,
        "ff_engaged_cycles": report.ff_engaged_cycles,
        "ff_residency": round(report.ff_residency(), 4),
        "ff_disengagements": dict(sorted(
            report.ff_disengagements.items())),
        "state_sha256": degraded_digest(server),
    }
