"""Paper-scale benchmark grid cells, importable by spawn workers.

``benchmarks/bench_scale.py`` sweeps 100/500/1000 disks x four schemes
with and without a failure.  Each cell is independent, so the sweep is a
natural ensemble for :class:`repro.parallel.ParallelRunner` — but spawn
workers can only run functions they can *import*, and the ``benchmarks/``
directory is not a package on ``PYTHONPATH``.  The cell logic therefore
lives here; the benchmark script (and any notebook) delegates to it.

A cell returns both wall-clock timings and the deterministic simulator
metrics.  :func:`cell_digest` hashes only the deterministic part, which
is what the serial-vs-parallel regression guard compares.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Any, Optional

from repro.analysis.parameters import SystemParameters
from repro.media.catalog import Catalog
from repro.media.objects import MediaObject
from repro.schemes import Scheme
from repro.units import bytes_to_mb, seconds_to_microseconds

#: Toy 64-byte tracks: materialisation stays cheap at 1000 disks.
TRACK_BYTES = 64
CYCLES = 20
TRACKS = 100           # > CYCLES * k' so no stream completes mid-run
FAIL_CYCLE = 5
REPAIR_CYCLE = 15
SLOTS_PER_DISK = 8

#: Keys of a cell result that depend on the host, not the simulation.
WALL_CLOCK_KEYS = frozenset({"build_s", "run_s", "us_per_cycle",
                             "cycles_per_s"})


def cluster_size(scheme: Scheme, parity_group_size: int = 5) -> int:
    """Disks per cluster: C, except IB's C - 1 data-disk clusters.

    Parity declustering has no clusters; C keeps its object count (one
    object per C disks) comparable with the clustered layouts.
    """
    if scheme is Scheme.IMPROVED_BANDWIDTH:
        return parity_group_size - 1
    return parity_group_size


def scale_params(num_disks: int) -> SystemParameters:
    """Table-1 parameters with toy 64-byte tracks."""
    return SystemParameters.paper_table1(
        num_disks=num_disks,
        track_size_mb=bytes_to_mb(TRACK_BYTES),
        disk_capacity_mb=bytes_to_mb(TRACK_BYTES * 4000),
    )


def scale_catalog(count: int, tracks: int = TRACKS) -> Catalog:
    """Identical-shape objects with distinct deterministic payloads."""
    catalog = Catalog()
    for index in range(count):
        catalog.add(MediaObject(f"m{index}", 0.1875, tracks, seed=index))
    return catalog


def build_scale_server(scheme: Scheme, num_disks: int) -> Any:
    """A metadata-only server with one object per cluster."""
    from repro.server.server import MultimediaServer
    objects = num_disks // cluster_size(scheme)
    return MultimediaServer.build(
        scale_params(num_disks), 5, scheme,
        catalog=scale_catalog(objects),
        slots_per_disk=SLOTS_PER_DISK, verify_payloads=False)


def run_scale_cell(scheme: Scheme, num_disks: int, with_failure: bool,
                   fast_forward: bool = False) -> dict[str, Any]:
    """Build, load to one stream per disk, run 20 cycles; return metrics.

    The wall-clock fields (``build_s``/``run_s``/...) are measured on
    whatever host runs the cell; everything else is deterministic and
    identical across workers, hosts, and ``fast_forward`` settings.
    """
    t0 = time.perf_counter()
    server = build_scale_server(scheme, num_disks)
    build_s = time.perf_counter() - t0

    names = server.catalog.names()
    per_object = max(1, num_disks // len(names))
    target = min(num_disks, server.scheduler.admission_limit)
    admitted = 0
    for name in names:
        for _ in range(per_object):
            if admitted >= target:
                break
            server.admit(name)
            admitted += 1

    t0 = time.perf_counter()
    if with_failure:
        server.run_cycles(FAIL_CYCLE, fast_forward=fast_forward)
        server.fail_disk(0)
        server.run_cycles(REPAIR_CYCLE - FAIL_CYCLE,
                          fast_forward=fast_forward)
        server.repair_disk(0)
        server.run_cycles(CYCLES - REPAIR_CYCLE, fast_forward=fast_forward)
    else:
        server.run_cycles(CYCLES, fast_forward=fast_forward)
    run_s = time.perf_counter() - t0

    cycles = server.report.cycles
    result: dict[str, Any] = {
        "scheme": scheme.value,
        "num_disks": num_disks,
        "streams": admitted,
        "cycles": CYCLES,
        "with_failure": with_failure,
        "build_s": round(build_s, 4),
        "run_s": round(run_s, 4),
        "us_per_cycle": round(seconds_to_microseconds(run_s) / CYCLES, 1),
        "cycles_per_s": round(CYCLES / run_s, 1),
        "reads_executed": sum(r.reads_executed for r in cycles),
        "parity_reads": sum(r.parity_reads for r in cycles),
        "tracks_delivered": sum(r.tracks_delivered for r in cycles),
        "reconstructions": sum(r.reconstructions for r in cycles),
        "hiccups": sum(len(r.hiccups) for r in cycles),
        "buffered_peak": server.report.peak_buffered_tracks,
        "reads_per_disk_sha256": hashlib.sha256(
            json.dumps([d.reads for d in server.array.disks])
            .encode("utf-8")).hexdigest(),
    }
    if with_failure:
        assert not server.is_catastrophic
    assert result["tracks_delivered"] > 0
    return result


def cell_digest(result: dict[str, Any]) -> str:
    """SHA-256 over the deterministic part of one cell result."""
    stable = {key: value for key, value in result.items()
              if key not in WALL_CLOCK_KEYS}
    canonical = json.dumps(stable, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def grid_digest(results: list[dict[str, Any]]) -> str:
    """SHA-256 over a whole sweep (cell digests, in sweep order)."""
    joined = ",".join(cell_digest(result) for result in results)
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()


def grid_cells(sizes: tuple[int, ...], schemes: tuple[Scheme, ...],
               ) -> list[tuple[Scheme, int, bool]]:
    """The sweep's cell coordinates, in canonical (size-major) order."""
    return [(scheme, num_disks, with_failure)
            for num_disks in sizes
            for scheme in schemes
            for with_failure in (False, True)]


def run_scale_grid(sizes: tuple[int, ...],
                   schemes: Optional[tuple[Scheme, ...]] = None,
                   workers: int = 1,
                   fast_forward: bool = False) -> list[dict[str, Any]]:
    """Run the full sweep, optionally over a process pool.

    Results come back in canonical cell order regardless of worker
    count; :func:`grid_digest` over the output is therefore the
    serial-vs-parallel equality check.
    """
    from repro.parallel import ParallelRunner, TaskSpec
    from repro.schemes import ALL_IMPLEMENTED_SCHEMES
    if schemes is None:
        schemes = tuple(ALL_IMPLEMENTED_SCHEMES)
    tasks = [
        TaskSpec(run_scale_cell, args=(scheme, num_disks, with_failure),
                 kwargs={"fast_forward": fast_forward},
                 label=f"scale-{scheme.value}-{num_disks}"
                       f"{'-fail' if with_failure else ''}")
        for scheme, num_disks, with_failure in grid_cells(sizes, schemes)
    ]
    results: list[dict[str, Any]] = ParallelRunner(workers).run(tasks)
    return results
