"""Rebuild-window benchmark cell: declustered vs clustered at 1000 disks.

``benchmarks/bench_rebuild.py`` fails one disk of a warm 1000-disk farm
and times the online rebuild to completion, once under Streaming RAID
(reconstruction reads confined to the failed disk's ``C - 1`` cluster
mates) and once under the parity-declustered layout (reads drawn
round-robin from all ``D - 1`` survivors).  Two gates, evaluated only
after full-state digests prove the fast-forward and scalar runs of each
scheme bit-identical:

* the declustered window is at most half the clustered one (the
  declustering ratio ``alpha = (C-1)/(D-1)`` predicts ~0.13x here — the
  spare's write bandwidth, not one cluster's idle read bandwidth, is
  what limits the rebuild);
* the declustered survivor read-load spread (max/mean reconstruction
  reads per survivor) stays within 1.1 of uniform, where the clustered
  rebuild concentrates everything on 4 of the 999 survivors
  (spread ~250).

The catalog is a single archive object covering the *entire* block
design — prefixes and strided samples of the design measurably do not
balance (spreads of 1.5-3.8 at half coverage); only full coverage
reaches ~1.02.  That makes placement the dominant cost (~5M block
allocations per scheme), so the layout is built and placed once per
scheme and shared between that scheme's scalar and fast cells:
placement is immutable after ``place()`` and the only state the cells
mutate lives in their private arrays and schedulers.

The cell logic lives here (importable, spawn-safe) so notebooks and the
benchmark script share one implementation.
"""

from __future__ import annotations

import time
from typing import Any

from repro.analysis.parameters import SystemParameters
from repro.disk.drive import DiskArray
from repro.experiments.degradedbench import degraded_digest
from repro.faults.reliability import measure_rebuild_window
from repro.layout.clustered import ClusteredParityLayout
from repro.layout.declustered import DeclusteredParityLayout
from repro.media.catalog import Catalog
from repro.media.objects import MediaObject
from repro.sched.config import SchedulerConfig
from repro.sched.declustered import DeclusteredParityScheduler
from repro.sched.streaming_raid import StreamingRAIDScheduler
from repro.schemes import Scheme
from repro.units import bytes_to_mb

NUM_DISKS = 1000
PARITY_GROUP = 5
TRACK_BYTES = 64
#: Track positions per drive; the full-design archive needs ~4.9k.
POSITIONS_PER_DISK = 5200
#: Streams kept playing while the rebuild trickles through idle slots.
STREAMS = 4
#: Fixed slot count (as in the scale grid): toy 64-byte tracks make the
#: derived tracks-per-cycle zero, so the slot table is pinned instead.
SLOTS_PER_DISK = 8
#: Scalar/fast cycles before the failure lands (start-up transient).
WARMUP_CYCLES = 3
#: Spare write bandwidth in tracks/cycle — deliberately higher than one
#: cluster's idle read bandwidth (``slots_per_disk``), so the clustered
#: rebuild is read-side-bound and the declustered one is not.
REBUILD_WRITES_PER_CYCLE = 64
FAILED_DISK = 0
MAX_WINDOW_CYCLES = 100_000

MAX_WINDOW_RATIO = 0.5
MAX_READ_SPREAD = 1.1


def bench_params() -> SystemParameters:
    """Table-1 parameters with toy 64-byte tracks and deep drives."""
    return SystemParameters.paper_table1(
        num_disks=NUM_DISKS,
        track_size_mb=bytes_to_mb(TRACK_BYTES),
        disk_capacity_mb=bytes_to_mb(TRACK_BYTES * POSITIONS_PER_DISK),
    )


def full_design_catalog(design_rows: int) -> Catalog:
    """One archive object with exactly one parity group per design row."""
    catalog = Catalog()
    tracks = design_rows * (PARITY_GROUP - 1)
    catalog.add(MediaObject("archive", 0.1875, tracks, seed=11))
    return catalog


def build_scheme_layout(scheme: Scheme) -> tuple[Any, Catalog, float]:
    """Layout + placed catalog for one scheme (the expensive step, done
    once per scheme and shared by its scalar and fast cells)."""
    t0 = time.perf_counter()
    if scheme is Scheme.PARITY_DECLUSTERED:
        layout: Any = DeclusteredParityLayout(NUM_DISKS, PARITY_GROUP)
        rows = layout.design_size()
    else:
        layout = ClusteredParityLayout(NUM_DISKS, PARITY_GROUP)
        rows = DeclusteredParityLayout(NUM_DISKS,
                                       PARITY_GROUP).design_size()
    catalog = full_design_catalog(rows)
    layout.place_catalog(catalog, start_cluster=0)
    return layout, catalog, time.perf_counter() - t0


def run_rebuild_cell(scheme: Scheme, layout: Any, catalog: Catalog,
                     fast_forward: bool) -> dict[str, Any]:
    """One measured run: warm farm, fail disk 0, rebuild to completion.

    The shared layout is read-only here; the array and scheduler are
    cell-private, so the scalar and fast cells stay independent and the
    digest comparison stays honest.
    """
    from repro.server.server import MultimediaServer

    params = bench_params()
    config = SchedulerConfig.build(params, PARITY_GROUP, scheme,
                                   slots_per_disk=SLOTS_PER_DISK)
    spec = params.to_disk_spec(name=f"{scheme.value}-drive")
    array = DiskArray(NUM_DISKS, spec, store_payloads=False)
    layout.materialise(array)
    if scheme is Scheme.PARITY_DECLUSTERED:
        scheduler: Any = DeclusteredParityScheduler(layout, array, config,
                                                    verify_payloads=False)
    else:
        scheduler = StreamingRAIDScheduler(layout, array, config,
                                           verify_payloads=False)
    server = MultimediaServer(layout, array, scheduler, catalog)
    for _ in range(STREAMS):
        server.admit("archive")
    server.run_cycles(WARMUP_CYCLES, fast_forward=fast_forward)

    t0 = time.perf_counter()
    window = measure_rebuild_window(
        server, FAILED_DISK, writes_per_cycle=REBUILD_WRITES_PER_CYCLE,
        max_cycles=MAX_WINDOW_CYCLES, fast_forward=fast_forward)
    run_s = time.perf_counter() - t0

    return {
        "engine": "fast" if fast_forward else "scalar",
        "scheme": scheme.value,
        "num_disks": NUM_DISKS,
        "streams": STREAMS,
        "window_cycles": window.cycles,
        "window_hours": round(window.hours, 6),
        "rebuild_blocks": window.blocks,
        "read_spread": round(window.read_spread, 4),
        "max_survivor_reads": window.max_survivor_reads,
        "mean_survivor_reads": round(window.mean_survivor_reads, 4),
        "run_s": round(run_s, 4),
        "ff_engaged_cycles": window.ff_engaged_cycles,
        "state_sha256": degraded_digest(server),
    }


def run_scheme_pair(scheme: Scheme) -> dict[str, Any]:
    """Scalar + fast cells over one shared placement, with the digest."""
    layout, catalog, place_s = build_scheme_layout(scheme)
    scalar = run_rebuild_cell(scheme, layout, catalog, fast_forward=False)
    fast = run_rebuild_cell(scheme, layout, catalog, fast_forward=True)
    return {
        "scheme": scheme.value,
        "place_s": round(place_s, 2),
        "digests_equal": scalar["state_sha256"] == fast["state_sha256"],
        "scalar": scalar,
        "fast": fast,
    }


def check_gates(sr: dict[str, Any], pd: dict[str, Any]) -> dict[str, Any]:
    """The gates: digests must match *before* windows are compared."""
    digests_equal = sr["digests_equal"] and pd["digests_equal"]
    ratio = (pd["fast"]["window_cycles"] / sr["fast"]["window_cycles"]
             if sr["fast"]["window_cycles"] else float("inf"))
    spread = pd["fast"]["read_spread"]
    return {
        "digests_equal": digests_equal,
        "window_ratio": round(ratio, 4),
        "max_window_ratio": MAX_WINDOW_RATIO,
        "pd_read_spread": spread,
        "max_read_spread": MAX_READ_SPREAD,
        "sr_read_spread": sr["fast"]["read_spread"],
        "alpha": round((PARITY_GROUP - 1) / (NUM_DISKS - 1), 6),
        "passed": (digests_equal and ratio <= MAX_WINDOW_RATIO
                   and spread <= MAX_READ_SPREAD),
    }
