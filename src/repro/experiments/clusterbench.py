"""Cluster-scaling benchmark cells, importable by spawn workers.

``benchmarks/bench_cluster.py`` measures scale-out: the same 4-shard x
1000-disk workload (4000 disks, 10k+ streams cluster-wide) run with
``workers=1`` and ``workers=4`` through the session pool.  Spawn workers
can only run functions they can import, so — like the scale grid — the
cell logic lives here and the benchmark script delegates.

A cell returns wall-clock timings plus the deterministic cluster
metrics; :func:`cell_digest` hashes only the deterministic part, and the
:class:`~repro.cluster.runner.ClusterReport` digest inside it is the
serial-vs-parallel regression guard.  :func:`cost_per_stream_curve`
extends the Figure 9 analysis with the cluster cost closed form.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Any, Sequence

from repro.analysis.cost import cluster_cost_series
from repro.analysis.parameters import SystemParameters
from repro.cluster import ClusterSpec, run_cluster
from repro.schemes import Scheme

#: The acceptance-scale cluster: 4 x 1000 disks, ~10.4k stream capacity.
FULL_SHARDS = 4
FULL_DISKS_PER_SHARD = 1000
FULL_OBJECTS = 800
FULL_TRACKS = 200
FULL_SLOTS = 32
FULL_ADMISSION_LIMIT = 2600
FULL_CYCLES = 40
FULL_WINDOW = 10
FULL_ARRIVALS_PER_CYCLE = 300.0

#: CI-scale reduction: same shape, two shards, toy farm.
SMOKE_SHARDS = 2
SMOKE_DISKS_PER_SHARD = 40

#: Figure-9 extension knobs: the paper's 100 GB working set, C = 5.
CURVE_WORKING_SET_MB = 100_000.0
CURVE_REPLICATED_MB = 2_000.0
CURVE_SHARD_COUNTS = (1, 2, 4, 8, 16)

#: Keys of a cell result that depend on the host, not the simulation.
WALL_CLOCK_KEYS = frozenset({"wall_s", "streams_per_s"})


def full_spec(scheme: Scheme = Scheme.STREAMING_RAID,
              seed: int = 3) -> ClusterSpec:
    """The 4-shard / 4000-disk acceptance workload."""
    return ClusterSpec(
        scheme=scheme,
        shards=FULL_SHARDS,
        disks_per_shard=FULL_DISKS_PER_SHARD,
        objects=FULL_OBJECTS,
        tracks_per_object=FULL_TRACKS,
        slots_per_disk=FULL_SLOTS,
        admission_limit=FULL_ADMISSION_LIMIT,
        cycles=FULL_CYCLES,
        window=FULL_WINDOW,
        arrivals_per_cycle=FULL_ARRIVALS_PER_CYCLE,
        replicate_top_k=8,
        seed=seed,
        fast_forward=True,
    )


def smoke_spec(scheme: Scheme = Scheme.STREAMING_RAID,
               seed: int = 3) -> ClusterSpec:
    """A 2-shard reduced grid with the full spec's shape."""
    return ClusterSpec(
        scheme=scheme,
        shards=SMOKE_SHARDS,
        disks_per_shard=SMOKE_DISKS_PER_SHARD,
        objects=40,
        tracks_per_object=100,
        slots_per_disk=8,
        admission_limit=60,
        cycles=30,
        window=10,
        arrivals_per_cycle=8.0,
        replicate_top_k=4,
        seed=seed,
        fast_forward=True,
    )


def run_cluster_cell(spec: ClusterSpec, workers: int) -> dict[str, Any]:
    """One timed cluster run; wall clock plus deterministic metrics."""
    t0 = time.perf_counter()
    result = run_cluster(spec, workers=workers)
    wall_s = time.perf_counter() - t0
    return {
        "scheme": spec.scheme.value,
        "shards": spec.shards,
        "disks_per_shard": spec.disks_per_shard,
        "total_disks": spec.shards * spec.disks_per_shard,
        "cycles": spec.cycles,
        "workers": workers,
        "admitted": result.admitted,
        "rejected": result.rejected,
        "unarrived": result.unarrived,
        "capacity": result.capacity,
        "hiccups": result.report.total_hiccups,
        "delivered": result.report.total_delivered,
        "digest": result.digest(),
        "wall_s": round(wall_s, 4),
        "streams_per_s": round(result.admitted / wall_s, 1),
    }


def cell_digest(result: dict[str, Any]) -> str:
    """SHA-256 over the deterministic part of one cell result."""
    stable = {key: value for key, value in result.items()
              if key not in WALL_CLOCK_KEYS and key != "workers"}
    canonical = json.dumps(stable, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def cost_per_stream_curve(
        shard_counts: Sequence[int] = CURVE_SHARD_COUNTS,
        scheme: Scheme = Scheme.STREAMING_RAID,
        parity_group_size: int = 5) -> list[dict[str, Any]]:
    """The Figure-9 extension: cost per stream versus shard count."""
    params = SystemParameters.paper_table1(reserve_k=5)
    series = cluster_cost_series(
        params, parity_group_size, scheme, CURVE_WORKING_SET_MB,
        shard_counts, replicated_mb=CURVE_REPLICATED_MB)
    return [
        {
            "shards": breakdown.shards,
            "disks_per_shard": breakdown.per_shard.num_disks,
            "streams": breakdown.streams,
            "total_cost": round(breakdown.total, 2),
            "cost_per_stream": round(breakdown.cost_per_stream, 4),
        }
        for breakdown in series
    ]
