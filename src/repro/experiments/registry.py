"""The experiment registry: each paper table/figure as structured data.

Every entry returns an :class:`ExperimentResult` whose ``rows`` are plain
dicts (JSON-ready) and whose ``matches_paper`` flag re-asserts the values
EXPERIMENTS.md records.  Simulation-heavy reproductions (Figures 4–8)
live in the benchmark suite, which this registry points at via
``notes``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis import (
    SystemParameters,
    compare_schemes,
    figure9_cost_series,
    figure9_stream_series,
)
from repro.analysis.reliability import mttf_catastrophic_years
from repro.analysis.sizing import section1_scale
from repro.analysis.streams import k_sweep
from repro.errors import ConfigurationError
from repro.schemes import ALL_SCHEMES, Scheme


@dataclass(frozen=True)
class ExperimentResult:
    """One regenerated experiment."""

    experiment_id: str
    title: str
    rows: list[dict]
    matches_paper: bool
    notes: str = ""


def _table(experiment_id: str, parity_group_size: int,
           expected_streams: list[int],
           expected_buffers: list[int]) -> ExperimentResult:
    params = SystemParameters.paper_table1()
    results = compare_schemes(params, parity_group_size)
    rows = [results[s].as_row() for s in ALL_SCHEMES]
    matches = (
        [r["streams"] for r in rows] == expected_streams
        and [r["buffer_tracks"] for r in rows] == expected_buffers
    )
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"Scheme comparison at C = {parity_group_size} "
              f"(paper Table {experiment_id[-1]})",
        rows=rows,
        matches_paper=matches,
    )


def run_table2() -> ExperimentResult:
    """Table 2: C = 5."""
    return _table("table2", 5, [1041, 966, 966, 1263],
                  [10410, 3623, 2612, 10104])


def run_table3() -> ExperimentResult:
    """Table 3: C = 7."""
    return _table("table3", 7, [1125, 1035, 1035, 1273],
                  [15750, 4830, 3254, 15276])


def run_ksweep() -> ExperimentResult:
    """The Section 2 in-text N/D' versus k sweep."""
    ks = [1, 2, 4, 6, 8, 10]
    mpeg2 = k_sweep(SystemParameters.paper_section2(4.5), ks)
    mpeg1 = k_sweep(SystemParameters.paper_section2(1.5), ks)
    rows = [{"k": k, "mpeg2_streams_per_disk": round(mpeg2[k], 2),
             "mpeg1_streams_per_disk": round(mpeg1[k], 2)} for k in ks]
    matches = (abs(mpeg2[1] - 14.78) < 0.05
               and abs(mpeg2[2] - 16.28) < 0.05
               and abs(mpeg2[10] - 17.48) < 0.05)
    return ExperimentResult(
        experiment_id="ksweep",
        title="Section 2 in-text k-sweep (paper: 14.7/16.2/17.4 at MPEG-2)",
        rows=rows,
        matches_paper=matches,
    )


def run_fig9a() -> ExperimentResult:
    """Figure 9(a): cost versus parity-group size."""
    params = SystemParameters.paper_table1(reserve_k=5)
    series = figure9_cost_series(params, 100_000.0, range(2, 11))
    rows = []
    for index, c in enumerate(range(2, 11)):
        row = {"parity_group_size": c}
        for scheme in ALL_SCHEMES:
            row[f"cost_{scheme.value}"] = round(series[scheme][index].total)
        rows.append(row)
    # Shape assertions: NC cheapest everywhere; IB increasing.
    nc_cheapest = all(
        min((row[f"cost_{s.value}"], s) for s in ALL_SCHEMES)[1]
        is Scheme.NON_CLUSTERED for row in rows)
    ib = [row["cost_IB"] for row in rows]
    return ExperimentResult(
        experiment_id="fig9a",
        title="Figure 9(a): total cost vs parity-group size (shape-level; "
              "c_b/c_d calibrated, see EXPERIMENTS.md)",
        rows=rows,
        matches_paper=nc_cheapest and ib == sorted(ib),
        notes="absolute $ match the Section 5 worked examples within "
              "1% (SG/NC) and 11% (SR)",
    )


def run_fig9b() -> ExperimentResult:
    """Figure 9(b): streams versus parity-group size."""
    params = SystemParameters.paper_table1(reserve_k=5)
    series = figure9_stream_series(params, 100_000.0, range(2, 11))
    rows = []
    for index, c in enumerate(range(2, 11)):
        row = {"parity_group_size": c}
        for scheme in ALL_SCHEMES:
            row[f"streams_{scheme.value}"] = series[scheme][index][1]
        rows.append(row)
    ib = [row["streams_IB"] for row in rows]
    ib_dominates = all(
        row["streams_IB"] > max(row["streams_SR"], row["streams_SG"],
                                row["streams_NC"]) for row in rows)
    return ExperimentResult(
        experiment_id="fig9b",
        title="Figure 9(b): supported streams vs parity-group size",
        rows=rows,
        matches_paper=ib_dominates and ib == sorted(ib, reverse=True),
    )


def run_reliability() -> ExperimentResult:
    """The in-text MTTF claims of Sections 2 and 4."""
    big = SystemParameters.paper_table1(num_disks=1000)
    sr = mttf_catastrophic_years(big, 10, Scheme.STREAMING_RAID)
    ib = mttf_catastrophic_years(big, 10, Scheme.IMPROVED_BANDWIDTH)
    rows = [
        {"claim": "SR, D=1000, C=10 (paper ~1100y)",
         "measured_years": round(sr, 1)},
        {"claim": "IB, D=1000, C=10 (paper ~540y)",
         "measured_years": round(ib, 1)},
    ]
    return ExperimentResult(
        experiment_id="reliability",
        title="In-text MTTF claims (closed forms)",
        rows=rows,
        matches_paper=abs(sr - 1141.6) < 1 and abs(ib - 540.8) < 1,
        notes="Monte-Carlo and exact-chain validation: "
              "benchmarks/bench_reliability.py and "
              "tests/faults/test_markov.py (incl. the documented eq. 5 "
              "and eq. 6 findings)",
    )


def run_sizing() -> ExperimentResult:
    """Section 1's system-scale arithmetic."""
    scale = section1_scale()
    rows = [{
        "mpeg2_movies": scale.mpeg2_movies,
        "mpeg1_movies": scale.mpeg1_movies,
        "mpeg2_users": scale.mpeg2_users,
        "mpeg1_users": scale.mpeg1_users,
    }]
    return ExperimentResult(
        experiment_id="sizing",
        title="Section 1 scale (paper: ~300/~900 movies, ~6500/~20000 users)",
        rows=rows,
        matches_paper=rows[0] == {"mpeg2_movies": 329,
                                  "mpeg1_movies": 987,
                                  "mpeg2_users": 7111,
                                  "mpeg1_users": 21333},
    )


_REGISTRY: dict[str, Callable[[], ExperimentResult]] = {
    "table2": run_table2,
    "table3": run_table3,
    "ksweep": run_ksweep,
    "fig9a": run_fig9a,
    "fig9b": run_fig9b,
    "reliability": run_reliability,
    "sizing": run_sizing,
}


def list_experiments() -> list[str]:
    """Registered experiment ids, in presentation order."""
    return list(_REGISTRY)


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Regenerate one experiment by id."""
    try:
        runner = _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(_REGISTRY)
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r} (known: {known})"
        ) from None
    return runner()


def run_all() -> list[ExperimentResult]:
    """Regenerate every registered experiment."""
    return [runner() for runner in _REGISTRY.values()]
