"""Programmatic access to the paper's experiments.

The benchmark suite regenerates every table and figure for humans; this
package exposes the same computations as *structured data* so downstream
code (dashboards, regression gates, notebooks) can consume them:

>>> from repro.experiments import run_experiment
>>> result = run_experiment("table2")
>>> result.matches_paper
True
"""

from repro.experiments.registry import (
    ExperimentResult,
    list_experiments,
    run_all,
    run_experiment,
)

__all__ = [
    "ExperimentResult",
    "list_experiments",
    "run_all",
    "run_experiment",
]
