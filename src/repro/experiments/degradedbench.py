"""Degraded-mode benchmark cell: the stable-degraded engine at scale.

``benchmarks/bench_degraded.py`` runs a warm 1000-disk Streaming-RAID
farm with one failed disk and an online rebuild in flight — the paper's
single-failure degraded steady state, which dominates the simulated time
of every reliability experiment.  The measured segment is run twice,
through the scalar per-stream loop and through the stable-degraded
fast-forward engine, and the >= 5x wall-clock gate is only evaluated
after a full-state digest (cycle rows, per-disk read *and* write
counters, stream pointers and buffers, rebuild cursor) proves the two
runs bit-identical.

The cell logic lives here (importable, spawn-safe) so notebooks and the
benchmark script share one implementation.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Any

from repro.experiments.scalegrid import build_scale_server
from repro.schemes import Scheme
from repro.units import seconds_to_microseconds

NUM_DISKS = 1000
SCHEME = Scheme.STREAMING_RAID
#: Scalar cycles before the failure lands (stream start-up transient).
WARMUP_CYCLES = 5
#: Scalar cycles of degraded steady state before the rebuild starts.
DEGRADED_WARMUP_CYCLES = 3
#: The measured segment: degraded steady state with the rebuild running.
CYCLES = 150
FAILED_DISK = 0
#: Slow spare, so the rebuild spans a realistic slice of the segment.
REBUILD_WRITES_PER_CYCLE = 1
MIN_SPEEDUP = 5.0


def degraded_digest(server: Any) -> str:
    """SHA-256 over the full deterministic state of a finished cell.

    Everything the scalar loop mutates is covered: report rows, per-disk
    read and write counters (rebuild writes land on the spare), buffer
    tracker samples, every stream's pointers/buffers/parity holdings,
    and each rebuilder's cursor.  Wall-clock and the ff_* residency
    counters stay out by construction.
    """
    scheduler = server.scheduler
    streams = [
        [s.stream_id, s.status.value, s.next_read_track,
         s.next_delivery_track, s.delivery_start_cycle,
         s.delivered_tracks, s.hiccup_count, s.reconstructed_tracks,
         sorted(s.buffer), sorted(s.parity_buffer), sorted(s.lost_tracks)]
        for s in sorted(scheduler.streams.values(),
                        key=lambda s: s.stream_id)
    ]
    state = {
        "rows": server.report.to_rows(),
        "reads_per_disk": [d.reads for d in server.array.disks],
        "writes_per_disk": [d.writes for d in server.array.disks],
        "disk_states": [d.state.name for d in server.array.disks],
        "tracker": list(scheduler.tracker.samples),
        "streams": streams,
        "rebuilders": [
            [r.disk_id, r.blocks_rebuilt, r.reads_consumed, r.completed]
            for r in scheduler.rebuilders
        ],
        "cycle_index": scheduler.cycle_index,
    }
    canonical = json.dumps(state, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def run_degraded_cell(fast_forward: bool) -> dict[str, Any]:
    """One measured run: warm farm, fail, start rebuild, time the rest.

    The warm-up segments run in the same mode as the measured segment,
    so the fast cell enters the timed window with its geometry and
    degraded tables warm — the benchmark measures steady-state degraded
    throughput, not one-time cache population.  The full-state digest
    guard keeps this honest: both cells must still land on bit-identical
    state at the end.
    """
    t0 = time.perf_counter()
    server = build_scale_server(SCHEME, NUM_DISKS)
    names = server.catalog.names()
    per_object = max(1, NUM_DISKS // len(names))
    target = min(NUM_DISKS, server.scheduler.admission_limit)
    admitted = 0
    for name in names:
        for _ in range(per_object):
            if admitted >= target:
                break
            server.admit(name)
            admitted += 1
    build_s = time.perf_counter() - t0

    server.run_cycles(WARMUP_CYCLES, fast_forward=fast_forward)
    server.scheduler.fail_disk(FAILED_DISK)
    server.run_cycles(DEGRADED_WARMUP_CYCLES, fast_forward=fast_forward)
    rebuilder = server.scheduler.start_rebuild(
        FAILED_DISK, writes_per_cycle=REBUILD_WRITES_PER_CYCLE)

    t0 = time.perf_counter()
    server.run_cycles(CYCLES, fast_forward=fast_forward)
    run_s = time.perf_counter() - t0

    report = server.report
    return {
        "engine": "fast" if fast_forward else "scalar",
        "scheme": SCHEME.value,
        "num_disks": NUM_DISKS,
        "streams": admitted,
        "cycles": CYCLES,
        "rebuild_blocks": rebuilder.total_blocks,
        "rebuild_completed": rebuilder.completed,
        "build_s": round(build_s, 4),
        "run_s": round(run_s, 4),
        "us_per_cycle": round(seconds_to_microseconds(run_s) / CYCLES, 1),
        "ff_engaged_cycles": report.ff_engaged_cycles,
        "ff_residency": round(report.ff_residency(), 4),
        "ff_disengagements": dict(sorted(
            report.ff_disengagements.items())),
        "state_sha256": degraded_digest(server),
    }


def check_pair(scalar: dict[str, Any], fast: dict[str, Any],
               min_speedup: float = MIN_SPEEDUP) -> dict[str, Any]:
    """The gate: digests must match *before* the speedup is evaluated."""
    digests_equal = scalar["state_sha256"] == fast["state_sha256"]
    speedup = (scalar["run_s"] / fast["run_s"]
               if fast["run_s"] > 0 else float("inf"))
    return {
        "digests_equal": digests_equal,
        "speedup": round(speedup, 2),
        "min_speedup": min_speedup,
        "fast_residency": fast["ff_residency"],
        "passed": digests_equal and speedup >= min_speedup,
    }
