"""Churn benchmark cells: VoD-scale admission churn, scalar vs engine.

``benchmarks/bench_churn.py`` drives a 1000-disk Streaming-RAID farm
with a high-rate Zipf/Poisson request trace — continuous arrivals and
completions, the workload the paper's front door faces — once through
the per-cycle scalar loop and once through the scheduler's churn engine
(``run_workload(fast_forward=True)``).  The cell logic lives here so
spawn workers and tests can import it; the benchmark script is the
human-facing driver.

Two equality guards make the speedup claim falsifiable:

* the **trace digest** proves both runs consumed byte-identical request
  traces (the vectorised generator against its scalar contract);
* the **metrics fingerprint** hashes every deterministic outcome — the
  admitted/rejected/unarrived split, per-disk read counters, cycle
  aggregates, and the rendered summary — so a fast-but-wrong engine
  cannot pass.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Any

from repro.experiments.scalegrid import scale_catalog, scale_params
from repro.schemes import Scheme
from repro.units import seconds_to_microseconds
from repro.workload import CompiledTrace, WorkloadGenerator, compile_trace

NUM_DISKS = 1000
CYCLES = 150
HORIZON_CYCLES = 120
ARRIVALS_PER_CYCLE = 30.0
ZIPF_THETA = 0.3
SEED = 42

#: Sized for churn, not for the slot-budget cliff: with ~600 concurrent
#: streams over 200 objects at theta=0.3 the hottest cluster sees ~10
#: concurrent readers, so 32 slots keeps every healthy cycle drop-free
#: while the explicit admission limit makes the front door reject.
SLOTS_PER_DISK = 32
ADMISSION_LIMIT = 600

#: The acceptance gate: the churn engine must beat the scalar loop by
#: at least this factor on the flagship cell.
MIN_SPEEDUP = 3.0


def build_churn_server() -> Any:
    """A 1000-disk Streaming-RAID farm shaped for admission churn."""
    from repro.server.server import MultimediaServer
    return MultimediaServer.build(
        scale_params(NUM_DISKS), 5, Scheme.STREAMING_RAID,
        catalog=scale_catalog(NUM_DISKS // 5),
        slots_per_disk=SLOTS_PER_DISK,
        admission_limit=ADMISSION_LIMIT,
        verify_payloads=False)


def churn_trace(server: Any) -> CompiledTrace:
    """The benchmark's fixed request trace, compiled once per server."""
    cycle_length = server.config.cycle_length_s
    generator = WorkloadGenerator(
        server.catalog,
        arrival_rate_per_s=ARRIVALS_PER_CYCLE / cycle_length,
        zipf_theta=ZIPF_THETA, seed=SEED)
    return compile_trace(generator.trace(HORIZON_CYCLES * cycle_length),
                         cycle_length)


def churn_fingerprint(server: Any, result: Any) -> str:
    """SHA-256 over every deterministic outcome of one churn run."""
    cycles = server.report.cycles
    stable = {
        "admitted": result.admitted,
        "rejected": result.rejected,
        "unarrived": result.unarrived,
        "reads_executed": sum(r.reads_executed for r in cycles),
        "parity_reads": sum(r.parity_reads for r in cycles),
        "tracks_delivered": sum(r.tracks_delivered for r in cycles),
        "reconstructions": sum(r.reconstructions for r in cycles),
        "hiccups": sum(len(r.hiccups) for r in cycles),
        "streams_active": [r.streams_active for r in cycles],
        "streams_terminated": [r.streams_terminated for r in cycles],
        "buffered_peak": server.report.peak_buffered_tracks,
        "reads_per_disk": [d.reads for d in server.array.disks],
        "summary": server.report.summary(),
    }
    canonical = json.dumps(stable, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def run_churn_cell(fast_forward: bool,
                   cycles: int = CYCLES) -> dict[str, Any]:
    """Build the farm, run the churn trace, return metrics + guards."""
    t0 = time.perf_counter()
    server = build_churn_server()
    build_s = time.perf_counter() - t0
    compiled = churn_trace(server)

    t0 = time.perf_counter()
    result = server.run_workload(compiled, cycles,
                                 fast_forward=fast_forward)
    run_s = time.perf_counter() - t0

    assert result.admitted > 0
    return {
        "engine": "churn" if fast_forward else "scalar",
        "num_disks": NUM_DISKS,
        "cycles": cycles,
        "requests": compiled.total,
        "admitted": result.admitted,
        "rejected": result.rejected,
        "unarrived": result.unarrived,
        "build_s": round(build_s, 4),
        "run_s": round(run_s, 4),
        "us_per_cycle": round(seconds_to_microseconds(run_s) / cycles, 1),
        "trace_sha256": compiled.digest(),
        "metrics_sha256": churn_fingerprint(server, result),
    }


def check_pair(scalar: dict[str, Any], churn: dict[str, Any],
               ) -> dict[str, Any]:
    """The gate: identical traces, identical metrics, >= 3x speedup."""
    if scalar["trace_sha256"] != churn["trace_sha256"]:
        raise AssertionError("trace digests diverge: the two runs did not "
                             "consume the same request trace")
    if scalar["metrics_sha256"] != churn["metrics_sha256"]:
        raise AssertionError("metrics fingerprints diverge: the churn "
                             "engine changed simulation outcomes")
    speedup = scalar["run_s"] / churn["run_s"]
    return {
        "speedup": round(speedup, 2),
        "min_speedup": MIN_SPEEDUP,
        "passed": speedup >= MIN_SPEEDUP,
        "trace_sha256": scalar["trace_sha256"],
        "metrics_sha256": scalar["metrics_sha256"],
    }
