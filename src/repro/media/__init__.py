"""Continuous-media objects and the content catalog."""

from repro.media.catalog import Catalog, uniform_catalog
from repro.media.objects import MPEG1_MB_S, MPEG2_MB_S, MediaObject, movie

__all__ = [
    "Catalog",
    "MPEG1_MB_S",
    "MPEG2_MB_S",
    "MediaObject",
    "movie",
    "uniform_catalog",
]
