"""Content catalog: the set of disk-resident objects plus popularity weights.

The paper assumes a working set of movies resident on disk (objects not on
disk are fetched from tertiary storage, which this reproduction models in
:mod:`repro.tertiary`).  The catalog tracks objects by name and exposes the
popularity distribution used by the workload generator (video-on-demand
request popularity is classically Zipf-like).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.media.objects import MediaObject


class Catalog:
    """An ordered collection of uniquely named media objects."""

    def __init__(self, objects: Iterable[MediaObject] = ()) -> None:
        self._objects: dict[str, MediaObject] = {}
        self._weights: dict[str, float] = {}
        for obj in objects:
            self.add(obj)

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, name: str) -> bool:
        return name in self._objects

    def __iter__(self) -> Iterator[MediaObject]:
        return iter(self._objects.values())

    def add(self, obj: MediaObject, popularity: float = 1.0) -> None:
        """Add an object with an (unnormalised) popularity weight."""
        if obj.name in self._objects:
            raise ValueError(f"duplicate object name: {obj.name!r}")
        if popularity <= 0:
            raise ValueError(f"popularity must be positive, got {popularity}")
        self._objects[obj.name] = obj
        self._weights[obj.name] = float(popularity)

    def get(self, name: str) -> MediaObject:
        """Look up an object by name (KeyError if absent)."""
        return self._objects[name]

    def names(self) -> list[str]:
        """Object names in insertion order."""
        return list(self._objects)

    def objects(self) -> list[MediaObject]:
        """Objects in insertion order."""
        return list(self._objects.values())

    def popularity(self, name: str) -> float:
        """Normalised popularity of one object (sums to 1 over the catalog)."""
        total = sum(self._weights.values())
        return self._weights[name] / total

    def popularity_vector(self) -> list[float]:
        """Normalised popularity in insertion order."""
        total = sum(self._weights.values())
        return [self._weights[name] / total for name in self._objects]

    def set_zipf_popularity(self, theta: float = 1.0) -> None:
        """Assign Zipf(theta) weights by insertion rank (rank 1 = first added).

        ``weight(rank) = 1 / rank**theta`` — the standard VoD popularity
        skew; ``theta = 0`` gives a uniform catalog.
        """
        if theta < 0:
            raise ValueError(f"zipf exponent must be non-negative, got {theta}")
        for rank, name in enumerate(self._objects, start=1):
            self._weights[name] = 1.0 / (rank ** theta)

    def total_tracks(self) -> int:
        """Total number of data tracks across all objects."""
        return sum(obj.num_tracks for obj in self._objects.values())

    def total_size_mb(self, track_size_mb: float) -> float:
        """Total data volume of the catalog in MB."""
        return self.total_tracks() * track_size_mb


def uniform_catalog(count: int, bandwidth_mb_s: float, num_tracks: int,
                    prefix: str = "object") -> Catalog:
    """A catalog of ``count`` identical-shape objects with distinct payloads."""
    if count <= 0:
        raise ValueError(f"catalog size must be positive, got {count}")
    catalog = Catalog()
    for index in range(count):
        catalog.add(MediaObject(
            name=f"{prefix}-{index}",
            bandwidth_mb_s=bandwidth_mb_s,
            num_tracks=num_tracks,
            seed=index,
        ))
    return catalog
