"""Continuous-media objects (movies).

A :class:`MediaObject` is a constant-bandwidth object striped over the
server's disks.  Real video payloads are replaced by *deterministic
pseudo-random track payloads* (seeded per object and track), which is enough
for the scheme logic — only sizes and bandwidths matter — while letting the
simulator verify XOR reconstruction byte-for-byte.  This substitution is
recorded in DESIGN.md Section 2.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.units import mbits_per_sec
from repro.units import minutes  # noqa: F401  (movie() doctest namespace)

#: MPEG-1, "low TV quality": about 1.5 megabits per second (paper Section 1).
MPEG1_MB_S = mbits_per_sec(1.5)

#: MPEG-2, "good TV quality": about 4.5 megabits per second (paper Section 1).
MPEG2_MB_S = mbits_per_sec(4.5)


@dataclass(frozen=True)
class MediaObject:
    """One continuous-media object.

    Attributes
    ----------
    name:
        Unique identifier within a catalog.
    bandwidth_mb_s:
        ``b_o``: the constant delivery bandwidth in MB/s.
    num_tracks:
        Object length in disk tracks (units of ``B``).
    seed:
        Per-object payload seed; distinct seeds give distinct payloads.
    """

    name: str
    bandwidth_mb_s: float
    num_tracks: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.bandwidth_mb_s <= 0:
            raise ValueError(
                f"object bandwidth must be positive, got {self.bandwidth_mb_s}"
            )
        if self.num_tracks <= 0:
            raise ValueError(
                f"object length must be positive, got {self.num_tracks} tracks"
            )

    def duration_s(self, track_size_mb: float) -> float:
        """Playback duration at the object's bandwidth."""
        return self.num_tracks * track_size_mb / self.bandwidth_mb_s

    def size_mb(self, track_size_mb: float) -> float:
        """Total object size in MB."""
        return self.num_tracks * track_size_mb

    def track_payload(self, track_index: int, track_size_bytes: int) -> bytes:
        """Deterministic payload of one track.

        Derived by expanding SHA-256 over ``(name, seed, track_index)``;
        stable across runs and platforms.
        """
        if not 0 <= track_index < self.num_tracks:
            raise IndexError(
                f"track {track_index} out of range for {self.name!r} "
                f"({self.num_tracks} tracks)"
            )
        if track_size_bytes <= 0:
            raise ValueError("track size must be positive")
        material = f"{self.name}:{self.seed}:{track_index}".encode("utf-8")
        chunks: list[bytes] = []
        produced = 0
        counter = 0
        while produced < track_size_bytes:
            chunk = hashlib.sha256(material + counter.to_bytes(4, "little"))
            chunks.append(chunk.digest())
            produced += 32
            counter += 1
        return b"".join(chunks)[:track_size_bytes]


def movie(name: str, bandwidth_mb_s: float, duration_s: float,
          track_size_mb: float, seed: int = 0) -> MediaObject:
    """Build a :class:`MediaObject` from a duration instead of a track count.

    >>> m = movie("demo", MPEG1_MB_S, minutes(90), 0.05)
    >>> m.num_tracks
    20250
    """
    num_tracks = max(1, round(bandwidth_mb_s * duration_s / track_size_mb))
    return MediaObject(name=name, bandwidth_mb_s=bandwidth_mb_s,
                       num_tracks=num_tracks, seed=seed)
