"""The abstract data-layout interface.

A layout answers, for every object in a catalog:

* where each data track lives (``data_address``);
* which parity group a track belongs to (``group_of``);
* the full physical footprint of a group (``group_span``);
* what a given disk holds (``blocks_on_disk``) — needed to work out which
  streams a disk failure touches;
* whether a set of simultaneous failures is *catastrophic*, i.e. some
  parity group has lost two or more members (Section 1).

Layouts also know how to *materialise* themselves onto a
:class:`~repro.disk.drive.DiskArray`: writing deterministic track payloads
and their XOR parity so reconstruction can be verified byte-for-byte.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.disk.drive import DiskArray
from repro.errors import ConfigurationError, LayoutError
from repro.layout.address import BlockKind, DiskAddress, GroupSpan, StoredBlock
from repro.media.catalog import Catalog
from repro.media.objects import MediaObject
from repro.parity.xor import xor_blocks, xor_matrix
from repro.units import mb_to_bytes

#: How many placement deltas a layout retains.  Once the log outgrows
#: this, the oldest entries are dropped and the *floor* rises — callers
#: asking for history below the floor get ``None`` and must fall back to
#: wholesale invalidation.
DELTA_LOG_LIMIT = 256


@dataclass(frozen=True)
class PlacementDelta:
    """One placement change: which epoch it created, and what moved.

    ``kind`` is ``"place"`` (addresses were appended — every previously
    cached lookup stays valid) or ``"remove"`` (the named object's
    addresses were freed — only caches mentioning that object die).
    """

    epoch: int
    kind: str
    name: str


class DataLayout(abc.ABC):
    """Common machinery for parity-group layouts.

    Concrete subclasses decide cluster geometry and parity placement by
    implementing :meth:`_data_disk_for` and :meth:`_parity_disk_for`;
    everything else (per-disk slot allocation, lookup tables, catastrophe
    detection, materialisation) is shared.
    """

    def __init__(self, num_disks: int, parity_group_size: int) -> None:
        if parity_group_size < 2:
            raise ConfigurationError(
                f"parity group size must be >= 2, got {parity_group_size}"
            )
        if num_disks < parity_group_size:
            raise ConfigurationError(
                f"need at least C={parity_group_size} disks, got {num_disks}"
            )
        self.num_disks = num_disks
        self.parity_group_size = parity_group_size
        self._objects: dict[str, MediaObject] = {}
        self._start_cluster: dict[str, int] = {}
        self._data_addr: dict[tuple[str, int], DiskAddress] = {}
        self._parity_addr: dict[tuple[str, int], DiskAddress] = {}
        self._disk_contents: dict[int, list[StoredBlock]] = {
            disk_id: [] for disk_id in range(num_disks)
        }
        self._next_position = [0] * num_disks
        #: Track slots freed by removed objects, reused before the
        #: high-water mark grows (the tertiary purge/reload cycle of
        #: Section 1 swaps objects in and out of the same disks).
        self._free_positions: dict[int, list[int]] = {
            disk_id: [] for disk_id in range(num_disks)
        }
        #: Placement epoch: bumped whenever addresses change (place/remove).
        #: Schedulers key their cycle-plan caches on this.
        self._epoch = 0
        #: Bounded log of recent placement changes so schedulers can
        #: bridge an epoch gap with per-object evictions instead of
        #: dropping every cached plan (see :meth:`deltas_since`).
        self._delta_log: list[PlacementDelta] = []
        self._delta_floor = 0
        # Memoized hot-path lookups, flushed on every placement change.
        self._span_cache: dict[tuple[str, int], GroupSpan] = {}
        self._tracks_cache: dict[tuple[str, int], list[int]] = {}
        self._cluster_cache: dict[tuple[str, int], int] = {}
        self._geometry_cache: dict[
            tuple[str, int],
            tuple[tuple[tuple[int, int], ...], tuple[int, int]]] = {}
        self._names_cache: Optional[frozenset[str]] = None
        self._block_index: Optional[dict[tuple[int, int], StoredBlock]] = None

    # -- cache management ---------------------------------------------------

    @property
    def epoch(self) -> int:
        """Monotonic counter of placement changes (place/remove calls)."""
        return self._epoch

    def _invalidate_caches(self) -> None:
        self._epoch += 1
        self._span_cache.clear()
        self._tracks_cache.clear()
        self._cluster_cache.clear()
        self._geometry_cache.clear()
        self._names_cache = None
        self._block_index = None
        # Wholesale invalidation abandons delta history: raise the floor
        # so deltas_since() callers below it fall back to a full rebuild.
        self._delta_log.clear()
        self._delta_floor = self._epoch

    def _record_delta(self, kind: str, name: str) -> None:
        """Bump the epoch for one placement change, evicting surgically.

        ``place`` only appends addresses, so every memoized per-object
        lookup survives; ``remove`` kills just the removed object's
        entries.  The object-set caches (:attr:`object_names`, the block
        reverse index) are rebuilt lazily either way.
        """
        self._epoch += 1
        self._names_cache = None
        self._block_index = None
        if kind == "remove":
            for cache in (self._span_cache, self._tracks_cache,
                          self._cluster_cache, self._geometry_cache):
                for key in [k for k in cache if k[0] == name]:
                    del cache[key]
        self._delta_log.append(PlacementDelta(self._epoch, kind, name))
        if len(self._delta_log) > DELTA_LOG_LIMIT:
            dropped = len(self._delta_log) - DELTA_LOG_LIMIT
            del self._delta_log[:dropped]
            self._delta_floor = self._delta_log[0].epoch - 1

    def deltas_since(self, epoch: int) -> Optional[tuple[PlacementDelta, ...]]:
        """Placement changes after ``epoch``, oldest first.

        Returns ``None`` when ``epoch`` predates the retained window (the
        log is bounded by :data:`DELTA_LOG_LIMIT`) — callers must then
        invalidate wholesale.  Returns ``()`` when nothing changed.
        """
        if epoch < self._delta_floor:
            return None
        return tuple(d for d in self._delta_log if d.epoch > epoch)

    # -- geometry to be provided by subclasses ---------------------------

    @property
    @abc.abstractmethod
    def num_clusters(self) -> int:
        """Number of clusters the disks are grouped into."""

    @property
    @abc.abstractmethod
    def data_disks_per_group(self) -> int:
        """Data blocks per parity group (``C - 1``)."""

    @abc.abstractmethod
    def cluster_of(self, disk_id: int) -> int:
        """Cluster index of a disk."""

    @abc.abstractmethod
    def cluster_disks(self, cluster: int) -> list[int]:
        """Disk ids of one cluster, ascending."""

    @abc.abstractmethod
    def is_parity_disk(self, disk_id: int) -> bool:
        """True if the disk is *dedicated* to parity (clustered layouts)."""

    @abc.abstractmethod
    def _data_disk_for(self, obj: MediaObject, group: int, offset: int) -> int:
        """Disk holding data block ``offset`` of parity group ``group``."""

    @abc.abstractmethod
    def _parity_disk_for(self, obj: MediaObject, group: int) -> int:
        """Disk holding the parity block of parity group ``group``."""

    # -- placement --------------------------------------------------------

    @property
    def objects(self) -> list[MediaObject]:
        """Objects placed so far, in placement order."""
        return list(self._objects.values())

    def place(self, obj: MediaObject, start_cluster: Optional[int] = None) -> None:
        """Assign disk addresses to every track and parity block of ``obj``.

        Parity groups are allocated round-robin over clusters starting at
        ``start_cluster`` (Section 2: "if the first parity group for an
        object is located on cluster h, then the j-th parity group for that
        object is located on cluster h + j mod Nc").
        """
        if obj.name in self._objects:
            raise LayoutError(f"object {obj.name!r} already placed")
        if start_cluster is None:
            start_cluster = len(self._objects) % self.num_clusters
        if not 0 <= start_cluster < self.num_clusters:
            raise LayoutError(
                f"start cluster {start_cluster} out of range "
                f"(0..{self.num_clusters - 1})"
            )
        self._objects[obj.name] = obj
        self._start_cluster[obj.name] = start_cluster
        stripe = self.data_disks_per_group
        for group in range(self.group_count(obj)):
            for offset in range(stripe):
                track = group * stripe + offset
                if track >= obj.num_tracks:
                    break
                disk_id = self._data_disk_for(obj, group, offset)
                address = self._allocate(disk_id)
                self._data_addr[(obj.name, track)] = address
                self._disk_contents[disk_id].append(
                    StoredBlock(obj.name, BlockKind.DATA, track)
                )
            parity_disk = self._parity_disk_for(obj, group)
            address = self._allocate(parity_disk)
            self._parity_addr[(obj.name, group)] = address
            self._disk_contents[parity_disk].append(
                StoredBlock(obj.name, BlockKind.PARITY, group)
            )
        self._record_delta("place", obj.name)

    def place_catalog(self, catalog: Catalog,
                      start_cluster: Optional[int] = None) -> None:
        """Place every object of a catalog.

        ``start_cluster`` forces every object's first parity group onto one
        cluster (useful for reproducing the paper's worked failure
        scenarios); by default objects round-robin over clusters.
        """
        for obj in catalog:
            self.place(obj, start_cluster=start_cluster)

    # Allocation helper: only reachable from place(), which owns the bump.
    def _allocate(self, disk_id: int) -> DiskAddress:  # repro: allow(epoch-cache)
        free = self._free_positions[disk_id]
        if free:
            return DiskAddress(disk_id, free.pop())
        position = self._next_position[disk_id]
        self._next_position[disk_id] += 1
        return DiskAddress(disk_id, position)

    def remove(self, name: str) -> list[DiskAddress]:
        """Un-place an object, freeing its slots for reuse.

        Returns the freed physical addresses so the caller can discard the
        payloads from the drives (Section 1: "one or more disk-resident
        objects must be purged to make space").
        """
        obj = self.object(name)
        freed: list[DiskAddress] = []
        for track in range(obj.num_tracks):
            freed.append(self._data_addr.pop((name, track)))
        for group in range(self.group_count(obj)):
            freed.append(self._parity_addr.pop((name, group)))
        for address in freed:
            self._free_positions[address.disk_id].append(address.position)
        for disk_id in set(a.disk_id for a in freed):
            self._disk_contents[disk_id] = [
                block for block in self._disk_contents[disk_id]
                if block.object_name != name
            ]
        del self._objects[name]
        del self._start_cluster[name]
        self._record_delta("remove", name)
        return freed

    def occupied_positions(self, disk_id: int) -> int:
        """Slots currently holding blocks on a disk (high-water - freed)."""
        return self._next_position[disk_id] - \
            len(self._free_positions[disk_id])

    # Transient probe: simulates place() then restores all state, so the
    # epoch is unchanged on exit by construction.
    def placement_demand(self, obj: MediaObject,  # repro: allow(epoch-cache)
                         start_cluster: Optional[int] = None,
                         ) -> dict[int, int]:
        """Blocks per disk that placing ``obj`` would allocate.

        Lets callers check fit against drive capacities *before* placing
        (placement itself is unconditional — the layout does not know the
        drives' sizes).
        """
        if obj.name in self._objects:
            raise LayoutError(f"object {obj.name!r} already placed")
        if start_cluster is None:
            start_cluster = len(self._objects) % self.num_clusters
        demand: dict[int, int] = {}
        self._start_cluster[obj.name] = start_cluster
        try:
            stripe = self.data_disks_per_group
            for group in range(self.group_count(obj)):
                for offset in range(stripe):
                    if group * stripe + offset >= obj.num_tracks:
                        break
                    disk_id = self._data_disk_for(obj, group, offset)
                    demand[disk_id] = demand.get(disk_id, 0) + 1
                parity_disk = self._parity_disk_for(obj, group)
                demand[parity_disk] = demand.get(parity_disk, 0) + 1
        finally:
            del self._start_cluster[obj.name]
        return demand

    # -- lookups ----------------------------------------------------------

    def object(self, name: str) -> MediaObject:
        """Look up a placed object."""
        try:
            return self._objects[name]
        except KeyError:
            raise LayoutError(f"object {name!r} is not placed") from None

    def has_object(self, name: str) -> bool:
        """True if an object of that name is currently placed (O(1))."""
        return name in self._objects

    @property
    def object_names(self) -> frozenset[str]:
        """Names of every placed object, cached until placement changes.

        Admission consults this on every request; rebuilding a set from
        :attr:`objects` per admission is O(catalog) and shows up at scale.
        """
        if self._names_cache is None:
            self._names_cache = frozenset(self._objects)
        return self._names_cache

    def start_cluster(self, name: str) -> int:
        """Cluster of object ``name``'s first parity group."""
        self.object(name)
        return self._start_cluster[name]

    def group_count(self, obj: MediaObject) -> int:
        """Number of parity groups the object occupies."""
        stripe = self.data_disks_per_group
        return (obj.num_tracks + stripe - 1) // stripe

    def group_of(self, name: str, track: int) -> tuple[int, int]:
        """``(group_index, offset_within_group)`` of one data track."""
        obj = self.object(name)
        if not 0 <= track < obj.num_tracks:
            raise LayoutError(
                f"track {track} out of range for {name!r} "
                f"({obj.num_tracks} tracks)"
            )
        stripe = self.data_disks_per_group
        return track // stripe, track % stripe

    # Geometry memo: keyed by (name, group), placement is fixed at
    # construction, so the write is idempotent and value-deterministic —
    # safe for ff eligibility probes to trigger.  # repro: allow(R8)
    def group_tracks(self, name: str, group: int) -> list[int]:
        """The data-track indices of one parity group, ascending.

        Returns the memoized list itself — treat it as immutable.
        """
        key = (name, group)
        cached = self._tracks_cache.get(key)
        if cached is not None:
            return cached
        obj = self.object(name)
        stripe = self.data_disks_per_group
        first = group * stripe
        if not 0 <= first < obj.num_tracks:
            raise LayoutError(f"group {group} out of range for {name!r}")
        tracks = list(range(first, min(first + stripe, obj.num_tracks)))
        self._tracks_cache[key] = tracks
        return tracks

    def data_address(self, name: str, track: int) -> DiskAddress:
        """Physical address of one data track."""
        self.group_of(name, track)  # validates
        return self._data_addr[(name, track)]

    def parity_address(self, name: str, group: int) -> DiskAddress:
        """Physical address of one parity block."""
        key = (name, group)
        if key not in self._parity_addr:
            raise LayoutError(f"no parity group {group} for object {name!r}")
        return self._parity_addr[key]

    # Geometry memo: keyed by (name, group), placement is fixed at
    # construction, so the write is idempotent and value-deterministic —
    # safe for ff eligibility probes to trigger.  # repro: allow(R8)
    def group_span(self, name: str, group: int) -> GroupSpan:
        """The full physical footprint of one parity group (memoized)."""
        key = (name, group)
        cached = self._span_cache.get(key)
        if cached is not None:
            return cached
        tracks = self.group_tracks(name, group)
        span = GroupSpan(
            object_name=name,
            group_index=group,
            data=tuple(self._data_addr[(name, t)] for t in tracks),
            parity=self.parity_address(name, group),
        )
        self._span_cache[key] = span
        return span

    def group_geometry(self, name: str, group: int,
                       ) -> tuple[tuple[tuple[int, int], ...],
                                  tuple[int, int]]:
        """``((disk_id, position) per data track, (disk_id, position))``.

        The plain-tuple counterpart of :meth:`group_span` for the
        schedulers' per-cycle plan building: no dataclass construction,
        memoized until placement changes.  Treat the result as immutable.
        """
        key = (name, group)
        cached = self._geometry_cache.get(key)
        if cached is None:
            num_tracks = self.object(name).num_tracks
            stripe = self.data_disks_per_group
            first = group * stripe
            if not 0 <= first < num_tracks:
                raise LayoutError(f"group {group} out of range for {name!r}")
            data_addr = self._data_addr
            members = []
            for track in range(first, min(first + stripe, num_tracks)):
                addr = data_addr[(name, track)]
                members.append((addr.disk_id, addr.position))
            parity = self.parity_address(name, group)
            cached = (tuple(members), (parity.disk_id, parity.position))
            self._geometry_cache[key] = cached
        return cached

    # Geometry memo: keyed by (name, group), placement is fixed at
    # construction, so the write is idempotent and value-deterministic —
    # safe for ff eligibility probes to trigger.  # repro: allow(R8)
    def group_cluster(self, name: str, group: int) -> int:
        """Cluster holding the *data* blocks of one parity group."""
        key = (name, group)
        cached = self._cluster_cache.get(key)
        if cached is not None:
            return cached
        span = self.group_span(name, group)
        cluster = self.cluster_of(span.data[0].disk_id)
        self._cluster_cache[key] = cluster
        return cluster

    def blocks_on_disk(self, disk_id: int) -> list[StoredBlock]:
        """Everything stored on one disk, in allocation order."""
        if disk_id not in self._disk_contents:
            raise LayoutError(f"no such disk: {disk_id}")
        return list(self._disk_contents[disk_id])

    def used_positions(self, disk_id: int) -> int:
        """How many track slots the layout has allocated on a disk."""
        return self._next_position[disk_id]

    # -- failure analysis --------------------------------------------------

    def groups_sharing_disk_pair(self, disk_a: int, disk_b: int) -> bool:
        """True if some parity group contains blocks on both disks."""
        if disk_a == disk_b:
            return True
        disks_b: set[tuple[str, int]] = set()
        for block in self._disk_contents[disk_b]:
            group = (block.index if block.kind is BlockKind.PARITY
                     else block.index // self.data_disks_per_group)
            disks_b.add((block.object_name, group))
        for block in self._disk_contents[disk_a]:
            group = (block.index if block.kind is BlockKind.PARITY
                     else block.index // self.data_disks_per_group)
            if (block.object_name, group) in disks_b:
                return True
        return False

    def is_catastrophic(self, failed_ids: Iterable[int]) -> bool:
        """True if the failure set loses data (>= 2 failures in one group).

        Subclasses may override with a geometric shortcut; this generic
        implementation checks actual group membership.
        """
        failed = sorted(set(failed_ids))
        for i, disk_a in enumerate(failed):
            for disk_b in failed[i + 1:]:
                if self.groups_sharing_disk_pair(disk_a, disk_b):
                    return True
        return False

    # -- materialisation ----------------------------------------------------

    def materialise(self, array: DiskArray) -> None:
        """Write every placed object's payloads and parity onto the array.

        Tracks shorter groups (an object's tail) are padded with zero blocks
        for the parity computation, matching how a real loader would zero
        the unused stripe units.

        On a metadata-only array (``store_payloads=False``) no bytes are
        generated at all: each address is merely marked occupied — O(1) per
        track — and the real payloads stay derivable on demand through
        :meth:`resolve_payload`.
        """
        if len(array) != self.num_disks:
            raise ConfigurationError(
                f"layout expects {self.num_disks} disks, array has {len(array)}"
            )
        for obj in self._objects.values():
            self.materialise_object(array, obj.name)

    def materialise_object(self, array: DiskArray, name: str) -> None:
        """Write one placed object's payloads and parity onto the array
        (the per-object loader the tertiary staging path uses)."""
        obj = self.object(name)
        if not array.store_payloads:
            # Metadata-only: mark occupancy, derive payloads lazily.
            for track in range(obj.num_tracks):
                address = self._data_addr[(name, track)]
                array[address.disk_id].write_meta(address.position)
            for group in range(self.group_count(obj)):
                address = self._parity_addr[(name, group)]
                array[address.disk_id].write_meta(address.position)
            return
        track_bytes = mb_to_bytes(array.spec.track_size_mb)
        # Generate and write every data track, collecting the group rows;
        # then encode every group's parity as one matrix XOR (short tail
        # rows are implicitly zero-padded — the XOR identity).
        rows: list[list[bytes]] = []
        for group in range(self.group_count(obj)):
            payloads: list[bytes] = []
            for track in self.group_tracks(name, group):
                payload = obj.track_payload(track, track_bytes)
                address = self._data_addr[(name, track)]
                array[address.disk_id].write(address.position, payload)
                payloads.append(payload)
            rows.append(payloads)
        for group, parity in enumerate(xor_matrix(rows)):
            address = self._parity_addr[(name, group)]
            array[address.disk_id].write(address.position, parity)

    # -- lazy payload derivation (metadata-only mode) -----------------------

    def block_at(self, disk_id: int, position: int) -> StoredBlock:
        """The logical block stored at one physical address.

        Backed by a reverse index built lazily and flushed on placement
        changes; raises :class:`LayoutError` for unoccupied addresses.
        """
        if self._block_index is None:
            index: dict[tuple[int, int], StoredBlock] = {}
            for (name, track), address in self._data_addr.items():
                index[(address.disk_id, address.position)] = StoredBlock(
                    name, BlockKind.DATA, track)
            for (name, group), address in self._parity_addr.items():
                index[(address.disk_id, address.position)] = StoredBlock(
                    name, BlockKind.PARITY, group)
            self._block_index = index
        try:
            return self._block_index[(disk_id, position)]
        except KeyError:
            raise LayoutError(
                f"disk {disk_id} position {position} holds no placed block"
            ) from None

    def resolve_payload(self, disk_id: int, position: int,
                        track_bytes: int) -> bytes:
        """Derive the bytes one physical address *should* hold.

        This is the deterministic seed function behind metadata-only mode:
        data tracks expand from the object's seeded generator, parity
        blocks are the XOR of their group's data tracks.  Works in either
        mode (in payload mode it reproduces what was written).
        """
        block = self.block_at(disk_id, position)
        obj = self.object(block.object_name)
        if block.kind is BlockKind.DATA:
            return obj.track_payload(block.index, track_bytes)
        tracks = self.group_tracks(block.object_name, block.index)
        return xor_blocks([obj.track_payload(t, track_bytes)
                           for t in tracks])

    def spot_check(self, array: DiskArray, name: str, group: int) -> bool:
        """Verify one parity group's stored state on demand.

        In payload mode, compares the stored data and parity bytes against
        the deterministic generator.  In metadata-only mode, checks that
        every group address is occupied and that the lazily derived
        payloads at those addresses satisfy the parity relation — the
        on-demand verification hook the fast path keeps available.
        """
        span = self.group_span(name, group)
        obj = self.object(name)
        track_bytes = mb_to_bytes(array.spec.track_size_mb)
        tracks = self.group_tracks(name, group)
        expected = [obj.track_payload(t, track_bytes) for t in tracks]
        expected_parity = xor_blocks(expected)
        if array.store_payloads:
            for address, payload in zip(span.data, expected):
                if array[address.disk_id].peek(address.position) != payload:
                    return False
            return array[span.parity.disk_id].peek(
                span.parity.position) == expected_parity
        # Metadata mode: every address must be occupied (peek raises on
        # holes) and the derived payloads must satisfy the parity relation.
        for address in span.data:
            array[address.disk_id].peek(address.position)
        array[span.parity.disk_id].peek(span.parity.position)
        derived = [self.resolve_payload(a.disk_id, a.position, track_bytes)
                   for a in span.data]
        derived_parity = self.resolve_payload(
            span.parity.disk_id, span.parity.position, track_bytes)
        return xor_blocks(derived) == derived_parity \
            and derived == expected and derived_parity == expected_parity

    # -- misc ---------------------------------------------------------------

    def describe(self) -> str:
        """One-line human description of the layout."""
        return (
            f"{type(self).__name__}(D={self.num_disks}, "
            f"C={self.parity_group_size}, clusters={self.num_clusters}, "
            f"objects={len(self._objects)})"
        )
