"""Value types shared by all layouts."""

from __future__ import annotations

import enum
from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class DiskAddress:
    """A physical track slot: ``(disk_id, position)``."""

    disk_id: int
    position: int


class BlockKind(enum.Enum):
    """What a stored block holds."""

    DATA = "data"
    PARITY = "parity"


@dataclass(frozen=True)
class StoredBlock:
    """What one physical track slot contains, from the layout's viewpoint.

    For DATA blocks ``index`` is the object-relative track number; for
    PARITY blocks it is the parity-group number.
    """

    object_name: str
    kind: BlockKind
    index: int


@dataclass(frozen=True)
class GroupSpan:
    """The physical footprint of one parity group.

    ``data`` lists the addresses of the group's data blocks in track order
    (some trailing entries may be absent for an object's final, short
    group); ``parity`` is the parity block's address.
    """

    object_name: str
    group_index: int
    data: tuple[DiskAddress, ...]
    parity: DiskAddress

    @property
    def disk_ids(self) -> tuple[int, ...]:
        """All disks touched by this group (data disks then parity disk)."""
        return tuple(a.disk_id for a in self.data) + (self.parity.disk_id,)
