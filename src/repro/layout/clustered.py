"""The clustered layout with dedicated parity disks (Section 2, Figure 3).

Disks are grouped into fixed clusters of ``C``: the first ``C - 1`` disks of
each cluster store data, the last is the cluster's dedicated parity disk.
Each object is striped across the data disks of a cluster one parity group
at a time, and successive parity groups visit clusters round-robin.

This layout is shared by the Streaming RAID, Staggered-group, and
Non-clustered *schedulers* — the paper's point is precisely that the same
layout admits very different read schedules with very different memory
footprints.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import ConfigurationError
from repro.layout.base import DataLayout
from repro.media.objects import MediaObject


class ClusteredParityLayout(DataLayout):
    """Clusters of ``C`` disks: ``C - 1`` data + 1 dedicated parity disk."""

    def __init__(self, num_disks: int, parity_group_size: int) -> None:
        super().__init__(num_disks, parity_group_size)
        if num_disks % parity_group_size != 0:
            raise ConfigurationError(
                f"disk count {num_disks} is not a multiple of the cluster "
                f"size {parity_group_size}"
            )

    @property
    def num_clusters(self) -> int:
        """Number of clusters the disks are grouped into."""
        return self.num_disks // self.parity_group_size

    @property
    def data_disks_per_group(self) -> int:
        """Data blocks per parity group (``C - 1``)."""
        return self.parity_group_size - 1

    @property
    def data_disk_count(self) -> int:
        """``D'``: disks from which data is read (excludes parity disks)."""
        return self.num_clusters * self.data_disks_per_group

    def cluster_of(self, disk_id: int) -> int:
        """Cluster index of a disk."""
        self._check_disk(disk_id)
        return disk_id // self.parity_group_size

    def cluster_disks(self, cluster: int) -> list[int]:
        """Disk ids of one cluster, ascending."""
        self._check_cluster(cluster)
        base = cluster * self.parity_group_size
        return list(range(base, base + self.parity_group_size))

    def data_disks(self, cluster: int) -> list[int]:
        """The ``C - 1`` data disks of one cluster."""
        return self.cluster_disks(cluster)[:-1]

    def parity_disk(self, cluster: int) -> int:
        """The dedicated parity disk of one cluster."""
        return self.cluster_disks(cluster)[-1]

    def is_parity_disk(self, disk_id: int) -> bool:
        """True for the last disk of each cluster (the parity disk)."""
        self._check_disk(disk_id)
        return disk_id % self.parity_group_size == self.parity_group_size - 1

    def _data_disk_for(self, obj: MediaObject, group: int, offset: int) -> int:
        cluster = (self._start_cluster[obj.name] + group) % self.num_clusters
        return cluster * self.parity_group_size + offset

    def _parity_disk_for(self, obj: MediaObject, group: int) -> int:
        cluster = (self._start_cluster[obj.name] + group) % self.num_clusters
        return self.parity_disk(cluster)

    def is_catastrophic_geometric(self, failed_ids: Iterable[int]) -> bool:
        """Two failures in the same cluster lose data (layout geometry only).

        Unlike :meth:`DataLayout.is_catastrophic` this does not consult the
        placed objects, so the reliability Monte-Carlo can use it on bare
        geometry; it is the paper's own criterion (Section 2).
        """
        seen: set[int] = set()
        for disk_id in failed_ids:
            cluster = self.cluster_of(disk_id)
            if cluster in seen:
                return True
            seen.add(cluster)
        return False

    # -- helpers -----------------------------------------------------------

    def _check_disk(self, disk_id: int) -> None:
        if not 0 <= disk_id < self.num_disks:
            raise ConfigurationError(f"no such disk: {disk_id}")

    def _check_cluster(self, cluster: int) -> None:
        if not 0 <= cluster < self.num_clusters:
            raise ConfigurationError(f"no such cluster: {cluster}")
