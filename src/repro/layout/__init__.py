"""Data layouts: how object tracks and parity blocks map onto disks.

Two families cover the paper's four schemes:

* :class:`ClusteredParityLayout` — fixed clusters of ``C`` disks with one
  *dedicated* parity disk per cluster; parity groups allocated round-robin
  over clusters (Section 2, Figure 3).  Shared by Streaming RAID,
  Staggered-group, and Non-clustered scheduling.
* :class:`ImprovedBandwidthLayout` — no dedicated parity disks; the parity
  of cluster ``i`` is spread over the disks of cluster ``i + 1``
  (Section 4, Figure 8), so every disk serves data in normal mode.

The parity-declustered extension adds a third family:

* :class:`DeclusteredParityLayout` — parity groups on ``C``-subsets of
  *all* disks via a balanced block design, so rebuild reads spread over
  every survivor (PAPERS.md: Dau et al., arXiv:1209.6152).
"""

from repro.layout.address import BlockKind, DiskAddress, GroupSpan, StoredBlock
from repro.layout.base import DataLayout, PlacementDelta
from repro.layout.clustered import ClusteredParityLayout
from repro.layout.declustered import DeclusteredParityLayout
from repro.layout.improved import ImprovedBandwidthLayout

__all__ = [
    "BlockKind",
    "ClusteredParityLayout",
    "DataLayout",
    "DeclusteredParityLayout",
    "DiskAddress",
    "GroupSpan",
    "ImprovedBandwidthLayout",
    "PlacementDelta",
    "StoredBlock",
]
