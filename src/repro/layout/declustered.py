"""The parity-declustered layout (extension; PAPERS.md: Dau et al.,
arXiv:1209.6152; Viennot et al., arXiv:0804.0743).

The paper's four schemes confine each parity group to one cluster, so a
failed disk is rebuilt from the ``C - 1`` survivors of a single cluster
and the rebuild window is bounded by that cluster's idle bandwidth.
Parity declustering instead maps every parity group to a ``C``-subset of
*all* ``D`` disks drawn from a balanced block design: each disk pair
co-occurs in (nearly) the same number of groups, so after a failure the
reconstruction reads spread uniformly over all ``D - 1`` survivors and
the rebuild window shrinks by the declustering ratio
``alpha = (C - 1) / (D - 1)``.

Design construction
-------------------

For prime ``D`` the design is the classical arithmetic-progression
family over ``Z_D``: block ``B(j, s) = {j, j+s, ..., j+(C-1)s} mod D``
for every rotation ``j`` and every stride ``s in 1..D-1``.  Every
unordered disk pair at difference ``d`` is covered once per
``(k, s)`` solution of ``k s = +-d (mod D)`` with weight ``C - k``, so
each pair co-occurs in exactly ``lambda = C (C - 1)`` blocks — an exact
balanced design, verified by the property tests.

For composite ``D`` no BIBD is guaranteed to exist (Holland & Gibson's
observation for declustered RAID); the layout builds the same family
over ``P``, the smallest prime ``>= D``, and drops blocks containing a
phantom disk ``>= D``.  ``P - D`` is small, so the surviving design is
near-balanced and the survivor read-load spread stays within a few
percent of uniform — the chaos and benchmark gates measure this rather
than assume it.

Blocks are enumerated diagonally — raw index ``r`` maps to
``(j, s) = (r mod P, 1 + r mod (P-1))``, a bijection onto the full
design by CRT — so any *prefix* of the design already mixes rotations
and strides, and the groups of a freshly placed object immediately
spread over the farm.  Parity rotates through the block's members
(position ``t mod C`` for design row ``t``), so no disk is dedicated to
parity and every disk serves data, like the Improved-bandwidth layout.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import ConfigurationError
from repro.layout.base import DataLayout
from repro.media.objects import MediaObject


def smallest_prime_at_least(n: int) -> int:
    """The smallest prime ``>= n`` (deterministic trial division)."""
    candidate = max(2, n)
    while True:
        is_prime = candidate >= 2
        divisor = 2
        while divisor * divisor <= candidate:
            if candidate % divisor == 0:
                is_prime = False
                break
            divisor += 1
        if is_prime:
            return candidate
        candidate += 1


class DeclusteredParityLayout(DataLayout):
    """Parity groups on ``C``-subsets of all disks via a block design."""

    def __init__(self, num_disks: int, parity_group_size: int) -> None:
        super().__init__(num_disks, parity_group_size)
        #: Modulus of the arithmetic-progression design (== ``num_disks``
        #: when that is prime; the design is then exactly balanced).
        self.design_modulus = smallest_prime_at_least(num_disks)
        #: Valid design rows materialised so far, in diagonal order.
        #: Construction-time geometry: rows depend only on (D, C), never
        #: on placement, so the memo needs no epoch key.
        self._design_rows: list[tuple[int, ...]] = []
        #: Raw ``(j, s)`` indices scanned so far (phantom rows skipped).
        self._design_scanned = 0

    # -- block design -----------------------------------------------------

    @property
    def is_exact_design(self) -> bool:
        """True when every disk pair co-occurs in *exactly* lambda rows
        (prime farm sizes; composite farms are near-balanced)."""
        return self.design_modulus == self.num_disks

    @property
    def declustering_ratio(self) -> float:
        """``alpha = (C - 1) / (D - 1)``: the fraction of each survivor's
        bandwidth a rebuild claims, and the rebuild-window shrink factor
        relative to a single-cluster scheme."""
        return (self.parity_group_size - 1) / (self.num_disks - 1)

    @property
    def raw_design_size(self) -> int:
        """Rows of the design over ``Z_P`` before phantom filtering."""
        return self.design_modulus * (self.design_modulus - 1)

    def design_size(self) -> int:
        """Valid rows in the full design (materialises it; small farms)."""
        self._materialise_rows(self.raw_design_size)
        return len(self._design_rows)

    def _raw_row(self, raw_index: int) -> tuple[int, ...]:
        """Raw design row: the AP ``B(j, s)`` for the diagonal index."""
        p = self.design_modulus
        j = raw_index % p
        s = 1 + raw_index % (p - 1)
        return tuple((j + i * s) % p for i in range(self.parity_group_size))

    # Construction-time geometry memo: rows depend only on (D, C), are
    # scanned strictly in order, and every write is value-deterministic —
    # safe for ff eligibility probes to trigger.  # repro: allow(R8)
    def _materialise_rows(self, count: int) -> None:  # repro: allow(epoch-cache)
        """Extend the valid-row cache to ``count`` rows (or exhaustion)."""
        rows = self._design_rows
        while len(rows) < count and self._design_scanned < self.raw_design_size:
            row = self._raw_row(self._design_scanned)
            self._design_scanned += 1
            if max(row) < self.num_disks:
                rows.append(row)

    def design_row(self, index: int) -> tuple[int, ...]:
        """The ``index``-th valid design row (wrapping past the design)."""
        if index < 0:
            raise ConfigurationError(f"design row index {index} < 0")
        self._materialise_rows(index + 1)
        rows = self._design_rows
        if index < len(rows):
            return rows[index]
        # The design is exhausted (index past every valid row): wrap.
        return rows[index % len(rows)]

    def pair_concurrence(self) -> dict[tuple[int, int], int]:
        """Co-occurrence count per unordered disk pair over the full
        design — the balance surface the property tests assert on."""
        counts: dict[tuple[int, int], int] = {}
        for a in range(self.num_disks):
            for b in range(a + 1, self.num_disks):
                counts[(a, b)] = 0
        self._materialise_rows(self.raw_design_size)
        for row in self._design_rows:
            members = sorted(row)
            for i, a in enumerate(members):
                for b in members[i + 1:]:
                    counts[(a, b)] += 1
        return counts

    # -- DataLayout geometry ----------------------------------------------

    @property
    def num_clusters(self) -> int:
        """Virtual rotation classes: one start offset per disk.  Objects
        round-robin their first design row over all ``D`` offsets."""
        return self.num_disks

    @property
    def data_disks_per_group(self) -> int:
        """Data blocks per parity group (``C - 1``)."""
        return self.parity_group_size - 1

    @property
    def data_disk_count(self) -> int:
        """``D'``: every disk serves data (parity rotates, like IB)."""
        return self.num_disks

    def cluster_of(self, disk_id: int) -> int:
        """Clusters are virtual here: each disk is its own class."""
        self._check_disk(disk_id)
        return disk_id

    def cluster_disks(self, cluster: int) -> list[int]:
        """The single disk of one virtual rotation class."""
        if not 0 <= cluster < self.num_clusters:
            raise ConfigurationError(f"no such cluster: {cluster}")
        return [cluster]

    def is_parity_disk(self, disk_id: int) -> bool:
        """No disk is dedicated to parity; it rotates through the rows."""
        self._check_disk(disk_id)
        return False

    def _row_index(self, obj: MediaObject, group: int) -> int:
        return self._start_cluster[obj.name] + group

    def _data_disk_for(self, obj: MediaObject, group: int, offset: int) -> int:
        index = self._row_index(obj, group)
        row = self.design_row(index)
        parity_slot = index % self.parity_group_size
        data = row[:parity_slot] + row[parity_slot + 1:]
        return data[offset]

    def _parity_disk_for(self, obj: MediaObject, group: int) -> int:
        index = self._row_index(obj, group)
        return self.design_row(index)[index % self.parity_group_size]

    def group_cluster(self, name: str, group: int) -> int:
        """Declustered groups span arbitrary disk subsets; report the
        rotation class of the group's first data member (consistent with
        the base contract, but carrying no contiguity meaning)."""
        return super().group_cluster(name, group)

    def is_catastrophic_geometric(self, failed_ids: Iterable[int]) -> bool:
        """Any two concurrent failures lose data.

        Declustering's trade-off: with every disk pair co-occurring in
        some parity group (lambda > 0 across the design), a second
        concurrent failure is always catastrophic — the exposure grows
        from ``C - 1`` disks to ``D - 1`` — but the vulnerability
        *window* shrinks by ``alpha``, which is what MTTDS buys.
        """
        seen: set[int] = set()
        for disk_id in failed_ids:
            self._check_disk(disk_id)
            if disk_id in seen:
                continue
            seen.add(disk_id)
            if len(seen) >= 2:
                return True
        return False

    # -- helpers -----------------------------------------------------------

    def _check_disk(self, disk_id: int) -> None:
        if not 0 <= disk_id < self.num_disks:
            raise ConfigurationError(f"no such disk: {disk_id}")
