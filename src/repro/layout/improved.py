"""The Improved-bandwidth layout (Section 4, Figure 8).

No dedicated parity disks: clusters consist of ``C - 1`` *data* disks, and
the parity block of a group stored on cluster ``i`` lives on one of the
disks of cluster ``i + 1`` (round-robin within that cluster so the parity
load spreads evenly).  Every disk therefore serves data in normal mode —
the scheme's selling point — but a disk now belongs to two parity-group
populations (its own cluster's data and the previous cluster's parity),
which is why a failure in each of two *adjacent* clusters already loses
data and the MTTF denominator grows from ``C - 1`` to ``2C - 1``.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import ConfigurationError
from repro.layout.base import DataLayout
from repro.media.objects import MediaObject


class ImprovedBandwidthLayout(DataLayout):
    """Clusters of ``C - 1`` data disks; parity shifted to the next cluster."""

    def __init__(self, num_disks: int, parity_group_size: int) -> None:
        super().__init__(num_disks, parity_group_size)
        stripe = parity_group_size - 1
        if num_disks % stripe != 0:
            raise ConfigurationError(
                f"disk count {num_disks} is not a multiple of the data "
                f"stripe width {stripe}"
            )
        if num_disks // stripe < 2:
            raise ConfigurationError(
                "the improved-bandwidth layout needs at least two clusters "
                "(parity lives on the *next* cluster)"
            )
        self._object_rank: dict[str, int] = {}

    @property
    def num_clusters(self) -> int:
        """Number of clusters the disks are grouped into."""
        return self.num_disks // self.data_disks_per_group

    @property
    def data_disks_per_group(self) -> int:
        """Data blocks per parity group (``C - 1``)."""
        return self.parity_group_size - 1

    @property
    def data_disk_count(self) -> int:
        """``D'``: every disk serves data in this layout."""
        return self.num_disks

    def cluster_of(self, disk_id: int) -> int:
        """Cluster index of a disk."""
        self._check_disk(disk_id)
        return disk_id // self.data_disks_per_group

    def cluster_disks(self, cluster: int) -> list[int]:
        """Disk ids of one cluster, ascending."""
        self._check_cluster(cluster)
        base = cluster * self.data_disks_per_group
        return list(range(base, base + self.data_disks_per_group))

    def is_parity_disk(self, disk_id: int) -> bool:
        """No disk is *dedicated* to parity here."""
        self._check_disk(disk_id)
        return False

    def _rank(self, obj: MediaObject) -> int:
        if obj.name not in self._object_rank:
            self._object_rank[obj.name] = len(self._object_rank)
        return self._object_rank[obj.name]

    def _data_disk_for(self, obj: MediaObject, group: int, offset: int) -> int:
        cluster = (self._start_cluster[obj.name] + group) % self.num_clusters
        return cluster * self.data_disks_per_group + offset

    def _parity_disk_for(self, obj: MediaObject, group: int) -> int:
        cluster = (self._start_cluster[obj.name] + group) % self.num_clusters
        next_cluster = (cluster + 1) % self.num_clusters
        # Spread parity round-robin over the next cluster's disks.  The
        # extra ``group // num_clusters`` term advances one additional slot
        # each full tour of the clusters; without it the slot index and the
        # target cluster advance in lockstep and some disks would never
        # receive parity.
        slot = (self._rank(obj) + group + group // self.num_clusters) \
            % self.data_disks_per_group
        return next_cluster * self.data_disks_per_group + slot

    def parity_source_cluster(self, disk_id: int) -> int:
        """The cluster whose parity blocks may live on ``disk_id``."""
        return (self.cluster_of(disk_id) - 1) % self.num_clusters

    def is_catastrophic_geometric(self, failed_ids: Iterable[int]) -> bool:
        """Failures in the same or *adjacent* clusters lose data.

        Section 4: "a failure in each of two adjacent clusters causes data
        to be lost", because a parity group spans cluster ``i``'s data disks
        and one disk of cluster ``i + 1``.
        """
        clusters = sorted({self.cluster_of(d) for d in failed_ids})
        failed_by_cluster: dict[int, int] = {}
        for disk_id in failed_ids:
            cluster = self.cluster_of(disk_id)
            failed_by_cluster[cluster] = failed_by_cluster.get(cluster, 0) + 1
        for cluster, count in failed_by_cluster.items():
            if count >= 2:
                return True
        nc = self.num_clusters
        cluster_set = set(clusters)
        for cluster in clusters:
            if (cluster + 1) % nc in cluster_set:
                return True
        return False

    # -- helpers -----------------------------------------------------------

    def _check_disk(self, disk_id: int) -> None:
        if not 0 <= disk_id < self.num_disks:
            raise ConfigurationError(f"no such disk: {disk_id}")

    def _check_cluster(self, cluster: int) -> None:
        if not 0 <= cluster < self.num_clusters:
            raise ConfigurationError(f"no such cluster: {cluster}")
