"""Fault injection for the cycle-based server simulator.

Two flavours:

* :class:`FaultSchedule` — deterministic scripted failures/repairs keyed by
  cycle number, used to reproduce the paper's worked failure scenarios
  (e.g. "disk 2 fails just before cycle 1", Figure 6).
* :class:`ExponentialFaultInjector` — stochastic failures/repairs with
  exponential lifetimes on the DES kernel, used by the timed co-simulation
  (:meth:`repro.server.server.MultimediaServer.run_timed`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Callable, Iterable, Iterator,
                    Optional)

if TYPE_CHECKING:
    from repro.sched.base import CycleScheduler

from repro.sim.kernel import Environment
from repro.sim.rng import RandomSource


class FaultAction(enum.Enum):
    """What happens to the disk."""

    FAIL = "fail"
    REPAIR = "repair"
    DEGRADE = "degrade"
    RESTORE = "restore"
    MEDIA_ERROR = "media-error"


@dataclass(frozen=True, order=True)
class FaultEvent:
    """A scripted fault: *before* which cycle, what, to which disk.

    ``slowdown`` parameterises :attr:`FaultAction.DEGRADE` (the fail-slow
    factor, > 1); ``position`` and ``transient`` parameterise
    :attr:`FaultAction.MEDIA_ERROR` (which track, and whether a retry can
    clear it).  Construction validates the fields an action needs; the
    disk id's range is checked at :meth:`FaultSchedule.apply`, where the
    target array is known.
    """

    cycle: int
    disk_id: int
    action: FaultAction = FaultAction.FAIL
    mid_cycle: bool = False
    slowdown: float = 1.0
    position: int = -1
    transient: bool = False

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise ValueError(f"event cycle must be >= 0, got {self.cycle}")
        if self.disk_id < 0:
            raise ValueError(f"disk id must be >= 0, got {self.disk_id}")
        if self.action is FaultAction.DEGRADE and self.slowdown <= 1.0:
            raise ValueError(
                f"a DEGRADE event needs slowdown > 1, got {self.slowdown}"
            )
        if self.action is FaultAction.MEDIA_ERROR and self.position < 0:
            raise ValueError(
                "a MEDIA_ERROR event needs a track position >= 0, got "
                f"{self.position}"
            )


class FaultSchedule:
    """A deterministic list of fault events, applied between cycles.

    Events are indexed by cycle at construction, so the per-cycle lookup
    in the simulation loop is O(events due), not O(total events).
    """

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        # Stable sort by cycle ONLY: within a cycle the script's order is
        # semantic (a repair may re-qualify a disk for the degrade that
        # follows it), and enum members are not orderable anyway.
        self._events = sorted(events, key=lambda e: e.cycle)
        self._by_cycle: dict[int, list[FaultEvent]] = {}
        for event in self._events:
            self._by_cycle.setdefault(event.cycle, []).append(event)

    @classmethod
    def single_failure(cls, cycle: int, disk_id: int,
                       repair_cycle: Optional[int] = None,
                       mid_cycle: bool = False) -> "FaultSchedule":
        """The common case: one disk fails, optionally repaired later."""
        events = [FaultEvent(cycle, disk_id, FaultAction.FAIL, mid_cycle)]
        if repair_cycle is not None:
            if repair_cycle <= cycle:
                raise ValueError("repair must come after the failure")
            events.append(FaultEvent(repair_cycle, disk_id,
                                     FaultAction.REPAIR))
        return cls(events)

    def events_before_cycle(self, cycle: int) -> list[FaultEvent]:
        """Events that strike just before the given cycle runs."""
        return list(self._by_cycle.get(cycle, ()))

    def event_cycles(self) -> list[int]:
        """Every cycle with at least one event, ascending (fast-forward
        segmentation boundaries)."""
        return sorted(self._by_cycle)

    def mid_cycle_event_cycles(self) -> list[int]:
        """Cycles with a mid-cycle failure strike, ascending.

        A mid-cycle FAIL invalidates tracks fetched by the *previous*
        cycle's executed reads — state a fast-forwarded cycle never
        materialises — so segmenting drivers must run the cycle just
        before such an event on the scalar path.
        """
        return sorted({event.cycle for event in self._events
                       if event.action is FaultAction.FAIL
                       and event.mid_cycle})

    def apply(self, scheduler: "CycleScheduler",
              cycle: int) -> list[FaultEvent]:
        """Apply this schedule's events due before ``cycle``; returns them.

        Raises :class:`~repro.errors.LayoutError` if an event names a
        disk the scheduler's array does not have.
        """
        due = self.events_before_cycle(cycle)
        for event in due:
            if event.action is FaultAction.FAIL:
                scheduler.fail_disk(event.disk_id, mid_cycle=event.mid_cycle)
            elif event.action is FaultAction.REPAIR:
                scheduler.repair_disk(event.disk_id)
            elif event.action is FaultAction.DEGRADE:
                scheduler.degrade_disk(event.disk_id, event.slowdown)
            elif event.action is FaultAction.RESTORE:
                scheduler.restore_disk(event.disk_id)
            else:
                scheduler.inject_media_error(event.disk_id, event.position,
                                             transient=event.transient)
        return due

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)


class ExponentialFaultInjector:
    """Exponential failure/repair processes on the DES kernel.

    One generator process per disk: sleep ``Exp(mttf)``, call ``on_fail``,
    sleep ``Exp(mttr)``, call ``on_repair``, repeat.  The callbacks receive
    the disk id, so the injector can drive either a bare
    :class:`~repro.disk.drive.DiskArray` or a scheduler.
    """

    def __init__(self, env: Environment, num_disks: int,
                 mttf_s: float, mttr_s: float, rng: RandomSource,
                 on_fail: Callable[[int], None],
                 on_repair: Callable[[int], None]) -> None:
        if mttf_s <= 0 or mttr_s <= 0:
            raise ValueError("mttf and mttr must be positive")
        self.env = env
        self.num_disks = num_disks
        self.mttf_s = mttf_s
        self.mttr_s = mttr_s
        self.rng = rng
        self.on_fail = on_fail
        self.on_repair = on_repair
        self.failures_injected = 0
        self.repairs_completed = 0

    def start(self) -> None:
        """Launch one lifetime process per disk."""
        for disk_id in range(self.num_disks):
            self.env.process(self._lifetime(disk_id),
                             name=f"disk-{disk_id}-faults")

    def _lifetime(self, disk_id: int) -> Iterator[object]:
        stream_name = f"disk-{disk_id}"
        while True:
            yield self.env.timeout(
                self.rng.exponential(stream_name, self.mttf_s))
            self.failures_injected += 1
            self.on_fail(disk_id)
            yield self.env.timeout(
                self.rng.exponential(stream_name, self.mttr_s))
            self.repairs_completed += 1
            self.on_repair(disk_id)
