"""Fault-domain helpers: fail-slow calibration and latent-error scrubbing.

The fault-domain state machine itself lives on the disks
(:class:`~repro.disk.drive.Disk` moves through ``OPERATIONAL``,
``DEGRADED``, ``FAILED`` and ``REBUILDING``); this module supplies the
two pieces that sit *around* it:

* :func:`degraded_service_fraction` translates a physical fail-slow
  factor ("this drive's track time is 2x nominal") into the fraction of
  its cycle slot budget that survives, via the same
  :class:`~repro.disk.model.SimpleDiskModel` track-time arithmetic the
  admission analysis uses.  Schedulers apply the fraction through
  :meth:`~repro.disk.drive.Disk.effective_slots`.
* :class:`SectorScrubber` walks every disk's latent sector errors in a
  deterministic order and repairs a bounded number per pass — the
  background patrol that keeps a latent error from surviving long enough
  to meet a disk failure in the same parity group.  It runs either as a
  DES-kernel process (:meth:`SectorScrubber.process`, used by
  ``run_timed``) or one :meth:`SectorScrubber.step` per cycle (used by
  the chaos harness).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:
    from repro.disk.drive import DiskArray
    from repro.sim.kernel import Environment, Event

from repro.disk.model import SimpleDiskModel
from repro.disk.specs import DiskSpec


def degraded_service_fraction(spec: DiskSpec, cycle_length_s: float,
                              slowdown: float) -> float:
    """The slot-budget fraction a fail-slow disk retains.

    A disk whose track time stretched by ``slowdown`` (>= 1) serves
    ``tracks_per_cycle_degraded / tracks_per_cycle`` of its nominal
    per-cycle track budget.  Returns a float in ``[0, 1]``; ``0.0`` when
    the nominal budget is already zero.

    >>> from repro.disk.specs import DiskSpec
    >>> spec = DiskSpec(name="d", seek_time_s=0.02, track_time_s=0.015,
    ...                 track_size_mb=0.064, capacity_mb=256.0)
    >>> degraded_service_fraction(spec, 1.0, 1.0)
    1.0
    >>> 0.0 < degraded_service_fraction(spec, 1.0, 2.0) <= 0.51
    True
    """
    model = SimpleDiskModel(spec)
    base = model.tracks_per_cycle(cycle_length_s)
    if base <= 0:
        return 0.0
    slow = model.tracks_per_cycle_degraded(cycle_length_s, slowdown)
    fraction = slow / base
    return max(0.0, min(1.0, fraction))


class SectorScrubber:
    """Background patrol repairing latent sector errors, a few per pass.

    The scrub order is deterministic — ascending ``(disk_id, position)``
    over the non-failed disks' currently pending media errors — so
    replaying a fault script reproduces the exact same repair sequence.
    """

    __slots__ = ("array", "tracks_per_pass", "passes_run",
                 "errors_repaired")

    def __init__(self, array: "DiskArray",
                 tracks_per_pass: int = 1) -> None:
        if tracks_per_pass < 1:
            raise ValueError("scrubber must repair at least one track/pass")
        self.array = array
        self.tracks_per_pass = tracks_per_pass
        self.passes_run = 0
        self.errors_repaired = 0

    def pending(self) -> list[tuple[int, int]]:
        """All ``(disk_id, position)`` pairs still awaiting a scrub."""
        pairs: list[tuple[int, int]] = []
        for disk in self.array:
            if disk.is_failed:
                continue  # nothing to patrol until the rebuild lands
            pairs.extend((disk.disk_id, position)
                         for position in disk.media_error_positions())
        pairs.sort()
        return pairs

    def has_pending(self) -> bool:
        """True if any non-failed disk holds an unscrubbed error.

        The cheap emptiness probe for per-cycle gates (the fast-forward
        drivers ask every cycle): no list building, no sort.
        """
        return any(not disk.is_failed and disk.media_error_positions()
                   for disk in self.array)

    def step(self) -> int:
        """Run one scrub pass; returns the number of errors repaired."""
        self.passes_run += 1
        repaired = 0
        for disk_id, position in self.pending()[:self.tracks_per_pass]:
            if self.array[disk_id].scrub(position):
                repaired += 1
        self.errors_repaired += repaired
        return repaired

    def advance_idle(self, passes: int) -> None:
        """Credit ``passes`` patrol passes that found nothing to scrub.

        The patrol keeps no cursor between passes (each :meth:`step`
        re-sorts the pending set), so when nothing is pending a pass only
        increments the counter — a fast-forwarded span of cycles can
        credit them in bulk.  Callers must gate on :meth:`pending` being
        empty; this method only bumps the tally.
        """
        if passes < 0:
            raise ValueError("cannot credit a negative number of passes")
        self.passes_run += passes

    def process(self, env: "Environment",
                period_s: float) -> Iterator["Event"]:
        """A DES-kernel process running one pass every ``period_s``."""
        if period_s <= 0:
            raise ValueError("scrub period must be positive")
        while True:
            yield env.timeout(period_s)
            self.step()
