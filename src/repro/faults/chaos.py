"""Seeded chaos campaigns: randomized fault storms with hard invariants.

A campaign deterministically generates a fault *script* from a seed —
whole-disk failures and repairs (sometimes striking mid-cycle), fail-slow
degradations and restorations, and latent sector errors — then replays it
against a scheme's full server stack while a background scrubber patrols.
The replay is checked against the invariants the paper's design promises:

* **Determinism** — replaying the same script twice produces bit-identical
  reports (compared by a SHA-256 digest of the canonical snapshot).
* **Mode equivalence** — the metadata-only fast path and the byte-verified
  payload mode agree on every metric, hiccup and stream outcome, and the
  verified replay sees zero payload mismatches.
* **Hiccup discipline** — hiccups only occur where the paper permits
  them: double failures, mid-cycle strikes, scheme transitions within a
  bounded window, or media errors colliding with other faults.  A healthy
  single-failure mode must stay hiccup-free for the clustered schemes,
  and a lone latent sector error must never hiccup anyone.

Used by ``python -m repro chaos`` and the CI smoke job.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.analysis.parameters import SystemParameters
from repro.faults.domain import SectorScrubber
from repro.faults.injector import FaultAction, FaultEvent
from repro.media.catalog import Catalog
from repro.media.objects import MediaObject
from repro.schemes import Scheme
from repro.sim.rng import RandomSource
from repro.units import kilobytes

#: Track payload size for chaos servers: tiny (64 bytes), so payload-mode
#: replays (the mode-equivalence invariant) stay cheap.
TRACK_SIZE_MB = kilobytes(0.064)

#: Shortest inter-event window worth handing to an epoch engine.  Epoch
#: entry pays fixed costs (read-table builds, per-stream canonical
#: checks) that a couple of batched cycles cannot repay; shorter gaps
#: run scalar.  Purely a scheduling policy: the engines are bit-equal to
#: the scalar loop either way, so the replay digest is unaffected.
MIN_EPOCH_SPAN = 4


@dataclass(frozen=True)
class ChaosProfile:
    """Knobs of one campaign's fault mix (all probabilities per cycle).

    ``num_disks``/``objects``/``tracks_per_object`` size the farm the
    storm rages over.  The defaults (``num_disks=None``) keep the
    classic chaos-sized server — 10 disks (11 declustered, 12
    improved-bandwidth), four 40-track objects — so existing campaign
    digests are untouched; the chaos *benchmark* overrides them to a
    1000-disk farm so its fast-forward numbers reflect production
    scale, not a toy.
    """

    cycles: int = 40
    max_concurrent_failures: int = 2
    fail_probability: float = 0.18
    repair_probability: float = 0.30
    mid_cycle_probability: float = 0.30
    degrade_probability: float = 0.12
    restore_probability: float = 0.35
    media_probability: float = 0.25
    transient_probability: float = 0.50
    slowdowns: tuple[float, ...] = (1.5, 2.0)
    num_disks: Optional[int] = None
    objects: int = 4
    tracks_per_object: int = 40

    def __post_init__(self) -> None:
        if self.cycles < 1:
            raise ValueError("a campaign needs at least one cycle")
        if self.max_concurrent_failures < 0:
            raise ValueError("max_concurrent_failures must be >= 0")
        if self.num_disks is not None and self.num_disks < 5:
            raise ValueError(
                f"a chaos farm needs >= 5 disks, got {self.num_disks}")
        if self.objects < 1:
            raise ValueError(f"objects must be >= 1, got {self.objects}")
        if self.tracks_per_object < 1:
            raise ValueError(
                f"tracks_per_object must be >= 1, "
                f"got {self.tracks_per_object}")


@dataclass
class ChaosResult:
    """Outcome of one scheme's campaign."""

    scheme: Scheme
    seed: int
    cycles: int
    events: int
    digest: str
    total_hiccups: int
    total_media_errors: int
    total_streams_shed: int
    data_loss_events: int
    scrub_repairs: int
    violations: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True when every invariant held."""
        return not self.violations


def build_chaos_server(scheme: Scheme, verify_payloads: bool = False,
                       profile: Optional[ChaosProfile] = None) -> Any:
    """A chaos-campaign server; the profile sizes the farm.

    Without a profile (or with ``profile.num_disks=None``) the classic
    chaos server is built: 10 disks (11 declustered for block-design
    balance, 12 improved-bandwidth for whole clusters) holding four
    40-track objects.
    """
    from repro.server.server import MultimediaServer
    if profile is not None and profile.num_disks is not None:
        num_disks = profile.num_disks
    elif scheme is Scheme.IMPROVED_BANDWIDTH:
        num_disks = 12
    elif scheme is Scheme.PARITY_DECLUSTERED:
        # A prime farm size gives the declustered block design exact
        # pairwise balance (no phantom rows).
        num_disks = 11
    else:
        num_disks = 10
    objects = profile.objects if profile is not None else 4
    tracks = profile.tracks_per_object if profile is not None else 40
    params = SystemParameters.paper_table1(
        num_disks=num_disks,
        track_size_mb=TRACK_SIZE_MB,
        disk_capacity_mb=TRACK_SIZE_MB * 4000,
    )
    catalog = Catalog()
    for index in range(objects):
        catalog.add(MediaObject(f"m{index}", 0.1875, tracks, seed=index))
    return MultimediaServer.build(
        params, 5, scheme, catalog=catalog, slots_per_disk=8,
        verify_payloads=verify_payloads)


def generate_script(scheme: Scheme, seed: int,
                    profile: ChaosProfile) -> list[FaultEvent]:
    """Deterministically roll one scheme's fault script from a seed.

    The generator mirrors the scheduler's fault-domain state (who is
    failed, who is fail-slow) so it never scripts an illegal transition —
    e.g. degrading a failed disk or restoring an operational one — and it
    spaces latent-error injections far enough apart for the per-cycle
    scrubber to keep up.
    """
    probe = build_chaos_server(scheme, profile=profile)
    num_disks = len(probe.array)
    media_gap = probe.config.parity_group_size + 4
    # Candidate media-error targets: every stored block (data and parity)
    # of every object, so injected errors land where streams actually
    # read and the retry/parity-fallback path gets exercised.
    blocks: list[tuple[int, int]] = []
    for obj in probe.layout.objects:
        for group in range(probe.layout.group_count(obj)):
            members, parity = probe.layout.group_geometry(obj.name, group)
            blocks.extend(members)
            blocks.append(parity)
    rng = RandomSource(seed)
    tag = scheme.value
    events: list[FaultEvent] = []
    failed: set[int] = set()
    degraded: set[int] = set()
    last_media = -media_gap
    for cycle in range(profile.cycles):
        # Whole-disk failures and repairs.
        if len(failed) < profile.max_concurrent_failures \
                and rng.random(f"{tag}-fail") < profile.fail_probability:
            candidates = [d for d in range(num_disks) if d not in failed]
            disk = candidates[rng.integers(f"{tag}-fail-pick", 0,
                                           len(candidates))]
            mid = (rng.random(f"{tag}-mid")
                   < profile.mid_cycle_probability)
            events.append(FaultEvent(cycle, disk, FaultAction.FAIL,
                                     mid_cycle=mid))
            failed.add(disk)
            degraded.discard(disk)  # the failure overrides fail-slow
        elif failed and rng.random(f"{tag}-repair") \
                < profile.repair_probability:
            pool = sorted(failed)
            disk = pool[rng.integers(f"{tag}-repair-pick", 0, len(pool))]
            events.append(FaultEvent(cycle, disk, FaultAction.REPAIR))
            failed.discard(disk)
        # Fail-slow transitions.
        if not degraded and rng.random(f"{tag}-degrade") \
                < profile.degrade_probability:
            candidates = [d for d in range(num_disks)
                          if d not in failed and d not in degraded]
            if candidates:
                disk = candidates[rng.integers(f"{tag}-degrade-pick", 0,
                                               len(candidates))]
                slowdown = profile.slowdowns[rng.integers(
                    f"{tag}-slowdown", 0, len(profile.slowdowns))]
                events.append(FaultEvent(cycle, disk, FaultAction.DEGRADE,
                                         slowdown=slowdown))
                degraded.add(disk)
        elif degraded and rng.random(f"{tag}-restore") \
                < profile.restore_probability:
            pool = sorted(degraded)
            disk = pool[rng.integers(f"{tag}-restore-pick", 0, len(pool))]
            events.append(FaultEvent(cycle, disk, FaultAction.RESTORE))
            degraded.discard(disk)
        # Latent sector errors, paced for the scrubber.
        if cycle - last_media >= media_gap \
                and rng.random(f"{tag}-media") < profile.media_probability:
            candidates = [(d, p) for d, p in blocks if d not in failed]
            if candidates:
                disk, position = candidates[rng.integers(
                    f"{tag}-media-pick", 0, len(candidates))]
                transient = (rng.random(f"{tag}-transient")
                             < profile.transient_probability)
                events.append(FaultEvent(cycle, disk,
                                         FaultAction.MEDIA_ERROR,
                                         position=position,
                                         transient=transient))
                last_media = cycle
    return events


def replay(scheme: Scheme, events: list[FaultEvent], cycles: int,
           verify_payloads: bool = False,
           fast_forward: bool = True,
           profile: Optional[ChaosProfile] = None) -> dict[str, Any]:
    """Replay a fault script on a fresh server; returns the snapshot.

    With ``fast_forward`` the replay segments the campaign at the
    script's event cycles and lets the epoch engines (quiescent *and*
    stable-degraded) batch the cycles in between; the segmentation rules
    keep the snapshot bit-identical to the scalar loop:

    * an epoch never crosses a scripted event (faults land on exactly
      the cycle the scalar loop applies them);
    * the admission loop runs at every scalar cycle top, so an epoch is
      only attempted while every object is playing (a stream completion
      ends the epoch via ``stop_on_completion`` and hands the next cycle
      back to admission — and to the per-cycle rejection tally);
    * the scrubber's idle passes are credited in bulk only when its
      pending set is empty; any outstanding latent error keeps the loop
      scalar (the engines refuse those states anyway);
    * an epoch is only attempted on a window of at least
      ``MIN_EPOCH_SPAN`` cycles — entering an engine costs a table
      build and per-stream canonical checks, which a two-cycle gap
      between storm events can never repay.
    """
    from repro.faults.injector import FaultSchedule
    from repro.errors import AdmissionError
    server = build_chaos_server(scheme, verify_payloads=verify_payloads,
                                profile=profile)
    schedule = FaultSchedule(events)
    scrubber = SectorScrubber(server.array, tracks_per_pass=2)
    scheduler = server.scheduler
    names = server.catalog.names()
    boundaries = [c for c in schedule.event_cycles() if c < cycles]
    mid_cycles = set(schedule.mid_cycle_event_cycles())
    rejected = 0
    cycle = 0
    while cycle < cycles:
        schedule.apply(scheduler, server.cycle_index)
        # Keep the front door busy: one stream per object whenever the
        # previous one finished — a deterministic arrival process that
        # exercises degraded-mode admission on every fault transition.
        playing = {s.object.name for s in scheduler.active_streams}
        for name in names:
            if name in playing:
                continue
            try:
                server.admit(name)
                playing.add(name)
            except AdmissionError:
                rejected += 1
        if fast_forward and playing.issuperset(names) \
                and not scrubber.has_pending():
            boundary = next((b for b in boundaries if b > cycle), cycles)
            # The cycle feeding a mid-cycle strike must execute real
            # reads the strike can invalidate — keep it scalar.
            limit = boundary - cycle - (1 if boundary in mid_cycles else 0)
            advanced = (scheduler.run_epoch(limit, stop_on_completion=True)
                        if limit >= MIN_EPOCH_SPAN else 0)
            if advanced:
                scrubber.advance_idle(advanced)
                cycle += advanced
                continue
        server.run_cycle()
        # The patrol scrub runs between cycles, so a fresh latent error
        # is readable-by-streams for at least one cycle.
        scrubber.step()
        cycle += 1
    snap = snapshot(server, scrubber)
    snap["admissions_rejected"] = rejected
    return snap


def snapshot(server: Any, scrubber: Optional[SectorScrubber] = None,
             ) -> dict[str, Any]:
    """Everything observable about a finished run, JSON-canonical."""
    report = server.report
    scheduler = server.scheduler
    snap: dict[str, Any] = {
        "scheme": server.config.scheme.value,
        "rows": report.to_rows(),
        "payload_mismatches": report.payload_mismatches,
        "hiccups": [
            [h.cycle, h.stream_id, h.object_name, h.track, h.cause.value]
            for h in report.all_hiccups()
        ],
        "data_loss": [
            [e.cycle, list(e.failed_disks),
             {name: list(tracks)
              for name, tracks in sorted(e.lost_tracks.items())},
             list(e.shed_streams)]
            for e in report.data_loss_events
        ],
        "reads_per_disk": [d.reads for d in server.array.disks],
        "writes_per_disk": [d.writes for d in server.array.disks],
        "media_per_disk": [
            [d.media_errors_injected, d.media_errors_cleared]
            for d in server.array.disks
        ],
        "streams": [
            [s.stream_id, s.status.value, s.delivered_tracks,
             s.hiccup_count, s.reconstructed_tracks,
             sorted(s.lost_tracks)]
            for s in scheduler.streams.values()
        ],
        "lost_tracks": {name: list(tracks)
                        for name, tracks in server.lost_tracks.items()},
        "redundant_fault_commands": scheduler.redundant_fault_commands,
    }
    if scrubber is not None:
        snap["scrub"] = [scrubber.passes_run, scrubber.errors_repaired]
    return snap


def snapshot_digest(snap: dict[str, Any]) -> str:
    """SHA-256 of the canonical JSON encoding of a snapshot."""
    canonical = json.dumps(snap, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# -- hiccup classification ------------------------------------------------------


class _Allowances:
    """Per-cycle windows in which each hiccup class is legitimate."""

    __slots__ = ("multi", "mid", "fault_window", "degrade_window")

    def __init__(self, events: list[FaultEvent], cycles: int,
                 window: int) -> None:
        self.multi: set[int] = set()
        self.mid: set[int] = set()
        self.fault_window: set[int] = set()
        self.degrade_window: set[int] = set()
        by_cycle: dict[int, list[FaultEvent]] = {}
        for event in events:
            by_cycle.setdefault(event.cycle, []).append(event)
        failed: set[int] = set()
        degraded: set[int] = set()
        horizon = cycles + window + 1
        for cycle in range(cycles):
            for event in by_cycle.get(cycle, ()):
                span = range(cycle, min(cycle + window + 1, horizon))
                if event.action is FaultAction.FAIL:
                    failed.add(event.disk_id)
                    degraded.discard(event.disk_id)
                    self.fault_window.update(span)
                    if event.mid_cycle:
                        self.mid.update(span)
                elif event.action is FaultAction.REPAIR:
                    failed.discard(event.disk_id)
                    self.fault_window.update(span)
                elif event.action is FaultAction.DEGRADE:
                    degraded.add(event.disk_id)
                    self.degrade_window.update(span)
                elif event.action is FaultAction.RESTORE:
                    degraded.discard(event.disk_id)
                    self.degrade_window.update(span)
            if len(failed) >= 2:
                self.multi.update(
                    range(cycle, min(cycle + window + 1, horizon)))
            if failed:
                self.fault_window.add(cycle)
            if degraded:
                self.degrade_window.add(cycle)

    def permits(self, scheme: Scheme, cycle: int, cause: str) -> bool:
        """Whether the paper's bounds excuse this hiccup."""
        if cause == "data-loss":
            return cycle in self.multi
        if cause == "mid-cycle-failure":
            return cycle in self.mid
        if cause == "media-error":
            # A lone latent error must be absorbed by retry + parity;
            # only a concurrent fault excuses a media hiccup.
            return (cycle in self.fault_window
                    or cycle in self.degrade_window)
        if cause == "slot-overflow":
            return (cycle in self.degrade_window or cycle in self.multi
                    or (scheme in _TRANSITION_SCHEMES
                        and cycle in self.fault_window))
        # disk-failure / transition / buffer-exhausted: the staggered and
        # non-clustered schemes hiccup during bounded transitions; the
        # clustered-parity group reads (SR) and the shift-right cascade
        # (IB) must stay clean outside double failures and mid-cycle hits.
        if scheme in _TRANSITION_SCHEMES:
            return cycle in self.fault_window or cycle in self.multi
        return cycle in self.multi or cycle in self.mid


_TRANSITION_SCHEMES = frozenset(
    {Scheme.STAGGERED_GROUP, Scheme.NON_CLUSTERED})


# -- campaigns ------------------------------------------------------------------


def run_campaign(scheme: Scheme, seed: int,
                 profile: Optional[ChaosProfile] = None,
                 check_payload_mode: bool = True,
                 fast_forward: bool = True) -> ChaosResult:
    """Run one scheme's seeded campaign; returns invariant results.

    ``fast_forward`` lets the replays ride the epoch engines (default);
    the payload-mode replay always runs scalar cycles (the engines
    refuse payload mode), so the mode-equivalence invariant doubles as
    a fast-vs-scalar digest check on every campaign.
    """
    profile = profile if profile is not None else ChaosProfile()
    events = generate_script(scheme, seed, profile)
    probe = build_chaos_server(scheme, profile=profile)
    window = probe.config.parity_group_size + 3
    violations: list[str] = []

    first = replay(scheme, events, profile.cycles,
                   fast_forward=fast_forward, profile=profile)
    second = replay(scheme, events, profile.cycles,
                    fast_forward=fast_forward, profile=profile)
    digest = snapshot_digest(first)
    if snapshot_digest(second) != digest:
        violations.append("replay of the same script diverged "
                          "(determinism broken)")
    if check_payload_mode:
        verified = replay(scheme, events, profile.cycles,
                          verify_payloads=True,
                          fast_forward=fast_forward, profile=profile)
        if verified["payload_mismatches"]:
            violations.append(
                f"{verified['payload_mismatches']} payload mismatches in "
                "the byte-verified replay")
            verified["payload_mismatches"] = 0
        if snapshot_digest(verified) != digest:
            violations.append("metadata-only and payload-mode replays "
                              "disagree")

    allowances = _Allowances(events, profile.cycles, window)
    for cycle, stream_id, name, track, cause in first["hiccups"]:
        if not allowances.permits(scheme, cycle, cause):
            violations.append(
                f"unexcused hiccup: cycle {cycle} stream {stream_id} "
                f"{name!r} track {track} ({cause})")

    rows = first["rows"]
    return ChaosResult(
        scheme=scheme,
        seed=seed,
        cycles=profile.cycles,
        events=len(events),
        digest=digest,
        total_hiccups=len(first["hiccups"]),
        total_media_errors=sum(r["media_errors"] for r in rows),
        total_streams_shed=sum(r["streams_shed"] for r in rows),
        data_loss_events=len(first["data_loss"]),
        scrub_repairs=first["scrub"][1],
        violations=violations,
    )


def run_campaigns(seed: int, schemes: Optional[list[Scheme]] = None,
                  profile: Optional[ChaosProfile] = None,
                  check_payload_mode: bool = True,
                  workers: int = 1,
                  fast_forward: bool = True) -> list[ChaosResult]:
    """Run campaigns for several schemes (default: every implemented scheme).

    ``workers > 1`` fans the campaigns out over a spawn process pool;
    each campaign is a pure function of ``(scheme, seed, profile)``, and
    results come back in scheme order, so the output is bit-identical to
    the serial run (the digests are compared by the regression guard in
    ``benchmarks/bench_parallel.py``).
    """
    from repro.schemes import ALL_IMPLEMENTED_SCHEMES
    if schemes is None:
        schemes = list(ALL_IMPLEMENTED_SCHEMES)
    if workers == 1:
        return [run_campaign(scheme, seed, profile=profile,
                             check_payload_mode=check_payload_mode,
                             fast_forward=fast_forward)
                for scheme in schemes]
    from repro.parallel import ParallelRunner, TaskSpec
    tasks = [
        TaskSpec(run_campaign, args=(scheme, seed),
                 kwargs={"profile": profile,
                         "check_payload_mode": check_payload_mode,
                         "fast_forward": fast_forward},
                 label=f"chaos-{scheme.value}-{seed}")
        for scheme in schemes
    ]
    results: list[ChaosResult] = ParallelRunner(workers).run(tasks)
    return results


def campaign_seeds(root_seed: int, count: int) -> tuple[int, ...]:
    """``count`` independent campaign seeds derived from one root seed.

    Thin wrapper over :func:`repro.parallel.derive_seeds` so multi-run
    campaigns (``run_campaign_grid``) stay reproducible from a single
    integer.
    """
    from repro.parallel import derive_seeds
    return derive_seeds(root_seed, count)


def run_campaign_grid(seeds: list[int],
                      schemes: Optional[list[Scheme]] = None,
                      profile: Optional[ChaosProfile] = None,
                      check_payload_mode: bool = True,
                      workers: int = 1,
                      fast_forward: bool = True) -> list[ChaosResult]:
    """Campaigns over a ``seeds x schemes`` grid, in (seed, scheme) order.

    The full grid is one flat task list, so a pool sees maximum
    parallel width; the merged result order (seed-major, then scheme)
    is independent of workers.
    """
    from repro.schemes import ALL_IMPLEMENTED_SCHEMES
    if schemes is None:
        schemes = list(ALL_IMPLEMENTED_SCHEMES)
    cells = [(seed, scheme) for seed in seeds for scheme in schemes]
    if workers == 1:
        return [run_campaign(scheme, seed, profile=profile,
                             check_payload_mode=check_payload_mode,
                             fast_forward=fast_forward)
                for seed, scheme in cells]
    from repro.parallel import ParallelRunner, TaskSpec
    tasks = [
        TaskSpec(run_campaign, args=(scheme, seed),
                 kwargs={"profile": profile,
                         "check_payload_mode": check_payload_mode,
                         "fast_forward": fast_forward},
                 label=f"chaos-{scheme.value}-{seed}")
        for seed, scheme in cells
    ]
    results: list[ChaosResult] = ParallelRunner(workers).run(tasks)
    return results
