"""Exact birth–death reliability chains: how good are eq. (4)–(6)?

The paper's MTTF formulas are the standard disk-array approximations
(valid for MTTR << MTTF).  This module solves the underlying
continuous-time Markov chains *exactly* (linear solve for the expected
absorption time), so the approximation error can be measured instead of
assumed:

* **Clustered layouts** (SR/SG/NC): the chain over "i disks down, all in
  distinct clusters" is exact — from state ``i``, a new failure is
  catastrophic with probability ``i(C-1)/(D-i)`` (each degraded cluster
  has ``C-1`` surviving members), repairs occur at rate ``i/MTTR``.
  Result: eq. (4) is accurate to O(MTTR/MTTF) — fractions of a percent at
  the paper's parameters.

* **Improved bandwidth**: a disk shares parity groups with ``C-2``
  neighbours in its own cluster, the ``C-1`` data disks of the *previous*
  cluster (it holds some of their parity), and the ``C-1`` disks of the
  *next* cluster (they hold some of its parity) — an exposure of
  ``3C-4``, not the ``2C-1`` in eq. (5).  The exact chain (exposure-zone
  overlaps neglected, which only matters at i >= 2) shows eq. (5)
  *overstates* the IB MTTF by roughly ``(3C-4)/(2C-1)`` — about 22% at
  C = 5.  The paper's qualitative conclusion (IB is about half as
  reliable) is unaffected; the constant is just optimistic.

* **k concurrent failures** (the eq. 6 family): exact chain absorption at
  ``k`` simultaneous failures.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def _absorption_time_from_zero(up: list[float], down: list[float],
                               absorb: list[float]) -> float:
    """Expected time to absorption starting from state 0.

    ``up[i]``/``down[i]``/``absorb[i]`` are the outgoing rates of
    transient state ``i``; solves ``(diag(total) - offdiag) t = 1``.
    """
    n = len(up)
    if not (len(down) == len(absorb) == n):
        raise ConfigurationError("rate vectors must have equal length")
    matrix = np.zeros((n, n))
    for i in range(n):
        total = up[i] + down[i] + absorb[i]
        if total <= 0:
            raise ConfigurationError(f"state {i} has no outgoing rate")
        matrix[i, i] = total
        if i + 1 < n:
            matrix[i, i + 1] = -up[i]
        if i > 0:
            matrix[i, i - 1] = -down[i]
    times = np.linalg.solve(matrix, np.ones(n))
    return float(times[0])


def exact_mttf_clustered_hours(num_disks: int, parity_group_size: int,
                               mttf_disk_hours: float,
                               mttr_disk_hours: float) -> float:
    """Exact mean time to catastrophic failure for clustered layouts.

    >>> # Paper Table 2 parameters: the approximation error is ~0.003%.
    >>> exact = exact_mttf_clustered_hours(100, 5, 300_000, 1)
    >>> round(exact / 2.25e8, 4)   # eq. (4) gives 2.25e8 hours
    1.0
    """
    _check(num_disks, parity_group_size, mttf_disk_hours, mttr_disk_hours)
    c = parity_group_size
    num_clusters = num_disks // c
    fail = 1.0 / mttf_disk_hours
    repair = 1.0 / mttr_disk_hours
    up, down, absorb = [], [], []
    for i in range(num_clusters + 1):
        exposed = i * (c - 1)                  # survivors in hit clusters
        fresh = num_disks - i - exposed        # disks in untouched clusters
        if i == num_clusters:
            fresh = 0
        up.append(max(fresh, 0) * fail)
        down.append(i * repair)
        absorb.append(exposed * fail)
    return _absorption_time_from_zero(up, down, absorb)


def exact_mttf_improved_hours(num_disks: int, parity_group_size: int,
                              mttf_disk_hours: float,
                              mttr_disk_hours: float) -> float:
    """Refined mean time to catastrophe for the improved-bandwidth layout.

    Uses the true per-disk exposure of ``3C - 4`` partner disks (own
    cluster, previous cluster's data, next cluster's parity holders);
    exposure-zone overlaps between multiple failures are neglected, which
    only perturbs states ``i >= 2`` — negligible when MTTR << MTTF.
    """
    _check(num_disks, parity_group_size, mttf_disk_hours, mttr_disk_hours)
    c = parity_group_size
    stripe = c - 1
    num_clusters = num_disks // stripe
    exposure = 3 * c - 4 if c > 2 else 2 * stripe + (c - 2)
    fail = 1.0 / mttf_disk_hours
    repair = 1.0 / mttr_disk_hours
    max_safe = max(1, num_clusters // 2)  # alternating clusters at most
    up, down, absorb = [], [], []
    for i in range(max_safe + 1):
        exposed = min(i * exposure, num_disks - i)
        fresh = num_disks - i - exposed
        if i == max_safe:
            fresh = 0
        up.append(max(fresh, 0) * fail)
        down.append(i * repair)
        absorb.append(exposed * fail)
    return _absorption_time_from_zero(up, down, absorb)


def exact_time_to_k_concurrent_hours(num_disks: int, k: int,
                                     mttf_disk_hours: float,
                                     mttr_disk_hours: float,
                                     repair_policy: str = "parallel",
                                     ) -> float:
    """Exact mean time until ``k`` disks are down simultaneously.

    The exact counterpart of the eq. (6) family
    ``MTTF^k / (D (D-1) ... (D-k+1) MTTR^(k-1))`` — which, it turns out,
    implicitly assumes a **single repairman**: with ``i`` failed disks it
    uses a repair rate of ``1/MTTR``, not ``i/MTTR``.  With the physically
    natural ``repair_policy="parallel"`` (every failed disk is being
    reloaded concurrently), the true mean time is ``(k-1)!`` times the
    formula: parallel repairs make deep failure pile-ups *harder* to
    reach, so eq. (6) understates MTTDS — conservatively, as it happens.
    ``repair_policy="single"`` reproduces the formula's assumption.
    """
    if k < 1 or k > num_disks:
        raise ConfigurationError(f"k must be in 1..{num_disks}, got {k}")
    if mttf_disk_hours <= 0 or mttr_disk_hours <= 0:
        raise ConfigurationError("mttf and mttr must be positive")
    if repair_policy not in ("parallel", "single"):
        raise ConfigurationError(
            f"repair policy must be 'parallel' or 'single', "
            f"got {repair_policy!r}"
        )
    fail = 1.0 / mttf_disk_hours
    repair = 1.0 / mttr_disk_hours
    up, down, absorb = [], [], []
    for i in range(k):
        rate_up = (num_disks - i) * fail
        if i == k - 1:
            up.append(0.0)
            absorb.append(rate_up)
        else:
            up.append(rate_up)
            absorb.append(0.0)
        if repair_policy == "parallel":
            down.append(i * repair)
        else:
            down.append((1 if i else 0) * repair)
    return _absorption_time_from_zero(up, down, absorb)


def _check(num_disks: int, parity_group_size: int,
           mttf_disk_hours: float, mttr_disk_hours: float) -> None:
    if parity_group_size < 2:
        raise ConfigurationError("parity group size must be >= 2")
    if num_disks < parity_group_size:
        raise ConfigurationError("need at least one cluster of disks")
    if mttf_disk_hours <= 0 or mttr_disk_hours <= 0:
        raise ConfigurationError("mttf and mttr must be positive")
