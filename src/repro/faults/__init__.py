"""Fault injection and Monte-Carlo reliability estimation."""

from repro.faults.injector import ExponentialFaultInjector, FaultEvent, FaultSchedule
from repro.faults.markov import (
    exact_mttf_clustered_hours,
    exact_mttf_improved_hours,
    exact_time_to_k_concurrent_hours,
)
from repro.faults.reliability import (
    ReliabilityEstimate,
    catastrophic_condition,
    k_concurrent_condition,
    simulate_mean_time_to,
)

__all__ = [
    "ExponentialFaultInjector",
    "FaultEvent",
    "FaultSchedule",
    "ReliabilityEstimate",
    "catastrophic_condition",
    "exact_mttf_clustered_hours",
    "exact_mttf_improved_hours",
    "exact_time_to_k_concurrent_hours",
    "k_concurrent_condition",
    "simulate_mean_time_to",
]
