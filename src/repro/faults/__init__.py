"""Fault injection, chaos campaigns, and Monte-Carlo reliability."""

from repro.faults.chaos import (
    ChaosProfile,
    ChaosResult,
    run_campaign,
    run_campaigns,
)
from repro.faults.domain import SectorScrubber, degraded_service_fraction
from repro.faults.injector import (
    ExponentialFaultInjector,
    FaultAction,
    FaultEvent,
    FaultSchedule,
)
from repro.faults.markov import (
    exact_mttf_clustered_hours,
    exact_mttf_improved_hours,
    exact_time_to_k_concurrent_hours,
)
from repro.faults.reliability import (
    RebuildWindow,
    ReliabilityEstimate,
    catastrophic_condition,
    k_concurrent_condition,
    measure_rebuild_window,
    simulate_mean_time_to,
    simulate_mttds_with_measured_window,
)

__all__ = [
    "ChaosProfile",
    "ChaosResult",
    "ExponentialFaultInjector",
    "FaultAction",
    "FaultEvent",
    "FaultSchedule",
    "RebuildWindow",
    "ReliabilityEstimate",
    "SectorScrubber",
    "catastrophic_condition",
    "degraded_service_fraction",
    "exact_mttf_clustered_hours",
    "exact_mttf_improved_hours",
    "exact_time_to_k_concurrent_hours",
    "k_concurrent_condition",
    "measure_rebuild_window",
    "run_campaign",
    "run_campaigns",
    "simulate_mean_time_to",
    "simulate_mttds_with_measured_window",
]
