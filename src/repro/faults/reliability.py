"""Monte-Carlo reliability: simulated MTTF / MTTDS versus the closed forms.

The paper's equations (4)–(6) are standard birth–death approximations valid
for ``MTTR << MTTF``.  This module estimates the same quantities by direct
simulation of the failure/repair process (exponential lifetimes and repair
times per disk, event-driven, no cycle machinery), so the approximations
can be *validated*: with accelerated per-disk MTTF the simulated mean time
to catastrophe matches ``MTTF^2 / (D (C-1) MTTR)`` within sampling error,
and the IB layout shows the ``(2C-1)/(C-1)`` penalty.

:func:`measure_rebuild_window` closes the loop with the cycle machinery:
it times one online rebuild under streaming load (riding the
stable-degraded fast-forward engine), and
:func:`simulate_mttds_with_measured_window` feeds that measured window
into the Monte-Carlo estimate as the per-disk MTTR instead of a guess.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.parallel import ParallelRunner, TaskSpec, shard_ranges
from repro.sim.rng import RandomSource
from repro.units import hours_to_years, seconds_to_hours

if TYPE_CHECKING:
    from repro.layout.base import DataLayout

#: A stopping condition: given the set of currently failed disks, is the
#: system in the terminal state?
Condition = Callable[[set[int]], bool]


def catastrophic_condition(layout: "DataLayout") -> Condition:
    """Terminal when the layout loses data (uses layout geometry).

    Returns a bound method of the layout, so the condition pickles with
    its geometry and rides into spawn workers unchanged.
    """
    return layout.is_catastrophic_geometric


@dataclass(frozen=True)
class _KConcurrent:
    """Picklable ``len(failed) >= k`` predicate (spawn-safe)."""

    k: int

    def __call__(self, failed: set[int]) -> bool:
        return len(failed) >= self.k


def k_concurrent_condition(k: int) -> Condition:
    """Terminal when ``k`` disks are down at once (the eq. 6 family)."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return _KConcurrent(k)


@dataclass(frozen=True)
class ReliabilityEstimate:
    """Monte-Carlo result: sample mean with a normal-theory 95% CI."""

    samples: int
    mean_hours: float
    stdev_hours: float

    @property
    def ci95_hours(self) -> float:
        """Half-width of the 95% confidence interval."""
        if self.samples < 2:
            return float("inf")
        return 1.96 * self.stdev_hours / math.sqrt(self.samples)

    @property
    def mean_years(self) -> float:
        """Sample mean in years."""
        return hours_to_years(self.mean_hours)

    def consistent_with(self, expected_hours: float,
                        tolerance: float = 3.0) -> bool:
        """True if ``expected`` lies within ``tolerance`` x CI of the mean."""
        return abs(self.mean_hours - expected_hours) <= \
            tolerance * max(self.ci95_hours, 1e-12)


@dataclass(frozen=True)
class RebuildWindow:
    """A cycle-accurate measurement of one online rebuild under load."""

    cycles: int
    hours: float
    blocks: int
    ff_engaged_cycles: int
    #: Reconstruction reads served by each survivor (every disk except the
    #: one being rebuilt, in disk-id order).  Clustered layouts concentrate
    #: these on the failed disk's group mates; declustered layouts spread
    #: them, which :attr:`read_spread` quantifies.
    survivor_reads: tuple[int, ...] = ()

    @property
    def ff_residency(self) -> float:
        """Fraction of the window's cycles the fast path served."""
        if self.cycles == 0:
            return 0.0
        return self.ff_engaged_cycles / self.cycles

    @property
    def max_survivor_reads(self) -> int:
        """Reconstruction reads on the busiest survivor."""
        return max(self.survivor_reads, default=0)

    @property
    def mean_survivor_reads(self) -> float:
        """Reconstruction reads averaged over all survivors."""
        if not self.survivor_reads:
            return 0.0
        return sum(self.survivor_reads) / len(self.survivor_reads)

    @property
    def read_spread(self) -> float:
        """Max/mean survivor read load — 1.0 is perfectly balanced.

        A clustered rebuild confined to one parity group scores ~``D/C``;
        a well-declustered distributed rebuild stays near 1.
        """
        mean = self.mean_survivor_reads
        if mean == 0.0:
            return 0.0
        return self.max_survivor_reads / mean


def measure_rebuild_window(server: Any, disk_id: int = 0,
                           writes_per_cycle: Optional[int] = None,
                           max_cycles: int = 1_000_000,
                           fast_forward: bool = True) -> RebuildWindow:
    """Fail one disk of a (typically warm) server and time the rebuild.

    The paper's MTTDS closed forms take the repair window MTTR as a
    given; this measures it from the machinery itself — the online
    rebuild consumes only the slots the streaming load leaves idle, so
    the window stretches with utilisation.  With ``fast_forward`` the
    run rides the stable-degraded epoch engine (the scalar loop is
    bit-identical, just slower); the returned window reports how many
    cycles the engine actually served so callers can assert fast-path
    residency.
    """
    scheduler = server.scheduler
    scheduler.fail_disk(disk_id)
    rebuilder = scheduler.start_rebuild(
        disk_id, writes_per_cycle=writes_per_cycle)
    start = scheduler.cycle_index
    engaged_start = server.report.ff_engaged_cycles
    while not rebuilder.completed:
        elapsed = scheduler.cycle_index - start
        if elapsed >= max_cycles:
            raise RuntimeError(
                f"rebuild of disk {disk_id} not finished after "
                f"{max_cycles} cycles ({rebuilder.blocks_rebuilt}/"
                f"{rebuilder.total_blocks} blocks)")
        if fast_forward:
            advanced = scheduler.run_epoch(max_cycles - elapsed)
            if advanced:
                continue
        scheduler.run_cycle()
    cycles = scheduler.cycle_index - start
    return RebuildWindow(
        cycles=cycles,
        hours=seconds_to_hours(cycles * server.config.cycle_length_s),
        blocks=rebuilder.total_blocks,
        ff_engaged_cycles=(server.report.ff_engaged_cycles
                           - engaged_start),
        survivor_reads=tuple(
            rebuilder.source_reads.get(survivor, 0)
            for survivor in range(len(server.array))
            if survivor != disk_id),
    )


def simulate_mttds_with_measured_window(
        server: Any, condition: Condition,
        mttf_disk_hours: float,
        disk_id: int = 0,
        replications: int = 200, seed: int = 0,
        workers: int = 1,
        fast_forward: bool = True,
        ) -> tuple[RebuildWindow, ReliabilityEstimate]:
    """MTTDS with the repair window *measured*, not assumed.

    Times one online rebuild of ``server`` (riding the degraded
    fast-forward engine by default), then runs the Monte-Carlo
    mean-time-to-condition with that window as the per-disk MTTR.
    Returns ``(window, estimate)`` so callers can report both.
    """
    window = measure_rebuild_window(server, disk_id=disk_id,
                                    fast_forward=fast_forward)
    estimate = simulate_mean_time_to(
        num_disks=len(server.array),
        mttf_disk_hours=mttf_disk_hours,
        mttr_disk_hours=max(window.hours, 1e-9),
        condition=condition,
        replications=replications,
        seed=seed,
        workers=workers,
    )
    return window, estimate


def _one_replication(num_disks: int, mttf_h: float, mttr_h: float,
                     condition: Condition,
                     rng: RandomSource, replica: int) -> float:
    """Time (hours) until the condition first holds, one sample path."""
    source = rng.spawn(f"replica-{replica}")
    # Event heap: (time, disk, is_failure).
    heap: list[tuple[float, int, bool]] = []
    for disk in range(num_disks):
        heapq.heappush(heap,
                       (source.exponential("events", mttf_h), disk, True))
    failed: set[int] = set()
    while True:
        time, disk, is_failure = heapq.heappop(heap)
        if is_failure:
            failed.add(disk)
            if condition(failed):
                return time
            heapq.heappush(
                heap, (time + source.exponential("events", mttr_h),
                       disk, False))
        else:
            failed.discard(disk)
            heapq.heappush(
                heap, (time + source.exponential("events", mttf_h),
                       disk, True))


def _replication_batch(num_disks: int, mttf_h: float, mttr_h: float,
                       condition: Condition, seed: int,
                       start: int, stop: int) -> list[float]:
    """Replicas ``start..stop-1`` of one ensemble (spawn-safe shard).

    Each replica's RNG is spawned from a fresh root source by its own
    index, so the samples depend only on ``(seed, replica)`` — never on
    how the ensemble was sliced into shards or which worker ran them.
    """
    rng = RandomSource(seed)
    return [
        _one_replication(num_disks, mttf_h, mttr_h, condition, rng, replica)
        for replica in range(start, stop)
    ]


def simulate_mean_time_to(num_disks: int, mttf_disk_hours: float,
                          mttr_disk_hours: float, condition: Condition,
                          replications: int = 200,
                          seed: int = 0,
                          max_event_horizon_hours: Optional[float] = None,
                          workers: int = 1,
                          ) -> ReliabilityEstimate:
    """Estimate the mean time until ``condition`` first holds.

    Use accelerated (small) per-disk MTTF values so replications finish in
    reasonable time; the *ratio* to the closed form is scale-free, which is
    what the validation benchmarks check.

    ``workers > 1`` shards the replications over a spawn process pool
    (``condition`` must be picklable — the module's condition factories
    all are).  Results are **bit-identical** to the serial run: replica
    RNG streams depend only on ``(seed, replica)`` and shard results are
    concatenated in replica order.
    """
    if replications < 1:
        raise ValueError(f"need at least one replication, got {replications}")
    if num_disks < 1:
        raise ValueError(f"need at least one disk, got {num_disks}")
    if mttf_disk_hours <= 0 or mttr_disk_hours <= 0:
        raise ValueError("mttf and mttr must be positive")
    if workers == 1:
        rng = RandomSource(seed)
        samples = [
            _one_replication(num_disks, mttf_disk_hours, mttr_disk_hours,
                             condition, rng, replica)
            for replica in range(replications)
        ]
    else:
        # A few shards per worker so an unlucky long replica cannot
        # serialise the tail of the run.
        spans = shard_ranges(replications, 4 * workers)
        tasks = [
            TaskSpec(_replication_batch,
                     args=(num_disks, mttf_disk_hours, mttr_disk_hours,
                           condition, seed, start, stop),
                     label=f"replications-{start}-{stop}")
            for start, stop in spans
        ]
        samples = []
        for batch in ParallelRunner(workers).run(tasks):
            samples.extend(batch)
    mean = sum(samples) / len(samples)
    if len(samples) > 1:
        variance = sum((s - mean) ** 2 for s in samples) / (len(samples) - 1)
    else:
        variance = 0.0
    return ReliabilityEstimate(
        samples=len(samples),
        mean_hours=mean,
        stdev_hours=math.sqrt(variance),
    )
