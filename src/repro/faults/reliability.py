"""Monte-Carlo reliability: simulated MTTF / MTTDS versus the closed forms.

The paper's equations (4)–(6) are standard birth–death approximations valid
for ``MTTR << MTTF``.  This module estimates the same quantities by direct
simulation of the failure/repair process (exponential lifetimes and repair
times per disk, event-driven, no cycle machinery), so the approximations
can be *validated*: with accelerated per-disk MTTF the simulated mean time
to catastrophe matches ``MTTF^2 / (D (C-1) MTTR)`` within sampling error,
and the IB layout shows the ``(2C-1)/(C-1)`` penalty.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.parallel import ParallelRunner, TaskSpec, shard_ranges
from repro.sim.rng import RandomSource
from repro.units import hours_to_years

if TYPE_CHECKING:
    from repro.layout.base import DataLayout

#: A stopping condition: given the set of currently failed disks, is the
#: system in the terminal state?
Condition = Callable[[set[int]], bool]


def catastrophic_condition(layout: "DataLayout") -> Condition:
    """Terminal when the layout loses data (uses layout geometry).

    Returns a bound method of the layout, so the condition pickles with
    its geometry and rides into spawn workers unchanged.
    """
    return layout.is_catastrophic_geometric


@dataclass(frozen=True)
class _KConcurrent:
    """Picklable ``len(failed) >= k`` predicate (spawn-safe)."""

    k: int

    def __call__(self, failed: set[int]) -> bool:
        return len(failed) >= self.k


def k_concurrent_condition(k: int) -> Condition:
    """Terminal when ``k`` disks are down at once (the eq. 6 family)."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return _KConcurrent(k)


@dataclass(frozen=True)
class ReliabilityEstimate:
    """Monte-Carlo result: sample mean with a normal-theory 95% CI."""

    samples: int
    mean_hours: float
    stdev_hours: float

    @property
    def ci95_hours(self) -> float:
        """Half-width of the 95% confidence interval."""
        if self.samples < 2:
            return float("inf")
        return 1.96 * self.stdev_hours / math.sqrt(self.samples)

    @property
    def mean_years(self) -> float:
        """Sample mean in years."""
        return hours_to_years(self.mean_hours)

    def consistent_with(self, expected_hours: float,
                        tolerance: float = 3.0) -> bool:
        """True if ``expected`` lies within ``tolerance`` x CI of the mean."""
        return abs(self.mean_hours - expected_hours) <= \
            tolerance * max(self.ci95_hours, 1e-12)


def _one_replication(num_disks: int, mttf_h: float, mttr_h: float,
                     condition: Condition,
                     rng: RandomSource, replica: int) -> float:
    """Time (hours) until the condition first holds, one sample path."""
    source = rng.spawn(f"replica-{replica}")
    # Event heap: (time, disk, is_failure).
    heap: list[tuple[float, int, bool]] = []
    for disk in range(num_disks):
        heapq.heappush(heap,
                       (source.exponential("events", mttf_h), disk, True))
    failed: set[int] = set()
    while True:
        time, disk, is_failure = heapq.heappop(heap)
        if is_failure:
            failed.add(disk)
            if condition(failed):
                return time
            heapq.heappush(
                heap, (time + source.exponential("events", mttr_h),
                       disk, False))
        else:
            failed.discard(disk)
            heapq.heappush(
                heap, (time + source.exponential("events", mttf_h),
                       disk, True))


def _replication_batch(num_disks: int, mttf_h: float, mttr_h: float,
                       condition: Condition, seed: int,
                       start: int, stop: int) -> list[float]:
    """Replicas ``start..stop-1`` of one ensemble (spawn-safe shard).

    Each replica's RNG is spawned from a fresh root source by its own
    index, so the samples depend only on ``(seed, replica)`` — never on
    how the ensemble was sliced into shards or which worker ran them.
    """
    rng = RandomSource(seed)
    return [
        _one_replication(num_disks, mttf_h, mttr_h, condition, rng, replica)
        for replica in range(start, stop)
    ]


def simulate_mean_time_to(num_disks: int, mttf_disk_hours: float,
                          mttr_disk_hours: float, condition: Condition,
                          replications: int = 200,
                          seed: int = 0,
                          max_event_horizon_hours: Optional[float] = None,
                          workers: int = 1,
                          ) -> ReliabilityEstimate:
    """Estimate the mean time until ``condition`` first holds.

    Use accelerated (small) per-disk MTTF values so replications finish in
    reasonable time; the *ratio* to the closed form is scale-free, which is
    what the validation benchmarks check.

    ``workers > 1`` shards the replications over a spawn process pool
    (``condition`` must be picklable — the module's condition factories
    all are).  Results are **bit-identical** to the serial run: replica
    RNG streams depend only on ``(seed, replica)`` and shard results are
    concatenated in replica order.
    """
    if replications < 1:
        raise ValueError(f"need at least one replication, got {replications}")
    if num_disks < 1:
        raise ValueError(f"need at least one disk, got {num_disks}")
    if mttf_disk_hours <= 0 or mttr_disk_hours <= 0:
        raise ValueError("mttf and mttr must be positive")
    if workers == 1:
        rng = RandomSource(seed)
        samples = [
            _one_replication(num_disks, mttf_disk_hours, mttr_disk_hours,
                             condition, rng, replica)
            for replica in range(replications)
        ]
    else:
        # A few shards per worker so an unlucky long replica cannot
        # serialise the tail of the run.
        spans = shard_ranges(replications, 4 * workers)
        tasks = [
            TaskSpec(_replication_batch,
                     args=(num_disks, mttf_disk_hours, mttr_disk_hours,
                           condition, seed, start, stop),
                     label=f"replications-{start}-{stop}")
            for start, stop in spans
        ]
        samples = []
        for batch in ParallelRunner(workers).run(tasks):
            samples.extend(batch)
    mean = sum(samples) / len(samples)
    if len(samples) > 1:
        variance = sum((s - mean) ** 2 for s in samples) / (len(samples) - 1)
    else:
        variance = 0.0
    return ReliabilityEstimate(
        samples=len(samples),
        mean_hours=mean,
        stdev_hours=math.sqrt(variance),
    )
