"""The shared buffer-server pool of the Non-clustered scheme (Section 3).

"Rather than each cluster have all the memory it needs to run in degraded
mode (which is a rare event), we envision an architecture in which there
are one or more extra processors containing a buffer pool ... shared by all
the clusters in the system."

The pool grants whole-cluster *leases*: when a cluster enters degraded mode
it borrows the extra buffering that group-at-a-time reads need; the lease is
returned when the failed disk is repaired.  A cluster that cannot get a
lease (pool exhausted — more than ``capacity_clusters`` degraded at once)
suffers degradation of service, which the caller records.
"""

from __future__ import annotations

from repro.errors import BufferExhausted


class BufferPool:
    """Cluster-granularity buffer leases plus track-level usage accounting."""

    def __init__(self, capacity_clusters: int, tracks_per_cluster: int) -> None:
        if capacity_clusters < 0:
            raise ValueError(
                f"pool capacity must be non-negative: {capacity_clusters}"
            )
        if tracks_per_cluster <= 0:
            raise ValueError(
                f"tracks per cluster must be positive: {tracks_per_cluster}"
            )
        self.capacity_clusters = capacity_clusters
        self.tracks_per_cluster = tracks_per_cluster
        self._leases: set[int] = set()
        #: Highest number of simultaneous leases observed.
        self.peak_leases = 0
        #: Number of lease requests that were refused.
        self.refusals = 0

    @property
    def leased_clusters(self) -> set[int]:
        """Clusters currently holding a lease."""
        return set(self._leases)

    @property
    def available(self) -> int:
        """Leases still grantable."""
        return self.capacity_clusters - len(self._leases)

    @property
    def tracks_in_use(self) -> int:
        """Track-sized buffers currently committed to degraded clusters."""
        return len(self._leases) * self.tracks_per_cluster

    def acquire(self, cluster: int) -> None:
        """Lease degraded-mode buffering for one cluster.

        Idempotent for a cluster that already holds a lease.

        Raises
        ------
        BufferExhausted
            If the pool is fully committed — the paper's NC degradation
            of service condition.
        """
        if cluster in self._leases:
            return
        if len(self._leases) >= self.capacity_clusters:
            self.refusals += 1
            raise BufferExhausted(
                f"buffer pool exhausted: {len(self._leases)} clusters "
                f"already degraded (capacity {self.capacity_clusters})"
            )
        self._leases.add(cluster)
        self.peak_leases = max(self.peak_leases, len(self._leases))

    def release(self, cluster: int) -> None:
        """Return a cluster's lease (no-op if it held none)."""
        self._leases.discard(cluster)

    def holds(self, cluster: int) -> bool:
        """True if the cluster currently holds a lease."""
        return cluster in self._leases
