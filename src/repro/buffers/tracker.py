"""System-wide buffer occupancy tracking.

The paper's Figure 4 argument is entirely about *when* buffers are held:
Streaming RAID holds a whole parity group per stream at the same phase,
while the staggered scheme spreads peaks out of phase.  The tracker samples
occupancy every cycle so simulations can measure those profiles and compare
them with the closed-form requirements of eq. (12)–(15).
"""

from __future__ import annotations

from typing import Iterable

from repro.server.stream import Stream


class BufferTracker:
    """Samples and aggregates buffer occupancy over a run."""

    def __init__(self, track_size_mb: float) -> None:
        if track_size_mb <= 0:
            raise ValueError(f"track size must be positive: {track_size_mb}")
        self.track_size_mb = track_size_mb
        self._samples: list[int] = []
        self._per_stream_peak: dict[int, int] = {}

    def sample(self, streams: Iterable[Stream], extra_tracks: int = 0) -> int:
        """Record the current occupancy; returns tracks held.

        ``extra_tracks`` accounts for buffers held outside streams (e.g.
        the shared pool's in-use pages).
        """
        total = extra_tracks
        for stream in streams:
            held = stream.buffered_track_count
            total += held
            peak = self._per_stream_peak.get(stream.stream_id, 0)
            if held > peak:
                self._per_stream_peak[stream.stream_id] = held
        self._samples.append(total)
        return total

    @property
    def samples(self) -> list[int]:
        """Occupancy per sampled cycle, in tracks."""
        return list(self._samples)

    @property
    def peak_tracks(self) -> int:
        """Highest sampled occupancy."""
        return max(self._samples, default=0)

    @property
    def peak_mb(self) -> float:
        """Highest sampled occupancy in MB."""
        return self.peak_tracks * self.track_size_mb

    def stream_peak(self, stream_id: int) -> int:
        """Highest occupancy one stream reached."""
        return self._per_stream_peak.get(stream_id, 0)

    def mean_tracks(self) -> float:
        """Average occupancy over the sampled cycles."""
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)
