"""System-wide buffer occupancy tracking.

The paper's Figure 4 argument is entirely about *when* buffers are held:
Streaming RAID holds a whole parity group per stream at the same phase,
while the staggered scheme spreads peaks out of phase.  The tracker samples
occupancy every cycle so simulations can measure those profiles and compare
them with the closed-form requirements of eq. (12)–(15).
"""

from __future__ import annotations

from typing import Iterable

from repro.server.stream import Stream


class BufferTracker:
    """Samples and aggregates buffer occupancy over a run."""

    def __init__(self, track_size_mb: float) -> None:
        if track_size_mb <= 0:
            raise ValueError(f"track size must be positive: {track_size_mb}")
        self.track_size_mb = track_size_mb
        self._samples: list[int] = []
        self._per_stream_peak: dict[int, int] = {}

    def sample(self, streams: Iterable[Stream], extra_tracks: int = 0) -> int:
        """Record the current occupancy; returns tracks held.

        ``extra_tracks`` accounts for buffers held outside streams (e.g.
        the shared pool's in-use pages).
        """
        total = extra_tracks
        for stream in streams:
            held = stream.buffered_track_count
            total += held
            peak = self._per_stream_peak.get(stream.stream_id, 0)
            if held > peak:
                self._per_stream_peak[stream.stream_id] = held
        self._samples.append(total)
        return total

    def sample_counts(self, held_by_stream: dict[int, int],
                      extra_tracks: int = 0) -> int:
        """Record occupancy from precomputed per-stream track counts.

        The quiescent fast-forward engine's counterpart of
        :meth:`sample`: stream buffers are virtual during a batched
        epoch, so the engine passes ``{stream_id: tracks held}``
        directly.  Aggregation (samples list, per-stream peaks) is
        identical to :meth:`sample` — zero-held streams never create or
        raise a peak entry either way.
        """
        total = extra_tracks
        peaks = self._per_stream_peak
        for stream_id, held in held_by_stream.items():
            total += held
            if held > peaks.get(stream_id, 0):
                peaks[stream_id] = held
        self._samples.append(total)
        return total

    def fold_epoch(self, samples: Iterable[int],
                   peaks: dict[int, int]) -> None:
        """Absorb a fast-forward epoch in one batch.

        ``samples`` are the epoch's per-cycle occupancy totals in cycle
        order; ``peaks`` maps stream ids to the highest occupancy each
        reached during the epoch (entries that do not beat the recorded
        peak are ignored, so callers may pass raised peaks only).
        """
        self._samples.extend(samples)
        per_stream = self._per_stream_peak
        for stream_id, peak in peaks.items():
            if peak > per_stream.get(stream_id, 0):
                per_stream[stream_id] = peak

    @property
    def samples(self) -> list[int]:
        """Occupancy per sampled cycle, in tracks."""
        return list(self._samples)

    @property
    def peak_tracks(self) -> int:
        """Highest sampled occupancy."""
        return max(self._samples, default=0)

    @property
    def peak_mb(self) -> float:
        """Highest sampled occupancy in MB."""
        return self.peak_tracks * self.track_size_mb

    def stream_peak(self, stream_id: int) -> int:
        """Highest occupancy one stream reached."""
        return self._per_stream_peak.get(stream_id, 0)

    def mean_tracks(self) -> float:
        """Average occupancy over the sampled cycles."""
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)
