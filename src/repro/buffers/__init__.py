"""Buffer accounting: per-stream tracking and the shared degraded-mode pool."""

from repro.buffers.pool import BufferPool
from repro.buffers.tracker import BufferTracker

__all__ = ["BufferPool", "BufferTracker"]
