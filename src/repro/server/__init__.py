"""The multimedia server: streams, metrics, admission, and the facade.

:class:`MultimediaServer` wires a data layout, a disk array, a scheme
scheduler, buffer accounting, and fault injection into one object with a
cycle-at-a-time ``run`` loop — the executable counterpart of the paper's
Figures 2–8.

``MultimediaServer`` is exposed lazily (PEP 562): the scheduler package
imports ``repro.server.metrics``/``repro.server.stream`` while the facade
imports the schedulers, so an eager import here would be circular.
"""

from repro.server.admission import AdmissionController, cluster_capacity
from repro.server.metrics import (
    CycleReport,
    HiccupRecord,
    SimulationReport,
)
from repro.server.stream import Stream, StreamStatus

__all__ = [
    "AdmissionController",
    "CycleReport",
    "HiccupRecord",
    "MultimediaServer",
    "SimulationReport",
    "Stream",
    "StreamStatus",
    "VideoOnDemandSystem",
    "WorkloadResult",
    "cluster_capacity",
]


def __getattr__(name: str) -> type:
    if name == "MultimediaServer":
        from repro.server.server import MultimediaServer
        return MultimediaServer
    if name == "WorkloadResult":
        from repro.server.server import WorkloadResult
        return WorkloadResult
    if name == "VideoOnDemandSystem":
        from repro.server.vod import VideoOnDemandSystem
        return VideoOnDemandSystem
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
