"""The full Figure 1 system: content tier + streaming tier, end to end.

:class:`VideoOnDemandSystem` couples a :class:`MultimediaServer` (the
cycle-scheduled disk farm) with a :class:`ContentManager` (the
tertiary↔disk working set) over one shared layout and disk array:

* a request for a *resident* title starts streaming immediately;
* a request for a *cold* title stages it from the tape library — possibly
  purging unpinned residents — and the stream starts when the load
  completes, cycles later;
* titles with active streams are pinned and cannot be purged mid-play;
* admission control still applies on top (a hot title can be resident
  and the bandwidth still full).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.content.manager import ContentManager, EvictionPolicy, RequestOutcome
from repro.errors import AdmissionError
from repro.media.catalog import Catalog
from repro.server.metrics import CycleReport, SimulationReport
from repro.server.server import MultimediaServer
from repro.server.stream import Stream
from repro.tertiary.tape import TapeLibrary


@dataclass
class VodStats:
    """Front-door accounting for one run."""

    started_immediately: int = 0
    started_after_staging: int = 0
    rejected_capacity: int = 0    # no space even after purging
    rejected_admission: int = 0   # disk-resident but bandwidth full
    pending: int = 0              # staged, waiting for the load to finish


class VideoOnDemandSystem:
    """The complete on-demand pipeline over one shared disk farm."""

    def __init__(self, server: MultimediaServer, library: Catalog,
                 tape: Optional[TapeLibrary] = None,
                 policy: EvictionPolicy = EvictionPolicy.LRU) -> None:
        self.server = server
        self.manager = ContentManager(
            server.layout, server.array, library,
            tape=tape, policy=policy)
        self.stats = VodStats()
        #: Streams currently holding a pin on their object.
        self._pinned_streams: dict[int, str] = {}
        #: (ready_cycle, object_name) loads awaiting completion.
        self._pending_starts: list[tuple[int, str]] = []

    # -- the front door ------------------------------------------------------

    def request(self, name: str) -> Optional[Stream]:
        """One viewer pressing play.

        Returns the stream if it starts this cycle, or None when the title
        must be staged first (the stream starts automatically later) or
        the request was rejected (see :attr:`stats`).
        """
        now_cycle = self.server.cycle_index
        now_s = now_cycle * self.server.config.cycle_length_s
        ticket = self.manager.request(name, now_s=now_s)
        if ticket.outcome is RequestOutcome.REJECTED:
            self.stats.rejected_capacity += 1
            return None
        if ticket.outcome is RequestOutcome.MISS:
            ready_cycle = now_cycle + max(1, math.ceil(
                (ticket.ready_time_s - now_s)
                / self.server.config.cycle_length_s))
            self._pending_starts.append((ready_cycle, name))
            self.stats.pending += 1
            return None
        return self._start_stream(name, staged=False)

    def _start_stream(self, name: str, staged: bool) -> Optional[Stream]:
        try:
            # Admit via the scheduler directly: staged titles live in the
            # library, not in the server's initial catalog.
            stream = self.server.scheduler.admit(
                self.manager.library.get(name))
        except AdmissionError:
            self.stats.rejected_admission += 1
            return None
        self.manager.pin(name)
        self._pinned_streams[stream.stream_id] = name
        if staged:
            self.stats.started_after_staging += 1
        else:
            self.stats.started_immediately += 1
        return stream

    # -- the clock -------------------------------------------------------------

    def run_cycle(self) -> CycleReport:
        """Advance one cycle: start due loads, stream, release pins."""
        self._start_due_loads()
        report = self.server.run_cycle()
        self._release_finished_pins()
        return report

    def run_cycles(self, count: int,
                   fast_forward: bool = False) -> list[CycleReport]:
        """Advance several cycles.

        With ``fast_forward=True`` the run segments at the pending-start
        cycles: each staged title still begins streaming on exactly the
        cycle its load completes, and the stretches between completions
        go through the scheduler's quiescent-epoch engine.  Pins are
        released at segment boundaries instead of every cycle — pin
        counts only matter to purge decisions, which happen inside
        :meth:`request`, never mid-run.
        """
        if not fast_forward:
            return [self.run_cycle() for _ in range(count)]
        reports: list[CycleReport] = []
        end = self.server.cycle_index + count
        while self.server.cycle_index < end:
            now = self.server.cycle_index
            self._start_due_loads()
            boundary = min((cycle for cycle, _ in self._pending_starts
                            if now < cycle < end), default=end)
            reports.extend(self.server.run_cycles(boundary - now,
                                                  fast_forward=True))
            self._release_finished_pins()
        return reports

    def _start_due_loads(self) -> None:
        """Start streams whose tape loads have completed by now."""
        now = self.server.cycle_index
        due = [(cycle, name) for cycle, name in self._pending_starts
               if cycle <= now]
        self._pending_starts = [(cycle, name)
                                for cycle, name in self._pending_starts
                                if cycle > now]
        for _cycle, name in due:
            self.stats.pending -= 1
            self._start_stream(name, staged=True)

    def _release_finished_pins(self) -> None:
        for stream_id in list(self._pinned_streams):
            stream = self.server.scheduler.streams[stream_id]
            if not stream.is_active:
                self.manager.unpin(self._pinned_streams.pop(stream_id))

    # -- convenience --------------------------------------------------------------

    @property
    def report(self) -> SimulationReport:
        """The streaming tier's simulation report."""
        return self.server.report

    def summary(self) -> str:
        """One-line front-door digest."""
        return (
            f"immediate {self.stats.started_immediately}, "
            f"after staging {self.stats.started_after_staging}, "
            f"pending {self.stats.pending}, "
            f"rejected {self.stats.rejected_capacity} capacity / "
            f"{self.stats.rejected_admission} admission; "
            f"hit rate {self.manager.hit_rate():.0%}"
        )
