"""Admission control: decide whether one more stream fits.

The controller enforces the scheme's analytic stream bound (equations
8–11), optionally shaved by a *headroom* fraction.  Headroom is how the
Improved-bandwidth scheme keeps the idle capacity its shift-right cascade
needs — Section 4: "some small amount of idle capacity could be reserved in
case of a disk failure".

:func:`fault_aware_capacity` is the degraded-mode counterpart: it
re-derives the effective stream capacity from the *live* fault-domain
state of the disk array (fail-slow throttles plus a scheme-specific
penalty for consumed redundancy), so the front door sheds or rejects
instead of admitting load the degraded array will drop as slot-overflow
hiccup storms.

:func:`cluster_capacity` lifts the same idea one level up, to a sharded
cluster: shards are fault-isolated (Viennot et al.'s independent-server
model), so the cluster-wide admissible stream count is simply the sum of
the shards' *effective* limits — a shard in degraded mode shrinks the
cluster bound by exactly its own lost capacity and nothing more.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:
    from repro.disk.drive import DiskArray

from repro.analysis.parameters import SystemParameters
from repro.analysis.streams import max_streams
from repro.errors import AdmissionError
from repro.schemes import Scheme


def fault_aware_capacity(base_limit: int, array: "DiskArray",
                         penalty: int = 0) -> int:
    """Effective stream capacity under the array's current fault state.

    The healthy bound ``base_limit`` shrinks two ways:

    * **fail-slow**: the slowest still-operational drive gates every
      scheme's striped reads, so capacity scales with the minimum
      :attr:`~repro.disk.drive.Disk.service_fraction` across operational
      drives (an array with every drive failed has zero capacity);
    * **consumed redundancy**: the scheme-specific ``penalty`` charges
      streams for failures no longer absorbed by reserve bandwidth
      (e.g. Improved-bandwidth failures beyond the ``K_IB`` reserve, or
      Non-clustered degraded clusters the buffer pool could not protect).
    """
    if base_limit < 0:
        raise ValueError(f"base limit must be non-negative, got {base_limit}")
    if penalty < 0:
        raise ValueError(f"penalty must be non-negative, got {penalty}")
    fraction = min(
        (disk.service_fraction for disk in array if not disk.is_failed),
        default=0.0,
    )
    limit = base_limit if fraction >= 1.0 else int(base_limit * fraction)
    return max(0, limit - penalty)


def cluster_capacity(shard_limits: Sequence[int]) -> int:
    """Cluster-wide admissible streams from per-shard effective limits.

    Feed it each shard's :meth:`~repro.sched.base.CycleScheduler.\
effective_admission_limit` — the fault-aware figure, not the healthy
    bound — and the sum *is* the cluster's degraded capacity, because
    shards share no disks, buffers, or parity groups.
    """
    if not shard_limits:
        raise ValueError("cluster has no shards")
    for limit in shard_limits:
        if limit < 0:
            raise ValueError(
                f"shard limit must be non-negative, got {limit}")
    return sum(shard_limits)


class AdmissionController:
    """Analytic-bound admission with optional reserved headroom."""

    def __init__(self, params: SystemParameters, parity_group_size: int,
                 scheme: Scheme, headroom_fraction: float = 0.0) -> None:
        if not 0.0 <= headroom_fraction < 1.0:
            raise ValueError(
                f"headroom fraction must be in [0, 1), got {headroom_fraction}"
            )
        self.params = params
        self.parity_group_size = parity_group_size
        self.scheme = scheme
        self.headroom_fraction = headroom_fraction
        self._bound = max_streams(params, parity_group_size, scheme)
        self.admitted = 0
        self.rejected = 0

    @property
    def capacity(self) -> int:
        """Admissible concurrent streams after headroom."""
        return int(self._bound * (1.0 - self.headroom_fraction))

    @property
    def available(self) -> int:
        """Streams that can still be admitted right now."""
        return max(0, self.capacity - self.admitted)

    def can_admit(self, count: int = 1) -> bool:
        """Would ``count`` more streams fit?"""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        return self.admitted + count <= self.capacity

    def admit(self, count: int = 1) -> None:
        """Claim capacity for ``count`` streams (AdmissionError if full)."""
        if not self.can_admit(count):
            self.rejected += count
            raise AdmissionError(
                f"cannot admit {count} stream(s): {self.admitted} active, "
                f"capacity {self.capacity}"
            )
        self.admitted += count

    def release(self, count: int = 1) -> None:
        """Return capacity when streams finish."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if count > self.admitted:
            raise ValueError(
                f"releasing {count} streams but only {self.admitted} admitted"
            )
        self.admitted -= count
