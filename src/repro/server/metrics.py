"""Delivery metrics: hiccups, reconstructions, buffer profiles, reports.

A *hiccup* (Section 1) is a missed track at its delivery deadline.  The
metrics layer records every hiccup with its cause so tests can check the
paper's transition-loss formulas, and samples buffer occupancy each cycle
so the staggered-group memory profile (Figure 4) can be regenerated.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Optional


class HiccupCause(enum.Enum):
    """Why a track missed its delivery deadline."""

    DISK_FAILURE = "disk-failure"          # data was on a failed disk
    TRANSITION = "transition"              # displaced by a degraded-mode shift
    SLOT_OVERFLOW = "slot-overflow"        # dropped: no disk slot in the cycle
    MID_CYCLE_FAILURE = "mid-cycle-failure"  # IB: failure during the read
    BUFFER_EXHAUSTED = "buffer-exhausted"  # NC: buffer pool empty
    MEDIA_ERROR = "media-error"            # latent sector error not recovered
    DATA_LOSS = "data-loss"                # track lost to a double failure


@dataclass(frozen=True)
class HiccupRecord:
    """One missed track."""

    cycle: int
    stream_id: int
    object_name: str
    track: int
    cause: HiccupCause


@dataclass(frozen=True)
class DataLossEvent:
    """A failure set crossed into data loss (MTTDS accounting).

    Recorded when a fail/repair transition changes the set of tracks that
    no surviving disk or parity block can reproduce: exactly which tracks
    of which objects are gone, and which streams were shed because their
    remaining playback crossed a lost track.  An empty ``lost_tracks``
    marks the recovery event (a repair brought every track back).
    """

    cycle: int
    failed_disks: tuple[int, ...]
    #: object name -> newly lost track numbers, ascending.
    lost_tracks: dict[str, tuple[int, ...]]
    shed_streams: tuple[int, ...]

    @property
    def total_lost_tracks(self) -> int:
        """Tracks newly lost in this event."""
        return sum(len(tracks) for tracks in self.lost_tracks.values())


@dataclass
class CycleReport:
    """What happened during one cycle."""

    cycle: int
    reads_planned: int = 0
    reads_executed: int = 0
    reads_dropped: int = 0
    parity_reads: int = 0
    tracks_delivered: int = 0
    reconstructions: int = 0
    blocks_rebuilt: int = 0
    hiccups: list[HiccupRecord] = field(default_factory=list)
    buffered_tracks: int = 0
    pool_tracks_in_use: int = 0
    streams_active: int = 0
    streams_terminated: int = 0
    media_errors: int = 0
    media_retries: int = 0
    media_reconstructions: int = 0
    media_recovery_reads: int = 0
    streams_shed: int = 0


@dataclass
class MetricsReducer:
    """Streaming fold of cycle reports: run totals in O(1) memory.

    Long steady-state runs (hundreds of thousands of cycles at paper
    scale) cannot afford an unbounded ``SimulationReport.cycles`` list.
    The reducer absorbs each finished :class:`CycleReport` into flat
    aggregate counters as it is recorded, so a bounded-tail report can
    discard old cycle objects while every ``total_*`` aggregate stays
    exact over the *whole* run.
    """

    cycles_seen: int = 0
    reads_planned: int = 0
    reads_executed: int = 0
    reads_dropped: int = 0
    parity_reads: int = 0
    tracks_delivered: int = 0
    reconstructions: int = 0
    blocks_rebuilt: int = 0
    hiccups: int = 0
    hiccup_counts: dict[HiccupCause, int] = field(default_factory=dict)
    peak_buffered_tracks: int = 0
    media_errors: int = 0
    media_retries: int = 0
    media_reconstructions: int = 0
    media_recovery_reads: int = 0
    streams_shed: int = 0

    def fold(self, report: CycleReport) -> None:
        """Absorb one finished cycle into the aggregates."""
        self.cycles_seen += 1
        self.reads_planned += report.reads_planned
        self.reads_executed += report.reads_executed
        self.reads_dropped += report.reads_dropped
        self.parity_reads += report.parity_reads
        self.tracks_delivered += report.tracks_delivered
        self.reconstructions += report.reconstructions
        self.blocks_rebuilt += report.blocks_rebuilt
        if report.hiccups:
            self.hiccups += len(report.hiccups)
            for record in report.hiccups:
                self.hiccup_counts[record.cause] = \
                    self.hiccup_counts.get(record.cause, 0) + 1
        if report.buffered_tracks > self.peak_buffered_tracks:
            self.peak_buffered_tracks = report.buffered_tracks
        self.media_errors += report.media_errors
        self.media_retries += report.media_retries
        self.media_reconstructions += report.media_reconstructions
        self.media_recovery_reads += report.media_recovery_reads
        self.streams_shed += report.streams_shed

    def merge(self, other: "MetricsReducer") -> None:
        """Absorb another reducer's aggregates (disjoint-server fold).

        The cross-shard counterpart of :meth:`fold`: every additive
        ``total_*`` source stays exact under the merge, and the peak
        buffer is the max of the two peaks (shards do not share buffer
        pools, so a cluster-wide simultaneous peak is not observable —
        the per-shard max is the honest bound).  ``cycles_seen`` adds:
        for a cluster it counts *server-cycles*, N shards running the
        same wall-clock cycle contribute N.
        """
        self.cycles_seen += other.cycles_seen
        self.reads_planned += other.reads_planned
        self.reads_executed += other.reads_executed
        self.reads_dropped += other.reads_dropped
        self.parity_reads += other.parity_reads
        self.tracks_delivered += other.tracks_delivered
        self.reconstructions += other.reconstructions
        self.blocks_rebuilt += other.blocks_rebuilt
        self.hiccups += other.hiccups
        for cause, count in other.hiccup_counts.items():
            self.hiccup_counts[cause] = \
                self.hiccup_counts.get(cause, 0) + count
        if other.peak_buffered_tracks > self.peak_buffered_tracks:
            self.peak_buffered_tracks = other.peak_buffered_tracks
        self.media_errors += other.media_errors
        self.media_retries += other.media_retries
        self.media_reconstructions += other.media_reconstructions
        self.media_recovery_reads += other.media_recovery_reads
        self.streams_shed += other.streams_shed


@dataclass
class SimulationReport:
    """Accumulated results of a simulation run.

    By default every :class:`CycleReport` is retained, so per-cycle
    inspection (``cycles[-1]``, :meth:`buffer_profile`, ...) works over
    the whole run.  With ``tail`` set, only the most recent ``tail``
    cycle objects are kept and a :class:`MetricsReducer` maintains the
    run-wide aggregates — memory stays bounded on arbitrarily long runs
    while every ``total_*`` property remains exact.
    """

    cycles: list[CycleReport] = field(default_factory=list)
    payload_mismatches: int = 0
    #: Every crossing into (or out of) data loss, in event order.
    data_loss_events: list[DataLossEvent] = field(default_factory=list)
    #: Cycle objects to retain (None: unbounded, the default).
    tail: Optional[int] = None
    #: Streaming aggregates; created on first record when ``tail`` is set.
    reducer: Optional[MetricsReducer] = None
    #: Cycles advanced by a fast-forward engine (diagnostic; deliberately
    #: outside :meth:`to_rows`/:meth:`summary` so fast and scalar runs
    #: stay fingerprint-identical).
    ff_engaged_cycles: int = 0
    #: Why the fast path declined or bailed, reason -> event count.
    #: Event-granular, not cycle-granular: one entry per engine entry
    #: that was refused plus one per in-epoch bail.
    ff_disengagements: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.tail is not None and self.tail < 0:
            raise ValueError(f"tail must be >= 0, got {self.tail}")

    def record(self, cycle_report: CycleReport) -> None:
        """Append one finished cycle (folding + trimming in tail mode)."""
        if self.tail is not None:
            if self.reducer is None:
                self.reducer = MetricsReducer()
            self.reducer.fold(cycle_report)
            self.cycles.append(cycle_report)
            excess = len(self.cycles) - self.tail
            if excess > 0:
                del self.cycles[:excess]
            return
        self.cycles.append(cycle_report)

    # -- cross-server merge ---------------------------------------------------

    def _whole_run_reducer(self) -> MetricsReducer:
        """A fresh reducer covering this report's *whole* run.

        In tail mode the streaming reducer already holds the run-wide
        aggregates (copied, so the merge never mutates an input); with
        no tail the retained cycles are the complete run and folding
        them reproduces the same aggregates exactly.
        """
        reducer = MetricsReducer()
        if self.reducer is not None:
            reducer.merge(self.reducer)
            return reducer
        for cycle_report in self.cycles:
            reducer.fold(cycle_report)
        return reducer

    def merge(self, other: "SimulationReport") -> "SimulationReport":
        """Fold two reports from *disjoint* servers into a new report.

        Built for cluster aggregation: the two servers simulated
        separate disk farms over (typically) the same cycle range, so
        retained cycles interleave by cycle index (stable — ``self``'s
        cycle first on ties) and equal indices are expected, meaning
        *server-cycles* rather than wall-clock cycles.  Neither input is
        mutated.

        Every ``total_*`` aggregate stays exact regardless of tail
        modes: if either side bounds its tail, the merged report keeps a
        run-wide :class:`MetricsReducer` (merged from each side's whole
        run) and bounds its retained cycles to the smaller tail;
        otherwise both cycle lists are complete and plain summation
        remains exact.
        """
        tails = [t for t in (self.tail, other.tail) if t is not None]
        tail = min(tails) if tails else None
        cycles = list(heapq.merge(self.cycles, other.cycles,
                                  key=lambda report: report.cycle))
        if tail is not None:
            cycles = cycles[len(cycles) - tail:] if tail else []
        merged = SimulationReport(
            cycles=cycles,
            payload_mismatches=(self.payload_mismatches
                                + other.payload_mismatches),
            data_loss_events=sorted(
                self.data_loss_events + other.data_loss_events,
                key=lambda event: event.cycle),
            tail=tail,
        )
        if tail is not None:
            reducer = self._whole_run_reducer()
            reducer.merge(other._whole_run_reducer())
            merged.reducer = reducer
        merged.ff_engaged_cycles = (self.ff_engaged_cycles
                                    + other.ff_engaged_cycles)
        for reason, count in (*self.ff_disengagements.items(),
                              *other.ff_disengagements.items()):
            merged.ff_disengagements[reason] = \
                merged.ff_disengagements.get(reason, 0) + count
        return merged

    # -- aggregates -----------------------------------------------------------

    @property
    def total_delivered(self) -> int:
        """Tracks delivered over the whole run."""
        if self.reducer is not None:
            return self.reducer.tracks_delivered
        return sum(c.tracks_delivered for c in self.cycles)

    @property
    def total_hiccups(self) -> int:
        """Missed tracks over the whole run."""
        if self.reducer is not None:
            return self.reducer.hiccups
        return sum(len(c.hiccups) for c in self.cycles)

    @property
    def total_reconstructions(self) -> int:
        """Tracks rebuilt on-the-fly from parity."""
        if self.reducer is not None:
            return self.reducer.reconstructions
        return sum(c.reconstructions for c in self.cycles)

    @property
    def total_parity_reads(self) -> int:
        """Parity blocks fetched."""
        if self.reducer is not None:
            return self.reducer.parity_reads
        return sum(c.parity_reads for c in self.cycles)

    @property
    def total_dropped_reads(self) -> int:
        """Reads displaced by slot overflow."""
        if self.reducer is not None:
            return self.reducer.reads_dropped
        return sum(c.reads_dropped for c in self.cycles)

    @property
    def total_media_errors(self) -> int:
        """Media-error read outcomes observed."""
        if self.reducer is not None:
            return self.reducer.media_errors
        return sum(c.media_errors for c in self.cycles)

    @property
    def total_media_retries(self) -> int:
        """Transient media errors recovered by an in-cycle retry."""
        if self.reducer is not None:
            return self.reducer.media_retries
        return sum(c.media_retries for c in self.cycles)

    @property
    def total_media_reconstructions(self) -> int:
        """Tracks recovered from latent errors via per-track parity."""
        if self.reducer is not None:
            return self.reducer.media_reconstructions
        return sum(c.media_reconstructions for c in self.cycles)

    @property
    def total_streams_shed(self) -> int:
        """Streams terminated by data loss or degraded-capacity shedding."""
        if self.reducer is not None:
            return self.reducer.streams_shed
        return sum(c.streams_shed for c in self.cycles)

    @property
    def total_lost_tracks(self) -> int:
        """Tracks lost across every data-loss event."""
        return sum(e.total_lost_tracks for e in self.data_loss_events)

    def all_hiccups(self) -> list[HiccupRecord]:
        """Every retained hiccup in cycle order.

        In tail mode only the retained cycles' records are available;
        :meth:`hiccups_by_cause` and :attr:`total_hiccups` still cover
        the whole run via the reducer.
        """
        return [h for c in self.cycles for h in c.hiccups]

    def hiccups_by_cause(self) -> dict[HiccupCause, int]:
        """Hiccup counts per cause (run-wide, even in tail mode)."""
        if self.reducer is not None:
            return dict(self.reducer.hiccup_counts)
        counts: dict[HiccupCause, int] = {}
        for record in self.all_hiccups():
            counts[record.cause] = counts.get(record.cause, 0) + 1
        return counts

    def buffer_profile(self) -> list[tuple[int, int]]:
        """(cycle, buffered tracks) samples — Figure 4's sawtooth.

        Covers the retained cycles only when a ``tail`` is set.
        """
        return [(c.cycle, c.buffered_tracks) for c in self.cycles]

    @property
    def peak_buffered_tracks(self) -> int:
        """Maximum simultaneous track buffers observed."""
        if self.reducer is not None:
            return self.reducer.peak_buffered_tracks
        return max((c.buffered_tracks for c in self.cycles), default=0)

    def hiccup_free(self) -> bool:
        """True if no track ever missed its deadline."""
        return self.total_hiccups == 0

    def ff_residency(self) -> float:
        """Fraction of the run's cycles advanced by a fast-forward engine.

        Benchmarks and chaos campaigns assert on this instead of (only)
        wall-clock: a perf regression that silently drops the fast path
        shows up here even on machines too fast to trip a time gate.
        """
        total = (self.reducer.cycles_seen if self.reducer is not None
                 else len(self.cycles))
        return self.ff_engaged_cycles / total if total else 0.0

    def to_rows(self) -> list[dict[str, int]]:
        """Per-cycle metrics as flat dicts (CSV/DataFrame-friendly)."""
        return [
            {
                "cycle": c.cycle,
                "reads_planned": c.reads_planned,
                "reads_executed": c.reads_executed,
                "reads_dropped": c.reads_dropped,
                "parity_reads": c.parity_reads,
                "tracks_delivered": c.tracks_delivered,
                "reconstructions": c.reconstructions,
                "blocks_rebuilt": c.blocks_rebuilt,
                "hiccups": len(c.hiccups),
                "buffered_tracks": c.buffered_tracks,
                "pool_tracks_in_use": c.pool_tracks_in_use,
                "streams_active": c.streams_active,
                "streams_terminated": c.streams_terminated,
                "media_errors": c.media_errors,
                "media_retries": c.media_retries,
                "media_reconstructions": c.media_reconstructions,
                "media_recovery_reads": c.media_recovery_reads,
                "streams_shed": c.streams_shed,
            }
            for c in self.cycles
        ]

    def summary(self) -> str:
        """One-paragraph human-readable digest."""
        causes = ", ".join(
            f"{cause.value}: {count}"
            for cause, count in sorted(self.hiccups_by_cause().items(),
                                       key=lambda item: item[0].value)
        ) or "none"
        cycle_count = (self.reducer.cycles_seen if self.reducer is not None
                       else len(self.cycles))
        text = (
            f"{cycle_count} cycles; delivered {self.total_delivered} "
            f"tracks; {self.total_hiccups} hiccups ({causes}); "
            f"{self.total_reconstructions} on-the-fly reconstructions; "
            f"peak buffer {self.peak_buffered_tracks} tracks"
        )
        if self.total_media_errors:
            text += (
                f"; {self.total_media_errors} media errors "
                f"({self.total_media_retries} retried, "
                f"{self.total_media_reconstructions} parity-rebuilt)"
            )
        if self.data_loss_events:
            text += (
                f"; {len(self.data_loss_events)} data-loss events "
                f"({self.total_lost_tracks} tracks lost, "
                f"{self.total_streams_shed} streams shed)"
            )
        return text
