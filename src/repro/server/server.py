"""The multimedia-server facade: build everything, run scenarios.

``MultimediaServer`` assembles the full stack for one scheme:

* the data layout for the scheme family (clustered or shifted parity);
* a :class:`~repro.disk.drive.DiskArray` materialised with deterministic
  payloads and real XOR parity;
* the scheme's cycle scheduler with buffer accounting;
* optional fault scripting (:class:`~repro.faults.injector.FaultSchedule`)
  or stochastic timed co-simulation on the DES kernel.

Example
-------
>>> from repro.analysis import SystemParameters
>>> from repro.schemes import Scheme
>>> params = SystemParameters.paper_table1(num_disks=10)
>>> server = MultimediaServer.build(params, parity_group_size=5,
...                                 scheme=Scheme.STREAMING_RAID)
>>> stream = server.admit(server.catalog.names()[0])
>>> reports = server.run_cycles(4)
>>> server.report.total_hiccups
0
"""

from __future__ import annotations

from typing import TYPE_CHECKING, NamedTuple, Optional, Sequence, Union

if TYPE_CHECKING:
    from repro.faults.domain import SectorScrubber
    from repro.workload.compiler import CompiledTrace
    from repro.workload.generator import StreamRequest

from repro.analysis.parameters import SystemParameters
from repro.buffers.pool import BufferPool
from repro.disk.drive import DiskArray
from repro.errors import ConfigurationError
from repro.faults.injector import ExponentialFaultInjector, FaultSchedule
from repro.layout.base import DataLayout
from repro.layout.clustered import ClusteredParityLayout
from repro.layout.declustered import DeclusteredParityLayout
from repro.layout.improved import ImprovedBandwidthLayout
from repro.media.catalog import Catalog, uniform_catalog
from repro.sched.base import CycleScheduler
from repro.sched.config import SchedulerConfig
from repro.sched.declustered import DeclusteredParityScheduler
from repro.sched.improved_bandwidth import ImprovedBandwidthScheduler
from repro.sched.non_clustered import NonClusteredScheduler, TransitionProtocol
from repro.sched.staggered_group import StaggeredGroupScheduler
from repro.sched.streaming_raid import StreamingRAIDScheduler
from repro.schemes import Scheme
from repro.server.metrics import CycleReport, SimulationReport
from repro.server.stream import Stream
from repro.sim.kernel import Environment
from repro.sim.rng import RandomSource


class WorkloadResult(NamedTuple):
    """Front-door accounting for one :meth:`MultimediaServer.run_workload`.

    ``admitted + rejected + unarrived`` always equals the trace length:
    every request is either admitted, rejected at the door, or arrives
    after the simulated horizon ends (``unarrived``) — nothing is dropped
    silently.
    """

    admitted: int
    rejected: int
    unarrived: int


class MultimediaServer:
    """A fully assembled server for one scheme at one parity-group size."""

    def __init__(self, layout: DataLayout, array: DiskArray,
                 scheduler: CycleScheduler, catalog: Catalog) -> None:
        self.layout = layout
        self.array = array
        self.scheduler = scheduler
        self.catalog = catalog
        #: The stochastic injector/scrubber of the most recent
        #: :meth:`run_timed` call, kept for post-run counter inspection.
        self.last_injector: Optional[ExponentialFaultInjector] = None
        self.last_scrubber: Optional["SectorScrubber"] = None

    # -- construction -----------------------------------------------------------

    @classmethod
    def build(cls, params: SystemParameters, parity_group_size: int,
              scheme: Scheme,
              catalog: Optional[Catalog] = None,
              protocol: TransitionProtocol = TransitionProtocol.LAZY,
              pool_clusters: Optional[int] = None,
              slots_per_disk: Optional[int] = None,
              admission_limit: Optional[int] = None,
              verify_payloads: bool = False,
              start_cluster: Optional[int] = None,
              proactive_parity: bool = False,
              mirror_read_balance: bool = False,
              metrics_tail: Optional[int] = None) -> "MultimediaServer":
        """Assemble layout + array + scheduler for one scheme.

        ``catalog`` defaults to a small synthetic one (a few objects per
        cluster).  ``pool_clusters`` sizes the Non-clustered buffer pool
        (defaults to ``params.reserve_k``); ``proactive_parity`` enables
        the Improved-bandwidth scheme's opportunistic parity prefetch
        (Section 4's "sophisticated scheduler"); other schemes ignore
        the options that do not apply to them.

        ``verify_payloads=True`` materialises real deterministic payload
        bytes and byte-checks every delivery and reconstruction.  The
        default (``False``) runs in *metadata-only* mode: disks track
        occupancy and read counters without storing bytes, all cycle
        metrics are bit-identical, and large configurations run orders of
        magnitude faster.
        """
        config = SchedulerConfig.build(params, parity_group_size, scheme,
                                       slots_per_disk=slots_per_disk)
        if scheme is Scheme.IMPROVED_BANDWIDTH:
            layout: DataLayout = ImprovedBandwidthLayout(
                params.num_disks, parity_group_size)
        elif scheme is Scheme.PARITY_DECLUSTERED:
            layout = DeclusteredParityLayout(params.num_disks,
                                             parity_group_size)
        else:
            layout = ClusteredParityLayout(params.num_disks,
                                           parity_group_size)
        if catalog is None:
            catalog = uniform_catalog(
                count=max(2, layout.num_clusters),
                bandwidth_mb_s=params.object_bandwidth_mb_s,
                num_tracks=4 * config.stripe_width,
            )
        layout.place_catalog(catalog, start_cluster=start_cluster)
        spec = params.to_disk_spec(name=f"{scheme.value}-drive")
        needed = max(layout.used_positions(d)
                     for d in range(layout.num_disks))
        if needed > spec.tracks_per_disk:
            raise ConfigurationError(
                f"catalog needs {needed} tracks per disk; drives hold "
                f"{spec.tracks_per_disk}"
            )
        # Metadata-only mode: unless payloads are to be byte-verified, the
        # array tracks occupancy and counters without storing any bytes.
        array = DiskArray(params.num_disks, spec,
                          store_payloads=verify_payloads)
        layout.materialise(array)
        scheduler = cls._make_scheduler(
            scheme, layout, array, config, protocol, pool_clusters,
            admission_limit, verify_payloads, proactive_parity,
            mirror_read_balance, metrics_tail)
        return cls(layout, array, scheduler, catalog)

    @staticmethod
    def _make_scheduler(scheme: Scheme, layout: DataLayout, array: DiskArray,
                        config: SchedulerConfig,
                        protocol: TransitionProtocol,
                        pool_clusters: Optional[int],
                        admission_limit: Optional[int],
                        verify_payloads: bool,
                        proactive_parity: bool = False,
                        mirror_read_balance: bool = False,
                        metrics_tail: Optional[int] = None) -> CycleScheduler:
        common = dict(admission_limit=admission_limit,
                      verify_payloads=verify_payloads,
                      metrics_tail=metrics_tail)
        if scheme is Scheme.STREAMING_RAID:
            return StreamingRAIDScheduler(layout, array, config, **common)
        if scheme is Scheme.STAGGERED_GROUP:
            return StaggeredGroupScheduler(layout, array, config, **common)
        if scheme is Scheme.NON_CLUSTERED:
            if pool_clusters is None:
                pool_clusters = config.params.reserve_k
            pool = BufferPool(
                capacity_clusters=pool_clusters,
                tracks_per_cluster=config.stripe_width * config.slots_per_disk,
            )
            return NonClusteredScheduler(layout, array, config,
                                         protocol=protocol, pool=pool,
                                         **common)
        if scheme is Scheme.PARITY_DECLUSTERED:
            return DeclusteredParityScheduler(layout, array, config, **common)
        return ImprovedBandwidthScheduler(
            layout, array, config, proactive_parity=proactive_parity,
            mirror_read_balance=mirror_read_balance, **common)

    # -- delegation --------------------------------------------------------------

    @property
    def config(self) -> SchedulerConfig:
        """The scheduler's configuration."""
        return self.scheduler.config

    @property
    def report(self) -> SimulationReport:
        """Accumulated simulation metrics."""
        return self.scheduler.report

    @property
    def cycle_index(self) -> int:
        """The next cycle to run."""
        return self.scheduler.cycle_index

    def admit(self, object_name: str) -> Stream:
        """Admit one stream for a catalog object."""
        return self.scheduler.admit(self.catalog.get(object_name))

    def admit_many(self, object_names: list[str]) -> list[Stream]:
        """Admit several streams in order."""
        return [self.admit(name) for name in object_names]

    def run_cycle(self) -> CycleReport:
        """Simulate one cycle."""
        return self.scheduler.run_cycle()

    def run_cycles(self, count: int,
                   fast_forward: bool = False) -> list[CycleReport]:
        """Simulate ``count`` cycles (optionally with quiescent-epoch
        fast-forward; see :meth:`CycleScheduler.run_cycles`)."""
        return self.scheduler.run_cycles(count, fast_forward=fast_forward)

    def run_with_schedule(self, cycles: int, schedule: FaultSchedule,
                          fast_forward: bool = False) -> list[CycleReport]:
        """Simulate with scripted failures applied between cycles.

        With ``fast_forward=True`` the run is segmented at the schedule's
        event cycles: each segment starts by applying due events, then
        advances to the next event boundary with the quiescent-epoch
        engine enabled — scripted faults therefore land on exactly the
        cycle they name, and results stay bit-identical to the scalar
        loop.  The cycle before a mid-cycle failure strike always runs
        scalar, so the strike finds the in-flight reads it invalidates.
        """
        reports: list[CycleReport] = []
        if not fast_forward:
            for _ in range(cycles):
                schedule.apply(self.scheduler, self.scheduler.cycle_index)
                reports.append(self.scheduler.run_cycle())
            return reports
        end = self.scheduler.cycle_index + cycles
        event_cycles = schedule.event_cycles()
        mid_cycles = set(schedule.mid_cycle_event_cycles())
        while self.scheduler.cycle_index < end:
            current = self.scheduler.cycle_index
            schedule.apply(self.scheduler, current)
            boundary = min((c for c in event_cycles if current < c < end),
                           default=end)
            span = boundary - current
            if boundary in mid_cycles:
                if span > 1:
                    reports.extend(self.scheduler.run_cycles(
                        span - 1, fast_forward=True))
                reports.append(self.scheduler.run_cycle())
            else:
                reports.extend(self.scheduler.run_cycles(
                    span, fast_forward=True))
        return reports

    def run_workload(self, trace: Union[Sequence["StreamRequest"],
                                        "CompiledTrace"],
                     cycles: int,
                     fast_forward: bool = False,
                     schedule: Optional[FaultSchedule] = None,
                     ) -> WorkloadResult:
        """Drive the server with a request trace for a number of cycles.

        ``trace`` is either a sequence of
        :class:`~repro.workload.generator.StreamRequest` or a pre-built
        :class:`~repro.workload.compiler.CompiledTrace`; each request is
        admitted at the start of its arrival cycle, and requests that hit
        the admission limit are counted as rejected (the blocking model
        of a video-on-demand front door).  Requests whose arrival cycle
        falls outside the simulated window are reported as ``unarrived``
        rather than silently dropped.

        With ``fast_forward=True`` the run goes through the scheduler's
        churn engine (:meth:`CycleScheduler.run_churn`): arrival batches
        are admitted in-engine and quiescent stretches between them are
        vectorised, with results bit-identical to the scalar loop.  An
        optional ``schedule`` scripts disk faults; with fast-forward the
        run segments at its event cycles so faults land exactly where
        they are scripted.
        """
        from repro.errors import AdmissionError
        from repro.workload.compiler import CompiledTrace, compile_trace
        compiled = (trace if isinstance(trace, CompiledTrace)
                    else compile_trace(trace, self.config.cycle_length_s))
        start = self.scheduler.cycle_index
        end = start + cycles
        admitted = rejected = 0
        if not fast_forward:
            for _ in range(cycles):
                current = self.scheduler.cycle_index
                if schedule is not None:
                    schedule.apply(self.scheduler, current)
                for name in compiled.arrivals_in(current):
                    try:
                        self.admit(name)
                        admitted += 1
                    except AdmissionError:
                        rejected += 1
                self.scheduler.run_cycle()
        else:
            arrivals = {
                cycle: tuple(self.catalog.get(name)
                             for name in compiled.arrivals_in(cycle))
                for cycle in compiled.event_cycles()
                if start <= cycle < end
            }
            event_cycles = (schedule.event_cycles()
                            if schedule is not None else ())
            mid_cycles = (set(schedule.mid_cycle_event_cycles())
                          if schedule is not None else set())
            while self.scheduler.cycle_index < end:
                current = self.scheduler.cycle_index
                if schedule is not None:
                    schedule.apply(self.scheduler, current)
                boundary = min((c for c in event_cycles
                                if current < c < end), default=end)
                span = boundary - current
                # The cycle feeding a mid-cycle strike must execute real
                # reads, so keep it scalar (see run_with_schedule).
                scalar_tail = 1 if boundary in mid_cycles else 0
                if span - scalar_tail > 0:
                    _, batch_admitted, batch_rejected = \
                        self.scheduler.run_churn(span - scalar_tail,
                                                 arrivals)
                    admitted += batch_admitted
                    rejected += batch_rejected
                if scalar_tail:
                    _, batch_admitted, batch_rejected = \
                        self.scheduler.run_churn(1, arrivals,
                                                 fast_forward=False)
                    admitted += batch_admitted
                    rejected += batch_rejected
        unarrived = compiled.total - (compiled.arrivals_before(end)
                                      - compiled.arrivals_before(start))
        return WorkloadResult(admitted, rejected, unarrived)

    def fail_disk(self, disk_id: int, mid_cycle: bool = False) -> None:
        """Fail a disk before the next cycle (idempotent)."""
        self.scheduler.fail_disk(disk_id, mid_cycle=mid_cycle)

    def repair_disk(self, disk_id: int) -> None:
        """Repair a disk before the next cycle (idempotent)."""
        self.scheduler.repair_disk(disk_id)

    def degrade_disk(self, disk_id: int, slowdown: float) -> None:
        """Put a disk into fail-slow mode before the next cycle."""
        self.scheduler.degrade_disk(disk_id, slowdown)

    def restore_disk(self, disk_id: int) -> None:
        """Return a fail-slow disk to full speed (idempotent)."""
        self.scheduler.restore_disk(disk_id)

    def inject_media_error(self, disk_id: int, position: int,
                           transient: bool = False) -> None:
        """Plant a media error at one track position of one disk."""
        self.scheduler.inject_media_error(disk_id, position,
                                          transient=transient)

    @property
    def is_catastrophic(self) -> bool:
        """True if the current failure set loses data."""
        failed = self.array.failed_ids
        return bool(failed) and self.layout.is_catastrophic_geometric(failed)

    @property
    def lost_tracks(self) -> dict[str, tuple[int, ...]]:
        """Tracks currently unreconstructable, per object."""
        return self.scheduler.lost_tracks

    # -- timed co-simulation ---------------------------------------------------------

    def run_timed(self, duration_s: float,
                  mttf_s: Optional[float] = None,
                  mttr_s: Optional[float] = None,
                  seed: int = 0,
                  scrub_interval_s: Optional[float] = None,
                  ) -> SimulationReport:
        """Run cycles under stochastic failures on the DES kernel.

        A cycle-driver process advances the scheduler every
        ``config.cycle_length_s`` seconds while per-disk fault processes
        (exponential MTTF/MTTR, defaulting to the drive spec's values)
        inject failures and repairs between cycles.  The scheduler's
        fail/repair entry points are idempotent, so the injector drives
        them directly; its counters stay inspectable afterwards via
        :attr:`last_injector`.

        ``scrub_interval_s`` additionally runs a background
        :class:`~repro.faults.domain.SectorScrubber` process on the same
        kernel, repairing one latent sector error per interval.
        """
        from repro.faults.domain import SectorScrubber
        env = Environment()
        spec = self.array.spec
        injector = ExponentialFaultInjector(
            env=env,
            num_disks=len(self.array),
            mttf_s=mttf_s if mttf_s is not None else spec.mttf_s,
            mttr_s=mttr_s if mttr_s is not None else spec.mttr_s,
            rng=RandomSource(seed),
            on_fail=self.scheduler.fail_disk,
            on_repair=self.scheduler.repair_disk,
        )
        self.last_injector = injector
        injector.start()
        if scrub_interval_s is not None:
            scrubber = SectorScrubber(self.array)
            self.last_scrubber = scrubber
            env.process(scrubber.process(env, scrub_interval_s),
                        name="sector-scrubber")

        def cycle_driver():
            """Advance the scheduler once per cycle period."""
            while True:
                self.scheduler.run_cycle()
                yield env.timeout(self.config.cycle_length_s)

        env.process(cycle_driver(), name="cycle-driver")
        env.run(until=duration_s)
        return self.report
