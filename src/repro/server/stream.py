"""Stream state: one in-progress delivery of one object.

The paper: "We will use the term stream to refer to the delivery of a given
object at a given time" (Section 2).  A stream owns:

* a *read pointer* (`next_read_track`) — the first track not yet fetched;
* a *delivery pointer* (`next_delivery_track`) — the first track not yet
  sent to the display station;
* a buffer of fetched-but-undelivered track payloads, plus any parity
  blocks / XOR accumulators held for on-the-fly reconstruction.

Delivery is relentless: once started, the pointer advances every cycle
whether or not the data is present (that is what makes a missing track a
*hiccup* rather than a stall — the viewer's clock does not wait).
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.media.objects import MediaObject


class StreamStatus(enum.Enum):
    """Lifecycle of a stream."""

    ADMITTED = "admitted"      # accepted, delivery not begun
    ACTIVE = "active"          # delivering
    COMPLETED = "completed"    # all tracks delivered (or skipped by hiccup)
    TERMINATED = "terminated"  # dropped by degradation of service
    STOPPED = "stopped"        # the viewer left before the end


class Stream:
    """One active delivery with its buffers and pointers."""

    __slots__ = ("stream_id", "object", "num_tracks", "admitted_cycle",
                 "phase", "rate", "status", "is_active", "next_read_track",
                 "next_delivery_track", "delivery_start_cycle", "buffer",
                 "parity_buffer", "accumulators", "lost_tracks",
                 "delivered_tracks", "hiccup_count", "reconstructed_tracks")

    def __init__(self, stream_id: int, obj: MediaObject,
                 admitted_cycle: int = 0, phase: int = 0, rate: int = 1) -> None:
        if rate < 1:
            raise ValueError(f"stream rate must be >= 1, got {rate}")
        self.stream_id = stream_id
        self.object = obj
        #: Denormalised from ``object`` for the cycle engine's hot loops.
        self.num_tracks = obj.num_tracks
        self.admitted_cycle = admitted_cycle
        #: Read phase for staggered schemes (0 .. C-2).
        self.phase = phase
        #: Bandwidth as a multiple of the server's base object rate
        #: (Section 1's mixed MPEG-1/MPEG-2 populations: an MPEG-2 stream
        #: on an MPEG-1-cycled server has rate 3).
        self.rate = rate
        self.status = StreamStatus.ADMITTED
        #: Kept in lockstep with ``status``: a plain attribute because the
        #: cycle engine consults it once per planned read.
        self.is_active = True
        self.next_read_track = 0
        self.next_delivery_track = 0
        #: Cycle at which delivery begins (set when the first read lands).
        self.delivery_start_cycle: Optional[int] = None
        #: Fetched, undelivered data tracks: track index -> payload.
        self.buffer: dict[int, bytes] = {}
        #: Held parity payloads: group index -> payload.
        self.parity_buffer: dict[int, bytes] = {}
        #: Running-XOR accumulators (lazy NC transition): group -> payload.
        self.accumulators: dict[int, bytes] = {}
        #: Tracks known to be unrecoverable (will hiccup at delivery time).
        self.lost_tracks: set[int] = set()
        # Lifetime counters.
        self.delivered_tracks = 0
        self.hiccup_count = 0
        self.reconstructed_tracks = 0

    def __repr__(self) -> str:
        return (f"Stream(id={self.stream_id}, object={self.object.name!r}, "
                f"status={self.status.value}, "
                f"read={self.next_read_track}/{self.object.num_tracks}, "
                f"deliver={self.next_delivery_track})")

    # -- progress queries ---------------------------------------------------

    @property
    def reads_remaining(self) -> bool:
        """True while there are tracks left to fetch."""
        return self.is_active and self.next_read_track < self.num_tracks

    @property
    def deliveries_remaining(self) -> bool:
        """True while there are tracks left to send."""
        return self.is_active and \
            self.next_delivery_track < self.num_tracks

    @property
    def buffered_track_count(self) -> int:
        """Track-sized buffers currently held (data + parity + accumulators)."""
        return len(self.buffer) + len(self.parity_buffer) + \
            len(self.accumulators)

    # -- buffer operations ----------------------------------------------------

    def store_track(self, track: int, payload: bytes) -> None:
        """A fetched track becomes available for delivery."""
        self.buffer[track] = payload

    def store_parity(self, group: int, payload: bytes) -> None:
        """A fetched parity block is held for reconstruction."""
        self.parity_buffer[group] = payload

    def take_track(self, track: int) -> Optional[bytes]:
        """Remove and return a buffered track (None if absent)."""
        return self.buffer.pop(track, None)

    def drop_parity(self, group: int) -> None:
        """Release a parity buffer once its group is fully delivered."""
        self.parity_buffer.pop(group, None)
        self.accumulators.pop(group, None)

    def mark_lost(self, track: int) -> None:
        """Record that a track can never be delivered (future hiccup)."""
        if track >= self.next_delivery_track:
            self.lost_tracks.add(track)

    # -- lifecycle -------------------------------------------------------------

    def activate(self) -> None:
        """First delivery happened; the stream is live."""
        if self.status is StreamStatus.ADMITTED:
            self.status = StreamStatus.ACTIVE

    def complete(self) -> None:
        """All tracks delivered (or accounted as hiccups)."""
        self.status = StreamStatus.COMPLETED
        self.is_active = False
        self.buffer.clear()
        self.parity_buffer.clear()
        self.accumulators.clear()

    def terminate(self) -> None:
        """Dropped by degradation of service."""
        self.status = StreamStatus.TERMINATED
        self.is_active = False
        self.buffer.clear()
        self.parity_buffer.clear()
        self.accumulators.clear()

    def stop(self) -> None:
        """The viewer stopped watching; resources are released at once."""
        self.status = StreamStatus.STOPPED
        self.is_active = False
        self.buffer.clear()
        self.parity_buffer.clear()
        self.accumulators.clear()
