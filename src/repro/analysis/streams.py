"""Stream-count bounds: equations (7)–(11) and the Section 2 k-sweep.

The core constraint (Section 2): with ``k`` tracks read per stream per
"read cycle", ``k'`` tracks delivered per cycle, and the load spread over
``D'`` data disks, a disk must fit ``N * k / D'`` track reads plus one
worst-case seek inside a cycle of length ``T_cyc = k' * B / b_o``::

    N <= [ B*k' / (b_o * tau_trk * k)  -  tau_seek / (tau_trk * k) ] * D'

The paper's Tables 2–3 apply the floor to the *whole* right-hand side
(e.g. ⌊1041.67⌋ = 1041 streams for SR at C = 5), which :func:`max_streams`
follows.
"""

from __future__ import annotations

import math

from repro.analysis.parameters import SystemParameters
from repro.errors import ConfigurationError
from repro.schemes import Scheme


def streams_per_disk_bound(params: SystemParameters, k: int,
                           k_prime: int) -> float:
    """``N / D'`` — the real-valued per-disk stream bound (Section 2).

    >>> p = SystemParameters.paper_section2(object_bandwidth_mbits=4.5)
    >>> round(streams_per_disk_bound(p, k=1, k_prime=1), 1)
    14.8
    """
    if k < 1 or k_prime < 1:
        raise ConfigurationError(f"k and k' must be >= 1, got k={k}, k'={k_prime}")
    if k % k_prime != 0:
        raise ConfigurationError(
            f"k must be an integer multiple of k' (k={k}, k'={k_prime})"
        )
    useful_read_time = params.cycle_length_s(k_prime) - params.seek_time_s
    return useful_read_time / (params.track_time_s * k)


def data_disk_count(params: SystemParameters, parity_group_size: int,
                    scheme: Scheme) -> float:
    """``D'`` — the number of disks data is read from (Section 5, item 5-6).

    Clustered schemes lose one disk per cluster to parity:
    ``D' = (C-1)/C * D``.  The Improved-bandwidth scheme reads data from
    every non-reserved disk: ``D' = D - K_IB``.  The parity-declustered
    extension rotates parity through every disk and holds nothing in
    reserve, so all ``D`` disks serve data; the degraded-mode cost is
    charged at admission time instead (``alpha * G`` per failure).
    """
    _check_group(parity_group_size)
    if scheme is Scheme.IMPROVED_BANDWIDTH:
        return float(params.num_disks - params.reserve_k)
    if scheme is Scheme.PARITY_DECLUSTERED:
        return float(params.num_disks)
    c = parity_group_size
    return params.num_disks * (c - 1) / c


def max_streams(params: SystemParameters, parity_group_size: int,
                scheme: Scheme) -> int:
    """``N_p`` — maximum simultaneous streams, equations (8)–(11).

    >>> max_streams(SystemParameters.paper_table1(), 5, Scheme.STREAMING_RAID)
    1041
    >>> max_streams(SystemParameters.paper_table1(), 5, Scheme.IMPROVED_BANDWIDTH)
    1263
    """
    _check_group(parity_group_size)
    if scheme is Scheme.STAGGERED_GROUP:
        # Section 2: "the Staggered group scheme in effect uses k = 1" for
        # the capacity bound — streams are staggered over C - 1 read
        # phases, so each cycle only N/(C-1) streams read, each C - 1
        # tracks, i.e. an average of one track per stream per cycle.
        k, k_prime = 1, 1
    else:
        k, k_prime = scheme.read_granularity(parity_group_size)
    per_disk = streams_per_disk_bound(params, k, k_prime)
    total = per_disk * data_disk_count(params, parity_group_size, scheme)
    # Guard against float fuzz on exact boundaries (e.g. 1125.0000000001).
    return max(0, int(math.floor(total + 1e-9)))


def k_sweep(params: SystemParameters, k_values: list[int]) -> dict[int, float]:
    """``N / D'`` for a range of k (= k') values — the Section 2 in-text sweep.

    For b_o = 4.5 Mb/s the paper quotes 14.7 / 16.2 / 17.4 at k = 1, 2, 10.
    """
    return {k: streams_per_disk_bound(params, k, k) for k in k_values}


def _check_group(parity_group_size: int) -> None:
    if parity_group_size < 2:
        raise ConfigurationError(
            f"parity group size must be >= 2, got {parity_group_size}"
        )
