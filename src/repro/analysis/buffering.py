"""Buffer-space requirements: equations (12)–(15).

All figures are *per system* (not per stream) and count track-sized
buffers, as the "Buffers (in tracks)" row of Tables 2–3 does.  Per-stream
requirements (Section 5):

* Streaming RAID: ``2C`` buffers — double-buffering of a full parity group
  (including the parity slot).
* Staggered group: groups are staggered across read phases, so the system
  needs ``(C+1) + (C-1) + (C-2) + ... + 2 = C(C+1)/2`` buffers per ``C - 1``
  streams (Figure 4's out-of-phase sawtooth).
* Non-clustered: ``2`` per stream in normal mode, plus a shared buffer pool
  sized to run ``K`` clusters in degraded (group-at-a-time) mode.
* Improved bandwidth: like SR but with no parity slot to hold: ``2(C-1)``.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.analysis.parameters import SystemParameters
from repro.analysis.streams import data_disk_count, max_streams
from repro.errors import ConfigurationError
from repro.schemes import Scheme


def buffers_per_stream(parity_group_size: int, scheme: Scheme) -> float:
    """Track buffers needed per active stream (may be fractional for SG/NC).

    For NC this is the *normal-mode* figure (2); the degraded-mode pool is
    accounted separately in :func:`buffer_tracks`.
    """
    if parity_group_size < 2:
        raise ConfigurationError(
            f"parity group size must be >= 2, got {parity_group_size}"
        )
    c = parity_group_size
    if scheme is Scheme.STREAMING_RAID:
        return 2.0 * c
    if scheme is Scheme.STAGGERED_GROUP:
        return c * (c + 1) / 2.0 / (c - 1)
    if scheme is Scheme.NON_CLUSTERED:
        return 2.0
    # IMPROVED_BANDWIDTH and PARITY_DECLUSTERED both double-buffer the
    # C - 1 data tracks of a group with no parity slot held.
    return 2.0 * (c - 1)


def _buffer_tracks_real(params: SystemParameters, parity_group_size: int,
                        scheme: Scheme, streams: int) -> float:
    c = parity_group_size
    base = buffers_per_stream(c, scheme) * streams
    if scheme is not Scheme.NON_CLUSTERED:
        return base
    # Eq. (14): the NC pool adds K clusters' worth of staggered-group
    # buffering, with the paper's D'/C divisor.
    staggered = buffers_per_stream(c, Scheme.STAGGERED_GROUP) * streams
    pool_share = staggered / (data_disk_count(params, c, scheme) / c)
    return base + pool_share * params.reserve_k


def buffer_tracks(params: SystemParameters, parity_group_size: int,
                  scheme: Scheme, streams: Optional[int] = None) -> int:
    """Total buffer requirement in tracks (eq. 12–15, Tables 2–3 row 6).

    ``streams`` defaults to the scheme's maximum (eq. 8–11).

    >>> p = SystemParameters.paper_table1()
    >>> buffer_tracks(p, 5, Scheme.STREAMING_RAID)
    10410
    >>> buffer_tracks(p, 5, Scheme.NON_CLUSTERED)
    2612
    """
    if streams is None:
        streams = max_streams(params, parity_group_size, scheme)
    if streams < 0:
        raise ConfigurationError(f"stream count must be >= 0, got {streams}")
    real = _buffer_tracks_real(params, parity_group_size, scheme, streams)
    return int(math.ceil(real - 1e-9))


def buffer_mb(params: SystemParameters, parity_group_size: int,
              scheme: Scheme, streams: Optional[int] = None) -> float:
    """Total buffer requirement in MB (tracks x track size)."""
    tracks = buffer_tracks(params, parity_group_size, scheme, streams)
    return tracks * params.track_size_mb
