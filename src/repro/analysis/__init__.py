"""Closed-form models: every equation of the paper, plus table/figure builders.

Module map (equation numbers refer to the paper):

* :mod:`repro.analysis.parameters` — Table 1 and the Figure 9 cost knobs.
* :mod:`repro.analysis.streams` — eq. (7)–(11): stream-count bounds.
* :mod:`repro.analysis.overheads` — eq. (1)–(3): storage/bandwidth overhead.
* :mod:`repro.analysis.reliability` — eq. (4)–(6): MTTF and MTTDS.
* :mod:`repro.analysis.buffering` — eq. (12)–(15): buffer space.
* :mod:`repro.analysis.cost` — eq. (16)–(19): system cost and D(W, C).
* :mod:`repro.analysis.comparison` — assembles Tables 2–3 and Figure 9.
"""

from repro.analysis.buffering import buffer_mb, buffer_tracks
from repro.analysis.comparison import (
    SchemeMetrics,
    compare_schemes,
    figure9_cost_series,
    figure9_stream_series,
    format_comparison_table,
)
from repro.analysis.cost import (
    ClusterCostBreakdown,
    cluster_cost,
    cluster_cost_series,
    disks_for_working_set,
    total_cost,
)
from repro.analysis.design import (
    DesignPoint,
    enumerate_designs,
    feasible_designs,
    recommend_design,
)
from repro.analysis.overheads import (
    bandwidth_overhead_fraction,
    bandwidth_overhead_mb_s,
    storage_overhead_fraction,
    storage_overhead_mb,
)
from repro.analysis.parameters import SystemParameters
from repro.analysis.reliability import (
    declustered_mttds_hours,
    declustered_mttf_hours,
    declustered_rebuild_hours,
    declustering_ratio,
    mean_time_to_k_concurrent_failures_hours,
    mttds_hours,
    mttf_catastrophic_hours,
)
from repro.analysis.streams import max_streams, streams_per_disk_bound
from repro.schemes import ALL_SCHEMES, Scheme

__all__ = [
    "ALL_SCHEMES",
    "ClusterCostBreakdown",
    "DesignPoint",
    "Scheme",
    "SchemeMetrics",
    "SystemParameters",
    "enumerate_designs",
    "feasible_designs",
    "recommend_design",
    "bandwidth_overhead_fraction",
    "bandwidth_overhead_mb_s",
    "buffer_mb",
    "buffer_tracks",
    "cluster_cost",
    "cluster_cost_series",
    "compare_schemes",
    "declustered_mttds_hours",
    "declustered_mttf_hours",
    "declustered_rebuild_hours",
    "declustering_ratio",
    "disks_for_working_set",
    "figure9_cost_series",
    "figure9_stream_series",
    "format_comparison_table",
    "max_streams",
    "mean_time_to_k_concurrent_failures_hours",
    "mttds_hours",
    "mttf_catastrophic_hours",
    "storage_overhead_fraction",
    "storage_overhead_mb",
    "streams_per_disk_bound",
    "total_cost",
]
