"""System cost: equations (16)–(19) and the Figure 9 sizing study.

Given a working-set size ``W`` (MB of real data to keep disk-resident), the
number of disks needed grows with the parity overhead::

    D(W, C) = ceil( W / s_d * C / (C - 1) )

rounded up to a whole number of clusters.  Total cost is then disk storage
plus the buffer memory the scheme needs at that size::

    cost_p = c_b * BF_p(MB) + c_d * D(W, C) * s_d

The paper does not state its ``c_b``/``c_d``; the defaults carried by
:class:`SystemParameters` (c_b = 240, c_d = 0.5 $/MB) are calibrated
against the three Section 5 worked examples (SR ~$173,400 at C = 4,
SG ~$146,600 and NC ~$128,600 at C = 10); see EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.buffering import buffer_mb
from repro.analysis.parameters import SystemParameters
from repro.analysis.streams import max_streams
from repro.errors import ConfigurationError
from repro.schemes import Scheme


def disks_for_working_set(working_set_mb: float, disk_capacity_mb: float,
                          parity_group_size: int, round_to: int = 1) -> int:
    """``D(W, C)`` — disks needed to hold ``W`` MB of real data plus parity.

    ``round_to`` rounds the count up to a whole number of clusters
    (``C`` for the clustered layouts, ``C - 1`` for Improved bandwidth).

    >>> disks_for_working_set(100_000, 1000, 5)
    125
    """
    if working_set_mb <= 0:
        raise ConfigurationError(
            f"working set must be positive, got {working_set_mb}"
        )
    if parity_group_size < 2:
        raise ConfigurationError(
            f"parity group size must be >= 2, got {parity_group_size}"
        )
    if round_to < 1:
        raise ConfigurationError(f"round_to must be >= 1, got {round_to}")
    c = parity_group_size
    raw = working_set_mb / disk_capacity_mb * c / (c - 1)
    disks = math.ceil(raw - 1e-9)
    return ((disks + round_to - 1) // round_to) * round_to


def cluster_width(parity_group_size: int, scheme: Scheme) -> int:
    """Disks per cluster: ``C`` for SR/SG/NC, ``C - 1`` for IB.

    Parity declustering has no cluster constraint — groups are drawn from
    the block design over all ``D`` disks, so any farm size >= C works
    and the rounding unit is a single disk.
    """
    if scheme is Scheme.IMPROVED_BANDWIDTH:
        return parity_group_size - 1
    if scheme is Scheme.PARITY_DECLUSTERED:
        return 1
    return parity_group_size


@dataclass(frozen=True)
class CostBreakdown:
    """The result of one eq. (16)–(19) evaluation."""

    scheme: Scheme
    parity_group_size: int
    num_disks: int
    streams: int
    buffer_mb: float
    disk_cost: float
    memory_cost: float

    @property
    def total(self) -> float:
        """Total system cost in dollars."""
        return self.disk_cost + self.memory_cost


def total_cost(params: SystemParameters, parity_group_size: int,
               scheme: Scheme, working_set_mb: float,
               round_to_cluster: bool = False) -> CostBreakdown:
    """Equations (16)–(19): cost of the minimum system holding ``W`` MB.

    The disk count is sized to the working set (not to a stream target);
    the streams field reports how many streams that system can then serve —
    exactly what Figure 9(b) plots.  ``round_to_cluster`` additionally
    rounds the disk count up to a whole number of clusters (the paper's
    ``D(W, C)`` does not, so the Figure 9 series leave it off; building a
    real system would turn it on).
    """
    round_to = cluster_width(parity_group_size, scheme) \
        if round_to_cluster else 1
    disks = disks_for_working_set(
        working_set_mb, params.disk_capacity_mb, parity_group_size, round_to)
    sized = params.with_overrides(num_disks=disks)
    streams = max_streams(sized, parity_group_size, scheme)
    memory_mb = buffer_mb(sized, parity_group_size, scheme, streams)
    return CostBreakdown(
        scheme=scheme,
        parity_group_size=parity_group_size,
        num_disks=disks,
        streams=streams,
        buffer_mb=memory_mb,
        disk_cost=params.disk_cost_per_mb * disks * params.disk_capacity_mb,
        memory_cost=params.memory_cost_per_mb * memory_mb,
    )


@dataclass(frozen=True)
class ClusterCostBreakdown:
    """Cost of an ``N``-shard cluster serving working set ``W``.

    Each shard holds its ``(W - H) / N`` slice of the catalog plus the
    ``H`` MB of hot titles replicated onto *every* shard, so the
    per-shard breakdown is a plain eq. (16)–(19) evaluation at that
    shard working set and the cluster multiplies it out.  Replication
    buys routing freedom (least-loaded-copy dispatch) at a storage
    premium of ``(N - 1) * H`` MB cluster-wide.
    """

    shards: int
    replicated_mb: float
    per_shard: CostBreakdown

    @property
    def streams(self) -> int:
        """Cluster-wide stream capacity — shards are fault-isolated."""
        return self.shards * self.per_shard.streams

    @property
    def total(self) -> float:
        """Total cluster cost in dollars."""
        return self.shards * self.per_shard.total

    @property
    def cost_per_stream(self) -> float:
        """Dollars per concurrently served stream."""
        return self.total / self.streams


def cluster_cost(params: SystemParameters, parity_group_size: int,
                 scheme: Scheme, working_set_mb: float, shards: int,
                 replicated_mb: float = 0.0,
                 round_to_cluster: bool = False) -> ClusterCostBreakdown:
    """Cluster closed form: ``N`` shards splitting ``W`` MB of catalog.

    ``replicated_mb`` is the hot-title set carried by every shard
    (``H < W``); the remaining ``W - H`` is partitioned evenly.  With
    ``shards=1`` and ``replicated_mb=0`` this degenerates to
    :func:`total_cost` exactly, which anchors the series the cluster
    benchmark plots: cost per stream versus shard count.
    """
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    if replicated_mb < 0:
        raise ConfigurationError(
            f"replicated set must be non-negative, got {replicated_mb}")
    if replicated_mb >= working_set_mb:
        raise ConfigurationError(
            f"replicated set ({replicated_mb} MB) must be smaller than "
            f"the working set ({working_set_mb} MB)")
    shard_ws = (working_set_mb - replicated_mb) / shards + replicated_mb
    breakdown = total_cost(params, parity_group_size, scheme, shard_ws,
                           round_to_cluster)
    return ClusterCostBreakdown(
        shards=shards,
        replicated_mb=replicated_mb,
        per_shard=breakdown,
    )


def cluster_cost_series(params: SystemParameters, parity_group_size: int,
                        scheme: Scheme, working_set_mb: float,
                        shard_counts: Sequence[int],
                        replicated_mb: float = 0.0,
                        ) -> list[ClusterCostBreakdown]:
    """Figure-9 extension: the cost-per-stream curve over shard counts."""
    return [
        cluster_cost(params, parity_group_size, scheme, working_set_mb,
                     shards, replicated_mb)
        for shards in shard_counts
    ]
