"""Design search: the Section 5 sizing workflow as a reusable API.

Given a working-set size, a required stream count, and the price book,
sweep every scheme and parity-group size, keep the feasible designs, and
rank them by total cost — the procedure behind the paper's worked
examples ("the cost of supporting ~1200 streams in the Streaming RAID
scheme is ~$173,400 and requires parity groups of size 4 ...").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.analysis.cost import CostBreakdown, total_cost
from repro.analysis.parameters import SystemParameters
from repro.analysis.reliability import mttds_years, mttf_catastrophic_years
from repro.errors import ConfigurationError
from repro.schemes import ALL_IMPLEMENTED_SCHEMES, Scheme


@dataclass(frozen=True)
class DesignPoint:
    """One candidate design with its cost and reliability."""

    breakdown: CostBreakdown
    mttf_years: float
    mttds_years: float

    @property
    def scheme(self) -> Scheme:
        """The design's fault-tolerance scheme."""
        return self.breakdown.scheme

    @property
    def parity_group_size(self) -> int:
        """The design's parity-group size C."""
        return self.breakdown.parity_group_size

    @property
    def total_cost(self) -> float:
        """Total system cost in dollars."""
        return self.breakdown.total

    @property
    def streams(self) -> int:
        """Streams the sized system supports."""
        return self.breakdown.streams

    def describe(self) -> str:
        """One-line human summary."""
        return (f"{self.scheme.display_name} C={self.parity_group_size}: "
                f"{self.breakdown.num_disks} disks, "
                f"{self.streams} streams, ${self.total_cost:,.0f}, "
                f"MTTF {self.mttf_years:,.0f}y")


def enumerate_designs(params: SystemParameters, working_set_mb: float,
                      group_sizes: Iterable[int] = range(2, 11),
                      schemes: Sequence[Scheme] = ALL_IMPLEMENTED_SCHEMES,
                      ) -> list[DesignPoint]:
    """Every (scheme, C) design sized to hold the working set."""
    designs = []
    for scheme in schemes:
        for group_size in group_sizes:
            breakdown = total_cost(params, group_size, scheme,
                                   working_set_mb)
            sized = params.with_overrides(num_disks=breakdown.num_disks)
            designs.append(DesignPoint(
                breakdown=breakdown,
                mttf_years=mttf_catastrophic_years(sized, group_size,
                                                   scheme),
                mttds_years=mttds_years(sized, group_size, scheme),
            ))
    return designs


def feasible_designs(designs: Iterable[DesignPoint],
                     required_streams: int,
                     min_mttf_years: float = 0.0) -> list[DesignPoint]:
    """Designs meeting the stream and reliability requirements, cheapest
    first."""
    if required_streams < 0:
        raise ConfigurationError(
            f"required streams must be non-negative, got {required_streams}"
        )
    keep = [d for d in designs
            if d.streams >= required_streams
            and d.mttf_years >= min_mttf_years]
    return sorted(keep, key=lambda d: d.total_cost)


def recommend_design(params: SystemParameters, working_set_mb: float,
                     required_streams: int,
                     min_mttf_years: float = 0.0,
                     group_sizes: Iterable[int] = range(2, 11),
                     ) -> Optional[DesignPoint]:
    """The cheapest feasible design, or None if nothing qualifies.

    Reproduces the paper's two regimes: modest stream requirements go to
    the cheap clustered schemes (Non-clustered in particular); bandwidth-
    scarce requirements are only feasible under Improved bandwidth.
    """
    designs = enumerate_designs(params, working_set_mb, group_sizes)
    ranked = feasible_designs(designs, required_streams, min_mttf_years)
    return ranked[0] if ranked else None
