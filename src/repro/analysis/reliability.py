"""Reliability: equations (4)–(6) plus the paper's in-text MTTF claims.

Two failure modes (Section 1):

* **catastrophic failure** — two disks of one parity group down together;
  requires a rebuild from tertiary storage (data loss on disk);
* **degradation of service (DoS)** — not enough bandwidth/buffer to keep
  all streams going; streams must be dropped but no data is lost.

The standard disk-array approximations (Chen et al. 1994) apply:
``MTTF_sys ~ MTTF(disk)^2 / (D * (C-1) * MTTR)`` for the clustered schemes
(eq. 4), with ``C - 1`` replaced by ``2C - 1`` for Improved bandwidth
(eq. 5) because each disk shares groups with both its own and the previous
cluster.  DoS for NC/IB follows the *k concurrent failures* formula
(eq. 6)::

    MTT(k concurrent) = MTTF^k / (D * (D-1) * ... * (D-k+1) * MTTR^(k-1))

Note on Tables 2–3: the paper's MTTDS entry (3,176,862.3 years at D = 100)
equals the mean time to **3** concurrent failures, i.e. ``k = K`` with the
tables' ``K = 3``; the Section 3 worked example (D = 1000, "five disks at
the same time", > 250 million years) instead uses ``k = K + 1``.  We expose
the raw formula and let the comparison layer follow the tables.
"""

from __future__ import annotations

from repro.analysis.parameters import SystemParameters
from repro.errors import ConfigurationError
from repro.schemes import Scheme
from repro.units import hours_to_years


def mttf_catastrophic_hours(params: SystemParameters, parity_group_size: int,
                            scheme: Scheme) -> float:
    """Mean time to catastrophic failure, equations (4)–(5), in hours.

    >>> p = SystemParameters.paper_table1()
    >>> round(hours_to_years(mttf_catastrophic_hours(p, 5, Scheme.STREAMING_RAID)), 1)
    25684.9
    """
    if parity_group_size < 2:
        raise ConfigurationError(
            f"parity group size must be >= 2, got {parity_group_size}"
        )
    if scheme is Scheme.IMPROVED_BANDWIDTH:
        exposure = 2 * parity_group_size - 1
    else:
        exposure = parity_group_size - 1
    return (params.mttf_disk_hours ** 2) / (
        params.num_disks * exposure * params.mttr_disk_hours
    )


def mttf_catastrophic_years(params: SystemParameters, parity_group_size: int,
                            scheme: Scheme) -> float:
    """Equations (4)–(5) in years, as quoted in Tables 2–3."""
    return hours_to_years(
        mttf_catastrophic_hours(params, parity_group_size, scheme))


def mean_time_to_k_concurrent_failures_hours(num_disks: int, k: int,
                                             mttf_disk_hours: float,
                                             mttr_disk_hours: float) -> float:
    """Mean time until ``k`` disks are simultaneously down (eq. 6 family).

    ``MTTF^k / (D (D-1) ... (D-k+1) * MTTR^(k-1))`` — the standard
    birth–death chain approximation for MTTR << MTTF.

    >>> # Section 3: five concurrent failures in a 1000-disk farm.
    >>> t = mean_time_to_k_concurrent_failures_hours(1000, 5, 300_000, 1)
    >>> hours_to_years(t) > 250e6
    True
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if k > num_disks:
        raise ConfigurationError(
            f"cannot have {k} concurrent failures with {num_disks} disks"
        )
    numerator = mttf_disk_hours ** k
    denominator = mttr_disk_hours ** (k - 1)
    for i in range(k):
        denominator *= (num_disks - i)
    return numerator / denominator


def mttds_hours(params: SystemParameters, parity_group_size: int,
                scheme: Scheme) -> float:
    """Mean time to degradation of service, in hours.

    * SR/SG: identical to their mean time to catastrophic failure — the
      reserved parity bandwidth always suffices for a single failure, and a
      second failure in a cluster is already catastrophic.
    * NC/IB: DoS when ``K`` disks are concurrently down (buffer pool empty /
      reserved bandwidth exhausted) — following the Tables 2–3 convention
      (see module docstring).
    """
    if scheme in (Scheme.STREAMING_RAID, Scheme.STAGGERED_GROUP):
        return mttf_catastrophic_hours(params, parity_group_size, scheme)
    if params.reserve_k < 1:
        # With nothing reserved, the very first failure degrades service.
        return mean_time_to_k_concurrent_failures_hours(
            params.num_disks, 1, params.mttf_disk_hours,
            params.mttr_disk_hours)
    return mean_time_to_k_concurrent_failures_hours(
        params.num_disks, params.reserve_k, params.mttf_disk_hours,
        params.mttr_disk_hours)


def mttds_years(params: SystemParameters, parity_group_size: int,
                scheme: Scheme) -> float:
    """MTTDS in years, as quoted in Tables 2–3."""
    return hours_to_years(mttds_hours(params, parity_group_size, scheme))
