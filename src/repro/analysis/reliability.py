"""Reliability: equations (4)–(6) plus the paper's in-text MTTF claims.

Two failure modes (Section 1):

* **catastrophic failure** — two disks of one parity group down together;
  requires a rebuild from tertiary storage (data loss on disk);
* **degradation of service (DoS)** — not enough bandwidth/buffer to keep
  all streams going; streams must be dropped but no data is lost.

The standard disk-array approximations (Chen et al. 1994) apply:
``MTTF_sys ~ MTTF(disk)^2 / (D * (C-1) * MTTR)`` for the clustered schemes
(eq. 4), with ``C - 1`` replaced by ``2C - 1`` for Improved bandwidth
(eq. 5) because each disk shares groups with both its own and the previous
cluster.  DoS for NC/IB follows the *k concurrent failures* formula
(eq. 6)::

    MTT(k concurrent) = MTTF^k / (D * (D-1) * ... * (D-k+1) * MTTR^(k-1))

Note on Tables 2–3: the paper's MTTDS entry (3,176,862.3 years at D = 100)
equals the mean time to **3** concurrent failures, i.e. ``k = K`` with the
tables' ``K = 3``; the Section 3 worked example (D = 1000, "five disks at
the same time", > 250 million years) instead uses ``k = K + 1``.  We expose
the raw formula and let the comparison layer follow the tables.

The parity-declustered extension (arXiv:1209.6152) trades exposure for
window: every disk pair shares a group, so *any* second concurrent
failure is catastrophic (exposure ``D - 1`` instead of ``C - 1``), but
the distributed rebuild shrinks the vulnerability window by the
declustering ratio ``alpha = (C-1)/(D-1)``.  The two factors cancel
exactly — ``(D-1) * alpha = C - 1`` — so PD's closed-form MTTF equals
Streaming RAID's, while the *measured* rebuild window (and hence the
time spent degraded) shrinks by ``alpha``.
"""

from __future__ import annotations

from repro.analysis.parameters import SystemParameters
from repro.errors import ConfigurationError
from repro.schemes import Scheme
from repro.units import hours_to_years


def mttf_catastrophic_hours(params: SystemParameters, parity_group_size: int,
                            scheme: Scheme) -> float:
    """Mean time to catastrophic failure, equations (4)–(5), in hours.

    >>> p = SystemParameters.paper_table1()
    >>> round(hours_to_years(mttf_catastrophic_hours(p, 5, Scheme.STREAMING_RAID)), 1)
    25684.9
    """
    if parity_group_size < 2:
        raise ConfigurationError(
            f"parity group size must be >= 2, got {parity_group_size}"
        )
    if scheme is Scheme.IMPROVED_BANDWIDTH:
        exposure = 2 * parity_group_size - 1
    elif scheme is Scheme.PARITY_DECLUSTERED:
        # Every disk pair co-occurs in some group, so any second failure
        # is catastrophic (exposure D - 1) — but the distributed rebuild
        # shrinks the window to alpha * MTTR, and (D-1) * alpha = C - 1:
        # the closed form collapses back to the Streaming-RAID value.
        exposure = parity_group_size - 1
    else:
        exposure = parity_group_size - 1
    return (params.mttf_disk_hours ** 2) / (
        params.num_disks * exposure * params.mttr_disk_hours
    )


def declustering_ratio(num_disks: int, parity_group_size: int) -> float:
    """``alpha = (C-1)/(D-1)`` — the declustered fraction of each survivor.

    The fraction of every survivor's bandwidth touched when one disk is
    rebuilt (arXiv:1209.6152).  ``alpha = 1`` recovers clustered RAID.

    >>> declustering_ratio(11, 5)
    0.4
    >>> declustering_ratio(1000, 5) < 0.005
    True
    """
    if parity_group_size < 2:
        raise ConfigurationError(
            f"parity group size must be >= 2, got {parity_group_size}"
        )
    if num_disks < parity_group_size:
        raise ConfigurationError(
            f"need at least C={parity_group_size} disks, got {num_disks}"
        )
    if num_disks < 2:
        raise ConfigurationError(f"need at least 2 disks, got {num_disks}")
    return (parity_group_size - 1) / (num_disks - 1)


def declustered_rebuild_hours(clustered_rebuild_hours: float, num_disks: int,
                              parity_group_size: int) -> float:
    """Distributed-rebuild window: the clustered window scaled by ``alpha``.

    Clustered rebuild reads are confined to the failed disk's ``C - 1``
    surviving group members; declustering spreads the same read volume
    over all ``D - 1`` survivors, so the window (and the vulnerable /
    degraded interval) shrinks by ``alpha = (C-1)/(D-1)``.

    >>> declustered_rebuild_hours(10.0, 11, 5)
    4.0
    """
    if clustered_rebuild_hours < 0:
        raise ConfigurationError(
            f"rebuild window must be >= 0 hours, got {clustered_rebuild_hours}"
        )
    return clustered_rebuild_hours * declustering_ratio(
        num_disks, parity_group_size)


def declustered_mttf_hours(params: SystemParameters,
                           parity_group_size: int) -> float:
    """PD mean time to catastrophic failure via the explicit alpha form.

    ``MTTF^2 / (D * (D-1) * alpha * MTTR)`` — exposure ``D - 1`` (any
    second concurrent failure loses data) against an ``alpha``-shrunk
    repair window.  Algebraically identical to eq. (4); kept as a
    separate closed form so the cancellation is testable.

    >>> p = SystemParameters.paper_table1()
    >>> sr = mttf_catastrophic_hours(p, 5, Scheme.STREAMING_RAID)
    >>> abs(declustered_mttf_hours(p, 5) / sr - 1) < 1e-12
    True
    """
    alpha = declustering_ratio(params.num_disks, parity_group_size)
    window = params.mttr_disk_hours * alpha
    return (params.mttf_disk_hours ** 2) / (
        params.num_disks * (params.num_disks - 1) * window
    )


def declustered_mttds_hours(params: SystemParameters, parity_group_size: int,
                            alpha: float | None = None) -> float:
    """PD mean time to degradation of service as a function of ``alpha``.

    A single failure under PD is absorbed without hiccups — admission is
    trimmed by only ``alpha * G`` slots farm-wide — so service degrades
    when a *second* disk dies inside the (``alpha``-scaled) rebuild
    window: ``MTTF^2 / (D * (D-1) * alpha * MTTR)``.  Pass ``alpha``
    explicitly to sweep the trade-off curve; by default it is derived
    from the farm geometry.  Smaller ``alpha`` (wider declustering)
    monotonically improves MTTDS.

    >>> p = SystemParameters.paper_table1()
    >>> wide = declustered_mttds_hours(p, 5, alpha=0.01)
    >>> narrow = declustered_mttds_hours(p, 5, alpha=0.5)
    >>> wide > narrow
    True
    """
    if alpha is None:
        alpha = declustering_ratio(params.num_disks, parity_group_size)
    if not 0.0 < alpha <= 1.0:
        raise ConfigurationError(
            f"declustering ratio must be in (0, 1], got {alpha}"
        )
    window = params.mttr_disk_hours * alpha
    return (params.mttf_disk_hours ** 2) / (
        params.num_disks * (params.num_disks - 1) * window
    )


def mttf_catastrophic_years(params: SystemParameters, parity_group_size: int,
                            scheme: Scheme) -> float:
    """Equations (4)–(5) in years, as quoted in Tables 2–3."""
    return hours_to_years(
        mttf_catastrophic_hours(params, parity_group_size, scheme))


def mean_time_to_k_concurrent_failures_hours(num_disks: int, k: int,
                                             mttf_disk_hours: float,
                                             mttr_disk_hours: float) -> float:
    """Mean time until ``k`` disks are simultaneously down (eq. 6 family).

    ``MTTF^k / (D (D-1) ... (D-k+1) * MTTR^(k-1))`` — the standard
    birth–death chain approximation for MTTR << MTTF.

    >>> # Section 3: five concurrent failures in a 1000-disk farm.
    >>> t = mean_time_to_k_concurrent_failures_hours(1000, 5, 300_000, 1)
    >>> hours_to_years(t) > 250e6
    True
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    if k > num_disks:
        raise ConfigurationError(
            f"cannot have {k} concurrent failures with {num_disks} disks"
        )
    numerator = mttf_disk_hours ** k
    denominator = mttr_disk_hours ** (k - 1)
    for i in range(k):
        denominator *= (num_disks - i)
    return numerator / denominator


def mttds_hours(params: SystemParameters, parity_group_size: int,
                scheme: Scheme) -> float:
    """Mean time to degradation of service, in hours.

    * SR/SG: identical to their mean time to catastrophic failure — the
      reserved parity bandwidth always suffices for a single failure, and a
      second failure in a cluster is already catastrophic.
    * NC/IB: DoS when ``K`` disks are concurrently down (buffer pool empty /
      reserved bandwidth exhausted) — following the Tables 2–3 convention
      (see module docstring).
    * PD: a single failure only trims admission by ``alpha * G`` slots, so
      DoS coincides with a second failure inside the alpha-scaled rebuild
      window (see :func:`declustered_mttds_hours`).
    """
    if scheme is Scheme.PARITY_DECLUSTERED:
        return declustered_mttds_hours(params, parity_group_size)
    if scheme in (Scheme.STREAMING_RAID, Scheme.STAGGERED_GROUP):
        return mttf_catastrophic_hours(params, parity_group_size, scheme)
    if params.reserve_k < 1:
        # With nothing reserved, the very first failure degrades service.
        return mean_time_to_k_concurrent_failures_hours(
            params.num_disks, 1, params.mttf_disk_hours,
            params.mttr_disk_hours)
    return mean_time_to_k_concurrent_failures_hours(
        params.num_disks, params.reserve_k, params.mttf_disk_hours,
        params.mttr_disk_hours)


def mttds_years(params: SystemParameters, parity_group_size: int,
                scheme: Scheme) -> float:
    """MTTDS in years, as quoted in Tables 2–3."""
    return hours_to_years(mttds_hours(params, parity_group_size, scheme))
