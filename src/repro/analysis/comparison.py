"""Assemble the paper's comparisons: Tables 2–3 and Figure 9.

:func:`compare_schemes` evaluates all six metrics of Tables 2–3 for each
scheme at one parity-group size; :func:`figure9_cost_series` and
:func:`figure9_stream_series` sweep the parity-group size for a fixed
working set, as Figure 9 does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.analysis.buffering import buffer_mb, buffer_tracks
from repro.analysis.cost import CostBreakdown, total_cost
from repro.analysis.overheads import (
    bandwidth_overhead_fraction,
    storage_overhead_fraction,
)
from repro.analysis.parameters import SystemParameters
from repro.analysis.reliability import mttds_years, mttf_catastrophic_years
from repro.analysis.streams import max_streams
from repro.schemes import ALL_SCHEMES, Scheme


@dataclass(frozen=True)
class SchemeMetrics:
    """One column of Table 2/3: all six metrics for one scheme."""

    scheme: Scheme
    parity_group_size: int
    storage_overhead: float      # fraction of raw capacity
    bandwidth_overhead: float    # fraction of aggregate bandwidth
    mttf_years: float            # mean time to catastrophic failure
    mttds_years: float           # mean time to degradation of service
    streams: int                 # maximum simultaneous streams
    buffer_tracks: int           # total buffer requirement, in tracks
    buffer_mb: float             # the same, in MB

    def as_row(self) -> dict[str, float]:
        """The metrics as a flat dict (for table rendering / DataFrames)."""
        return {
            "scheme": self.scheme.value,
            "storage_overhead_pct": 100.0 * self.storage_overhead,
            "bandwidth_overhead_pct": 100.0 * self.bandwidth_overhead,
            "mttf_years": self.mttf_years,
            "mttds_years": self.mttds_years,
            "streams": self.streams,
            "buffer_tracks": self.buffer_tracks,
        }


def scheme_metrics(params: SystemParameters, parity_group_size: int,
                   scheme: Scheme) -> SchemeMetrics:
    """All Table 2/3 metrics for one scheme."""
    streams = max_streams(params, parity_group_size, scheme)
    return SchemeMetrics(
        scheme=scheme,
        parity_group_size=parity_group_size,
        storage_overhead=storage_overhead_fraction(parity_group_size),
        bandwidth_overhead=bandwidth_overhead_fraction(
            params, parity_group_size, scheme),
        mttf_years=mttf_catastrophic_years(params, parity_group_size, scheme),
        mttds_years=mttds_years(params, parity_group_size, scheme),
        streams=streams,
        buffer_tracks=buffer_tracks(params, parity_group_size, scheme, streams),
        buffer_mb=buffer_mb(params, parity_group_size, scheme, streams),
    )


def compare_schemes(params: SystemParameters, parity_group_size: int,
                    schemes: Sequence[Scheme] = ALL_SCHEMES,
                    ) -> dict[Scheme, SchemeMetrics]:
    """Tables 2–3: every metric for every scheme at one parity-group size.

    >>> rows = compare_schemes(SystemParameters.paper_table1(), 5)
    >>> rows[Scheme.STREAMING_RAID].streams
    1041
    """
    return {
        scheme: scheme_metrics(params, parity_group_size, scheme)
        for scheme in schemes
    }


def format_comparison_table(results: dict[Scheme, SchemeMetrics]) -> str:
    """Render a comparison dict in the layout of the paper's Tables 2–3."""
    schemes = list(results)
    headers = ["Metrics"] + [results[s].scheme.display_name for s in schemes]
    rows = [
        ("Disk storage overhead",
         [f"{100 * results[s].storage_overhead:.1f}%" for s in schemes]),
        ("Disk bandwidth overhead",
         [f"{100 * results[s].bandwidth_overhead:.1f}%" for s in schemes]),
        ("MTTF (in years)",
         [f"{results[s].mttf_years:.1f}" for s in schemes]),
        ("MTTDS (in years)",
         [f"{results[s].mttds_years:.1f}" for s in schemes]),
        ("Streams",
         [f"{results[s].streams}" for s in schemes]),
        ("Buffers (in tracks)",
         [f"{results[s].buffer_tracks}" for s in schemes]),
    ]
    table = [headers] + [[label] + values for label, values in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    for row in table:
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)).rstrip())
    return "\n".join(lines)


def figure9_cost_series(params: SystemParameters, working_set_mb: float,
                        group_sizes: Iterable[int],
                        schemes: Sequence[Scheme] = ALL_SCHEMES,
                        ) -> dict[Scheme, list[CostBreakdown]]:
    """Figure 9(a): total cost versus parity-group size per scheme."""
    return {
        scheme: [total_cost(params, c, scheme, working_set_mb)
                 for c in group_sizes]
        for scheme in schemes
    }


def figure9_stream_series(params: SystemParameters, working_set_mb: float,
                          group_sizes: Iterable[int],
                          schemes: Sequence[Scheme] = ALL_SCHEMES,
                          ) -> dict[Scheme, list[tuple[int, int]]]:
    """Figure 9(b): streams versus parity-group size at the minimum disk
    count that holds the working set."""
    series: dict[Scheme, list[tuple[int, int]]] = {}
    for scheme in schemes:
        points = []
        for c in group_sizes:
            breakdown = total_cost(params, c, scheme, working_set_mb)
            points.append((c, breakdown.streams))
        series[scheme] = points
    return series
