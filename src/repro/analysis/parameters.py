"""System parameters: the paper's Table 1 plus the Figure 9 cost knobs.

One :class:`SystemParameters` instance carries everything the closed-form
models need.  The classmethods reproduce the two parameterisations used in
the paper: :meth:`SystemParameters.paper_table1` (Tables 2–3, Figure 9) and
:meth:`SystemParameters.paper_section2` (the in-text k-sweep).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.disk.specs import DiskSpec
from repro.units import hours, kilobytes, mbits_per_sec, milliseconds


@dataclass(frozen=True)
class SystemParameters:
    """All inputs to the paper's equations.

    Attributes
    ----------
    object_bandwidth_mb_s:
        ``b_o`` — object delivery bandwidth (MB/s).
    track_size_mb:
        ``B`` — disk IO unit / track size (MB).
    seek_time_s:
        ``tau_seek`` — maximum seek time (s).
    track_time_s:
        ``tau_trk`` — per-track service time (s).
    num_disks:
        ``D`` — total disks in the system.
    mttf_disk_hours / mttr_disk_hours:
        Per-disk mean time to failure / repair (hours).
    reserve_k:
        ``K`` — Non-clustered buffer-server count and Improved-bandwidth
        reserved-disk count (``K_NC = K_IB``).  Tables 2–3 are consistent
        with ``K = 3``; Figure 9 uses ``K = 5``.
    disk_capacity_mb:
        ``s_d`` — usable capacity per disk (MB); Figure 9 uses 1000.
    memory_cost_per_mb / disk_cost_per_mb:
        ``c_b`` / ``c_d`` — $/MB of buffer memory and disk storage.  The
        paper does not state its values; the defaults (240 and 0.5 $/MB)
        are calibrated against its Section 5 worked examples — they land
        within ~1% of the Staggered-group and Non-clustered figures and
        ~10% of the Streaming RAID one — and reproduce the memory-dominant
        regime the paper describes (IB cost increasing with cluster size).
        See EXPERIMENTS.md for the calibration notes.
    """

    object_bandwidth_mb_s: float
    track_size_mb: float
    seek_time_s: float
    track_time_s: float
    num_disks: int
    mttf_disk_hours: float = 300_000.0
    mttr_disk_hours: float = 1.0
    reserve_k: int = 3
    disk_capacity_mb: float = 1000.0
    memory_cost_per_mb: float = 240.0
    disk_cost_per_mb: float = 0.5

    def __post_init__(self) -> None:
        positive_fields = (
            "object_bandwidth_mb_s", "track_size_mb", "seek_time_s",
            "track_time_s", "mttf_disk_hours", "mttr_disk_hours",
            "disk_capacity_mb", "memory_cost_per_mb", "disk_cost_per_mb",
        )
        for field_name in positive_fields:
            value = getattr(self, field_name)
            if value <= 0:
                raise ValueError(f"{field_name} must be positive, got {value}")
        if self.num_disks < 2:
            raise ValueError(f"need at least 2 disks, got {self.num_disks}")
        if self.reserve_k < 0:
            raise ValueError(f"reserve_k must be non-negative, got {self.reserve_k}")
        if self.reserve_k >= self.num_disks:
            raise ValueError("reserve_k must be smaller than the disk count")

    # -- canonical parameterisations --------------------------------------

    @classmethod
    def paper_table1(cls, **overrides: float) -> "SystemParameters":
        """Table 1: b_o = 1.5 Mb/s, B = 50 KB, 25/20 ms, D = 100."""
        base = cls(
            object_bandwidth_mb_s=mbits_per_sec(1.5),
            track_size_mb=kilobytes(50),
            seek_time_s=milliseconds(25),
            track_time_s=milliseconds(20),
            num_disks=100,
        )
        return replace(base, **overrides) if overrides else base

    @classmethod
    def paper_section2(cls, object_bandwidth_mbits: float = 1.5,
                       **overrides: float) -> "SystemParameters":
        """The Section 2 example: B = 100 KB, 30/10 ms."""
        base = cls(
            object_bandwidth_mb_s=mbits_per_sec(object_bandwidth_mbits),
            track_size_mb=kilobytes(100),
            seek_time_s=milliseconds(30),
            track_time_s=milliseconds(10),
            num_disks=100,
        )
        return replace(base, **overrides) if overrides else base

    @classmethod
    def from_disk_spec(cls, spec: DiskSpec, object_bandwidth_mb_s: float,
                       num_disks: int, **overrides: float) -> "SystemParameters":
        """Build parameters from a :class:`~repro.disk.specs.DiskSpec`."""
        base = cls(
            object_bandwidth_mb_s=object_bandwidth_mb_s,
            track_size_mb=spec.track_size_mb,
            seek_time_s=spec.seek_time_s,
            track_time_s=spec.track_time_s,
            num_disks=num_disks,
            mttf_disk_hours=spec.mttf_s / hours(1),
            mttr_disk_hours=spec.mttr_s / hours(1),
            disk_capacity_mb=spec.capacity_mb,
        )
        return replace(base, **overrides) if overrides else base

    # -- derived quantities -------------------------------------------------

    def with_overrides(self, **changes: float) -> "SystemParameters":
        """A copy with some fields replaced."""
        return replace(self, **changes)

    def to_disk_spec(self, name: str = "derived") -> DiskSpec:
        """The :class:`DiskSpec` these parameters imply (for the simulator)."""
        return DiskSpec(
            name=name,
            seek_time_s=self.seek_time_s,
            track_time_s=self.track_time_s,
            track_size_mb=self.track_size_mb,
            capacity_mb=self.disk_capacity_mb,
            mttf_s=hours(self.mttf_disk_hours),
            mttr_s=hours(self.mttr_disk_hours),
        )

    def cycle_length_s(self, k_prime: int) -> float:
        """``T_cyc = k' * B / b_o`` (Section 2)."""
        if k_prime < 1:
            raise ValueError(f"k' must be >= 1, got {k_prime}")
        return k_prime * self.track_size_mb / self.object_bandwidth_mb_s

    @property
    def disk_bandwidth_mb_s(self) -> float:
        """``d`` — one disk's sustained bandwidth (track per track time)."""
        return self.track_size_mb / self.track_time_s
