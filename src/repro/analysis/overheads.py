"""Storage and bandwidth overhead: equations (1)–(3).

Every scheme stores one parity block per ``C - 1`` data blocks, so the
storage overhead is ``s_d * D / C`` regardless of where parity lives
(eq. 1).  The clustered schemes also *reserve* the parity disks' bandwidth
(eq. 2, a fraction ``1/C``), whereas the Improved-bandwidth scheme only
reserves ``K_IB`` disks' worth (eq. 3, a fraction ``K_IB / D``).
"""

from __future__ import annotations

from repro.analysis.parameters import SystemParameters
from repro.errors import ConfigurationError
from repro.schemes import Scheme


def _check_group(parity_group_size: int) -> None:
    if parity_group_size < 2:
        raise ConfigurationError(
            f"parity group size must be >= 2, got {parity_group_size}"
        )


def storage_overhead_mb(params: SystemParameters,
                        parity_group_size: int) -> float:
    """``S_p = s_d * D / C`` (eq. 1) — MB of disk devoted to parity.

    Identical for all four schemes.
    """
    _check_group(parity_group_size)
    return params.disk_capacity_mb * params.num_disks / parity_group_size


def storage_overhead_fraction(parity_group_size: int) -> float:
    """Parity storage as a fraction of raw capacity: ``1 / C``.

    >>> storage_overhead_fraction(5)
    0.2
    """
    _check_group(parity_group_size)
    return 1.0 / parity_group_size


def bandwidth_overhead_mb_s(params: SystemParameters, parity_group_size: int,
                            scheme: Scheme) -> float:
    """``BW_p`` — MB/s of disk bandwidth reserved for fault tolerance.

    Equations (2)–(3): clustered schemes reserve the parity disks
    (``d * D / C``); Improved-bandwidth reserves ``K_IB * d``.  The
    parity-declustered extension reserves nothing up front — degraded
    reads are paid for by trimming admission ``alpha * G`` slots per
    failure — so its standing bandwidth overhead is zero.
    """
    _check_group(parity_group_size)
    d = params.disk_bandwidth_mb_s
    if scheme is Scheme.IMPROVED_BANDWIDTH:
        return params.reserve_k * d
    if scheme is Scheme.PARITY_DECLUSTERED:
        return 0.0
    return d * params.num_disks / parity_group_size


def bandwidth_overhead_fraction(params: SystemParameters,
                                parity_group_size: int,
                                scheme: Scheme) -> float:
    """Reserved bandwidth as a fraction of the aggregate (Tables 2–3 rows).

    >>> p = SystemParameters.paper_table1()
    >>> bandwidth_overhead_fraction(p, 5, Scheme.STREAMING_RAID)
    0.2
    >>> bandwidth_overhead_fraction(p, 5, Scheme.IMPROVED_BANDWIDTH)
    0.03
    """
    total = params.disk_bandwidth_mb_s * params.num_disks
    return bandwidth_overhead_mb_s(params, parity_group_size, scheme) / total
