"""System-scale arithmetic: the Section 1 back-of-envelope numbers.

"1000 (1 gigabyte) disks provide enough storage for approximately 300
(90 minute) MPEG-2 movies ... or 900 MPEG-1 movies ... Similarly, assuming
a bandwidth of 4 megabytes per second, 1000 disk drives provide enough
bandwidth to support approximately 6500 concurrent MPEG-2 users or 20,000
MPEG-1 users."

These helpers reproduce that arithmetic exactly (the paper rounds down to
one significant figure) and generalise it to arbitrary drive fleets and
object mixes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.media.objects import MPEG1_MB_S, MPEG2_MB_S
from repro.units import minutes


def movie_size_mb(bandwidth_mb_s: float, duration_s: float) -> float:
    """Bytes of a constant-bandwidth object, in MB.

    >>> round(movie_size_mb(MPEG2_MB_S, minutes(90)), 1)
    3037.5
    """
    if bandwidth_mb_s <= 0 or duration_s <= 0:
        raise ConfigurationError("bandwidth and duration must be positive")
    return bandwidth_mb_s * duration_s


def movies_storable(num_disks: int, disk_capacity_mb: float,
                    movie_mb: float,
                    parity_group_size: int | None = None) -> int:
    """How many equal-size movies the farm can hold.

    ``parity_group_size`` optionally discounts the 1/C parity overhead
    (Section 1's estimate ignores it; pass None to match the paper).
    """
    if num_disks < 1 or disk_capacity_mb <= 0 or movie_mb <= 0:
        raise ConfigurationError("sizes must be positive")
    usable = num_disks * disk_capacity_mb
    if parity_group_size is not None:
        if parity_group_size < 2:
            raise ConfigurationError("parity group size must be >= 2")
        usable *= (parity_group_size - 1) / parity_group_size
    return int(usable / movie_mb)


def concurrent_users(num_disks: int, disk_bandwidth_mb_s: float,
                     object_bandwidth_mb_s: float,
                     parity_group_size: int | None = None) -> int:
    """How many constant-bandwidth streams the aggregate bandwidth feeds.

    Ignores seek overheads — this is the paper's raw-bandwidth estimate,
    an upper bound that equations (8)–(11) refine.
    """
    if num_disks < 1 or disk_bandwidth_mb_s <= 0 \
            or object_bandwidth_mb_s <= 0:
        raise ConfigurationError("sizes must be positive")
    total = num_disks * disk_bandwidth_mb_s
    if parity_group_size is not None:
        if parity_group_size < 2:
            raise ConfigurationError("parity group size must be >= 2")
        total *= (parity_group_size - 1) / parity_group_size
    return int(total / object_bandwidth_mb_s)


@dataclass(frozen=True)
class SystemScale:
    """The Figure 1 arithmetic for one drive fleet."""

    num_disks: int
    disk_capacity_mb: float
    disk_bandwidth_mb_s: float
    mpeg2_movies: int
    mpeg1_movies: int
    mpeg2_users: int
    mpeg1_users: int


def section1_scale(num_disks: int = 1000,
                   disk_capacity_mb: float = 1000.0,
                   disk_bandwidth_mb_s: float = 4.0) -> SystemScale:
    """The paper's 1000-disk example, parameterised.

    >>> scale = section1_scale()
    >>> scale.mpeg2_movies, scale.mpeg1_movies
    (329, 987)
    >>> scale.mpeg2_users, scale.mpeg1_users
    (7111, 21333)
    """
    mpeg2 = movie_size_mb(MPEG2_MB_S, minutes(90))
    mpeg1 = movie_size_mb(MPEG1_MB_S, minutes(90))
    return SystemScale(
        num_disks=num_disks,
        disk_capacity_mb=disk_capacity_mb,
        disk_bandwidth_mb_s=disk_bandwidth_mb_s,
        mpeg2_movies=movies_storable(num_disks, disk_capacity_mb, mpeg2),
        mpeg1_movies=movies_storable(num_disks, disk_capacity_mb, mpeg1),
        mpeg2_users=concurrent_users(num_disks, disk_bandwidth_mb_s,
                                     MPEG2_MB_S),
        mpeg1_users=concurrent_users(num_disks, disk_bandwidth_mb_s,
                                     MPEG1_MB_S),
    )
