"""Observation 1: never mix data blocks of different objects in one group.

Section 1: "If a parity group contains fragments of object X which is
being delivered and fragments of object Y which is not, then a disk
failure will generate demands for fragments of both objects ... no
bandwidth would have been allocated for Y ... the missing data cannot be
reconstructed in real time."

This module quantifies that: with per-object groups every reconstruction
read was *already scheduled* (the group is being read for delivery
anyway), so a failure adds only the parity read, for which bandwidth is
reserved.  With mixed groups, reconstructing an active block demands
reads of the group's *inactive* members — unplanned load of up to
``C - 2`` extra reads per affected group.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ConfigurationError


def unplanned_reads_for_group(group_objects: Sequence[str],
                              failed_offset: int,
                              active: Iterable[str]) -> int:
    """Unplanned reads needed to rebuild a mixed group's failed block.

    ``group_objects[i]`` names the object owning the group's i-th data
    block.  If the failed block's object is inactive, nothing needs
    rebuilding (0).  Otherwise every member belonging to an *inactive*
    object must be fetched without having bandwidth allocated.
    """
    if not 0 <= failed_offset < len(group_objects):
        raise ConfigurationError(
            f"failed offset {failed_offset} out of range for a group of "
            f"{len(group_objects)}"
        )
    active_set = set(active)
    if group_objects[failed_offset] not in active_set:
        return 0
    return sum(1 for i, name in enumerate(group_objects)
               if i != failed_offset and name not in active_set)


def expected_unplanned_reads(parity_group_size: int,
                             active_fraction: float) -> float:
    """Expected unplanned reads per affected mixed group.

    With members drawn independently from a population where a fraction
    ``p`` of objects is active: the failed block matters with probability
    ``p``, and each of the other ``C - 2`` members is unplanned with
    probability ``1 - p``::

        E = p * (C - 2) * (1 - p)

    Per-object groups give identically zero.
    """
    if parity_group_size < 2:
        raise ConfigurationError(
            f"parity group size must be >= 2, got {parity_group_size}"
        )
    if not 0.0 <= active_fraction <= 1.0:
        raise ConfigurationError(
            f"active fraction must be in [0, 1], got {active_fraction}"
        )
    c = parity_group_size
    return active_fraction * (c - 2) * (1.0 - active_fraction)


def dedicated_group_unplanned_reads(failed_offset: int,
                                    object_active: bool) -> int:
    """Per-object groups never demand unplanned data reads.

    If the object is active, the group's other members are already being
    read for delivery (Streaming RAID/Staggered) or can be scheduled in
    the stream's own slots (Non-clustered); only the parity block is
    extra, and its bandwidth is reserved.  If the object is inactive,
    nothing needs reconstructing at all.
    """
    return 0


def mixing_amplification(parity_group_size: int, active_fraction: float,
                         streams_per_disk: float) -> float:
    """Extra per-disk read load after one failure, in track-reads/cycle.

    Each affected active stream's group demands
    :func:`expected_unplanned_reads` extra fetches, spread over the
    cluster's disks — load the admission control never budgeted.  This is
    the quantity that must fit into idle slots to avoid the paper's
    degradation of service.
    """
    per_group = expected_unplanned_reads(parity_group_size, active_fraction)
    stripe = parity_group_size - 1
    return streams_per_disk * per_group / stripe
