"""Disk service-time models.

The paper's whole analysis uses the *simple* model of Section 2::

    T(r) = tau_seek + r * tau_trk

i.e. one worst-case seek charge per cycle plus a per-track service time that
folds in the incremental seek start/stop cost.  The planner question it
answers is: *how many tracks can one disk serve within a cycle of length
T_cyc?* — which is ``floor((T_cyc - tau_seek) / tau_trk)``.

:class:`DetailedDiskModel` is an extension in the spirit of Ruemmler &
Wilkes (1994): a square-root/linear seek-time curve plus explicit rotational
positioning, used in an ablation benchmark to quantify how optimistic or
pessimistic the simple model is for track-sized IOs.
"""

from __future__ import annotations

import math
from typing import Protocol, Sequence

from repro.disk.specs import DiskSpec


class DiskModel(Protocol):
    """Anything that can predict cycle-granularity disk service times."""

    spec: DiskSpec

    def read_time(self, tracks: int) -> float:
        """Worst-case time to read ``tracks`` tracks in one cycle (seconds)."""
        ...

    def tracks_per_cycle(self, cycle_length_s: float) -> int:
        """Max tracks one disk can serve within a cycle of the given length."""
        ...


class SimpleDiskModel:
    """The paper's model: ``T(r) = tau_seek + r * tau_trk``."""

    __slots__ = ("spec",)

    def __init__(self, spec: DiskSpec) -> None:
        self.spec = spec

    def read_time(self, tracks: int) -> float:
        """Worst-case time to read ``tracks`` tracks in one cycle.

        >>> from repro.disk.specs import PAPER_TABLE1_DRIVE
        >>> round(SimpleDiskModel(PAPER_TABLE1_DRIVE).read_time(4), 6)
        0.105
        """
        if tracks < 0:
            raise ValueError(f"track count must be non-negative, got {tracks}")
        if tracks == 0:
            return 0.0
        return self.spec.seek_time_s + tracks * self.spec.track_time_s

    def tracks_per_cycle(self, cycle_length_s: float) -> int:
        """``floor((T_cyc - tau_seek)/tau_trk)``, clamped at zero."""
        if cycle_length_s <= 0:
            raise ValueError(f"cycle length must be positive, got {cycle_length_s}")
        budget = cycle_length_s - self.spec.seek_time_s
        if budget < 0:
            return 0
        # Guard against float fuzz: 0.19999999/0.02 must count as 10, not 9.
        return int(math.floor(budget / self.spec.track_time_s + 1e-9))

    def tracks_per_cycle_degraded(self, cycle_length_s: float,
                                  slowdown: float) -> int:
        """Per-cycle track budget of a fail-slow drive.

        A fail-slow drive serves media ``slowdown`` times slower than
        nominal (remapped sectors, head retries, thermal throttling), so
        its per-track service time inflates to ``slowdown * tau_trk``
        while the cycle's single worst-case seek charge is unchanged.

        >>> from repro.disk.specs import PAPER_TABLE1_DRIVE
        >>> model = SimpleDiskModel(PAPER_TABLE1_DRIVE)
        >>> model.tracks_per_cycle_degraded(0.5, 1.0) \
                == model.tracks_per_cycle(0.5)
        True
        """
        if slowdown < 1.0:
            raise ValueError(
                f"slowdown must be >= 1 (nominal speed), got {slowdown}"
            )
        if cycle_length_s <= 0:
            raise ValueError(f"cycle length must be positive, got {cycle_length_s}")
        budget = cycle_length_s - self.spec.seek_time_s
        if budget < 0:
            return 0
        return int(math.floor(
            budget / (self.spec.track_time_s * slowdown) + 1e-9))


class ZonedDiskModel:
    """Zone-bit-recorded drive (extension; the real ST31200N was zoned).

    Outer cylinders pack more sectors per track, so physical track
    capacity grows roughly linearly from the innermost to the outermost
    zone while the rotation period stays fixed.  The paper's analysis
    assumes one fixed IO unit ``B``; on a zoned drive a *guaranteed*
    delivery unit must fit the **innermost** track, so the paper's model
    is safe but leaves the outer zones' extra capacity and bandwidth
    unused.  This model quantifies that conservatism.
    """

    __slots__ = ("spec", "zones", "outer_to_inner_ratio", "_inner_track_mb")

    def __init__(self, spec: DiskSpec, zones: int = 8,
                 outer_to_inner_ratio: float = 1.6) -> None:
        if zones < 1:
            raise ValueError(f"need at least one zone, got {zones}")
        if outer_to_inner_ratio < 1.0:
            raise ValueError(
                "outer tracks cannot be smaller than inner ones "
                f"(ratio {outer_to_inner_ratio})"
            )
        self.spec = spec
        self.zones = zones
        self.outer_to_inner_ratio = outer_to_inner_ratio
        # Zone z = 0 is innermost.  Capacities interpolate linearly so the
        # *mean* track equals the spec's nominal B.
        mean_factor = (1.0 + outer_to_inner_ratio) / 2.0
        self._inner_track_mb = spec.track_size_mb / mean_factor

    def track_capacity_mb(self, zone: int) -> float:
        """Physical capacity of a track in the given zone (MB)."""
        if not 0 <= zone < self.zones:
            raise ValueError(f"zone {zone} out of range 0..{self.zones - 1}")
        if self.zones == 1:
            factor = 1.0
        else:
            step = (self.outer_to_inner_ratio - 1.0) / (self.zones - 1)
            factor = 1.0 + zone * step
        return self._inner_track_mb * factor

    def transfer_rate_mb_s(self, zone: int) -> float:
        """Sustained rate in a zone: a full track per rotation period."""
        return self.track_capacity_mb(zone) / self.spec.rotation_time_s

    def guaranteed_unit_mb(self) -> float:
        """The largest B that fits every zone: the innermost track."""
        return self.track_capacity_mb(0)

    def mean_track_mb(self) -> float:
        """Capacity-averaged track size across the zones."""
        total = sum(self.track_capacity_mb(z) for z in range(self.zones))
        return total / self.zones

    def wasted_capacity_fraction(self) -> float:
        """Capacity stranded by sizing B to the innermost zone.

        >>> model = ZonedDiskModel(
        ...     __import__('repro.disk.specs', fromlist=['x']).PAPER_TABLE1_DRIVE)
        >>> 0.2 < model.wasted_capacity_fraction() < 0.3
        True
        """
        return 1.0 - self.guaranteed_unit_mb() / self.mean_track_mb()

    def tracks_per_cycle(self, cycle_length_s: float, zone: int = 0) -> int:
        """Per-cycle track budget when all IO lands in one zone.

        Zone 0 (innermost) gives the guaranteed, paper-compatible figure;
        outer zones transfer faster per byte but the cycle budget is per
        *track*, so the count is the same — what improves outward is the
        data moved per slot.
        """
        if cycle_length_s <= 0:
            raise ValueError("cycle length must be positive")
        self.track_capacity_mb(zone)  # validates the zone
        budget = cycle_length_s - self.spec.seek_time_s
        if budget < 0:
            return 0
        return int(math.floor(budget / self.spec.track_time_s + 1e-9))

    def bandwidth_per_cycle_mb(self, cycle_length_s: float,
                               zone: int) -> float:
        """Deliverable bytes per cycle from one disk, zone-resident data."""
        return self.tracks_per_cycle(cycle_length_s, zone) * \
            self.track_capacity_mb(zone)


class DetailedDiskModel:
    """Ruemmler–Wilkes-flavoured model (extension, not used by the paper).

    Seek time for a distance of ``d`` cylinders:

    * ``d == 0``: no seek;
    * short seeks: ``a + b * sqrt(d)`` (arm acceleration dominated);
    * long seeks: ``c + e * d`` (coast dominated);

    plus half a rotation of expected rotational latency per request unless
    the request starts at the next sector boundary (the paper's assumption
    for full-track reads, in which case latency is ~0).
    """

    __slots__ = ("spec", "cylinders", "track_aligned", "_knee",
                 "_settle", "_slope", "_sqrt_coeff")

    #: Fraction of the full stroke below which the sqrt regime applies.
    SHORT_SEEK_FRACTION = 0.1

    def __init__(self, spec: DiskSpec, cylinders: int = 2700,
                 track_aligned: bool = True) -> None:
        if cylinders <= 1:
            raise ValueError("a drive needs at least two cylinders")
        self.spec = spec
        self.cylinders = cylinders
        self.track_aligned = track_aligned
        # Calibrate the two regimes so that a full-stroke seek costs
        # spec.seek_time_s and the curve is continuous at the knee.
        self._knee = max(1, int(cylinders * self.SHORT_SEEK_FRACTION))
        full = spec.seek_time_s
        # Long regime: c + e*d with e chosen so the tail is linear and
        # c matching a typical settle time of ~30% of full stroke cost.
        self._settle = 0.3 * full
        self._slope = (full - self._settle) / (cylinders - 1)
        knee_time = self._settle + self._slope * self._knee
        self._sqrt_coeff = knee_time / math.sqrt(self._knee)

    def seek_time(self, distance_cylinders: int) -> float:
        """Seek time for a given cylinder distance."""
        d = abs(int(distance_cylinders))
        if d == 0:
            return 0.0
        if d <= self._knee:
            return self._sqrt_coeff * math.sqrt(d)
        return self._settle + self._slope * d

    def rotational_latency(self) -> float:
        """Expected rotational delay before the transfer can start."""
        if self.track_aligned:
            return 0.0
        return self.spec.rotation_time_s / 2.0

    def transfer_time(self) -> float:
        """Time to transfer one full track (one revolution's worth of media)."""
        return self.spec.rotation_time_s

    def read_time_for_positions(self, cylinders: Sequence[int]) -> float:
        """Total service time for track reads at the given cylinder positions.

        The scheduler is assumed to sort requests into an elevator sweep, as
        cycle-based scheduling permits (Section 2), so the seeks charged are
        the gaps of the sorted sequence starting from cylinder 0.
        """
        if not cylinders:
            return 0.0
        ordered = sorted(cylinders)
        total = 0.0
        position = 0
        for cylinder in ordered:
            total += self.seek_time(cylinder - position)
            total += self.rotational_latency()
            total += self.transfer_time()
            position = cylinder
        return total

    def read_time(self, tracks: int) -> float:
        """Worst-case-flavoured estimate compatible with :class:`DiskModel`.

        Charges one average-ish sweep: a full-stroke seek split evenly
        across the ``tracks`` requests of an elevator pass.
        """
        if tracks < 0:
            raise ValueError(f"track count must be non-negative, got {tracks}")
        if tracks == 0:
            return 0.0
        gap = self.cylinders // (tracks + 1)
        per_request = self.seek_time(gap) + self.rotational_latency() \
            + self.transfer_time()
        return tracks * per_request

    def tracks_per_cycle(self, cycle_length_s: float) -> int:
        """Largest r with ``read_time(r) <= cycle_length_s`` (by search)."""
        if cycle_length_s <= 0:
            raise ValueError(f"cycle length must be positive, got {cycle_length_s}")
        low, high = 0, 1
        while self.read_time(high) <= cycle_length_s:
            high *= 2
            if high > 1_000_000:  # pragma: no cover - absurd configuration
                break
        while low < high - 1:
            mid = (low + high) // 2
            if self.read_time(mid) <= cycle_length_s:
                low = mid
            else:
                high = mid
        return low
