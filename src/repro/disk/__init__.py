"""Disk substrate: drive specifications, service-time models, simulated drives.

The paper's analysis (Section 2) rests on a deliberately simple disk model —
``T(r) = tau_seek + r * tau_trk`` for reading ``r`` tracks in one cycle —
parameterised like a Seagate ST31200N (Table 1).  :class:`SimpleDiskModel`
implements exactly that; :class:`DetailedDiskModel` is a Ruemmler–Wilkes
style extension used to sanity-check the simple model's optimism.
"""

from repro.disk.drive import Disk, DiskArray, DiskState
from repro.disk.model import (
    DetailedDiskModel,
    DiskModel,
    SimpleDiskModel,
    ZonedDiskModel,
)
from repro.disk.specs import (
    PAPER_SECTION2_DRIVE,
    PAPER_TABLE1_DRIVE,
    SEAGATE_ST31200N,
    DiskSpec,
)

__all__ = [
    "Disk",
    "DiskArray",
    "DiskModel",
    "DiskSpec",
    "DiskState",
    "DetailedDiskModel",
    "PAPER_SECTION2_DRIVE",
    "PAPER_TABLE1_DRIVE",
    "SEAGATE_ST31200N",
    "SimpleDiskModel",
    "ZonedDiskModel",
]
