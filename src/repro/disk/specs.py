"""Drive specifications.

:class:`DiskSpec` carries the four numbers the paper's model needs —
maximum seek time, per-track service time, track size, and capacity — plus
reliability figures (MTTF/MTTR) for the fault-tolerance analysis.

Named instances:

* :data:`PAPER_TABLE1_DRIVE` — Table 1 of the paper (the drive behind
  Tables 2–3 and Figure 9); "characteristics similar to a Seagate ST31200N".
* :data:`PAPER_SECTION2_DRIVE` — the slightly different example drive used
  for the in-text k-sweep in Section 2 (B = 100 KB, 30 ms / 10 ms).
* :data:`SEAGATE_ST31200N` — the physical drive's datasheet-style numbers,
  used by the detailed disk model extension.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.units import hours, kilobytes, megabytes, milliseconds


@dataclass(frozen=True, slots=True)
class DiskSpec:
    """Static description of one disk drive.

    Attributes
    ----------
    name:
        Human-readable label.
    seek_time_s:
        ``tau_seek``: maximum seek time between the extreme inner and outer
        cylinders (seconds).
    track_time_s:
        ``tau_trk``: maximum time attributable to reading one track,
        including the speed-up/slow-down fraction of the seek (seconds).
    track_size_mb:
        ``B``: bytes per track, in megabytes.
    capacity_mb:
        ``s_d``: usable capacity in megabytes.
    mttf_s / mttr_s:
        Mean time to failure / to repair-and-reload, in seconds.
    rpm:
        Spindle speed; only the detailed model uses it.
    """

    name: str
    seek_time_s: float
    track_time_s: float
    track_size_mb: float
    capacity_mb: float
    mttf_s: float = hours(300_000)
    mttr_s: float = hours(1)
    rpm: float = 5400.0

    def __post_init__(self) -> None:
        for field_name in ("seek_time_s", "track_time_s", "track_size_mb",
                           "capacity_mb", "mttf_s", "mttr_s", "rpm"):
            value = getattr(self, field_name)
            if value <= 0:
                raise ValueError(f"{field_name} must be positive, got {value}")

    @property
    def tracks_per_disk(self) -> int:
        """How many B-sized tracks fit on the disk."""
        return int(self.capacity_mb / self.track_size_mb)

    @property
    def transfer_rate_mb_s(self) -> float:
        """Sustained transfer rate implied by the track service time."""
        return self.track_size_mb / self.track_time_s

    @property
    def rotation_time_s(self) -> float:
        """One full platter revolution, in seconds."""
        return 60.0 / self.rpm

    def with_overrides(self, **changes: float) -> "DiskSpec":
        """A copy of this spec with some fields replaced."""
        return replace(self, **changes)


#: Table 1 of the paper: B = 50 KB, tau_seek = 25 ms, tau_trk = 20 ms,
#: MTTF = 300,000 h, MTTR = 1 h.  Capacity is not used by Tables 2-3; the
#: Figure 9 experiments set s_d = 1000 MB explicitly.
PAPER_TABLE1_DRIVE = DiskSpec(
    name="paper-table1",
    seek_time_s=milliseconds(25),
    track_time_s=milliseconds(20),
    track_size_mb=kilobytes(50),
    capacity_mb=megabytes(1000),
)

#: The Section 2 in-text example: B = 100 KB, tau_seek = 30 ms, tau_trk = 10 ms.
PAPER_SECTION2_DRIVE = DiskSpec(
    name="paper-section2",
    seek_time_s=milliseconds(30),
    track_time_s=milliseconds(10),
    track_size_mb=kilobytes(100),
    capacity_mb=megabytes(1000),
)

#: Datasheet-flavoured numbers for the Seagate Hawk 1LP (ST31200N):
#: ~1.05 GB, 5411 rpm, ~10.5 ms average seek.  Used by the detailed model.
SEAGATE_ST31200N = DiskSpec(
    name="seagate-st31200n",
    seek_time_s=milliseconds(22),
    track_time_s=milliseconds(20),
    track_size_mb=kilobytes(50),
    capacity_mb=megabytes(1050),
    rpm=5411.0,
)
