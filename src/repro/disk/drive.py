"""Simulated disk drives and the disk array.

A :class:`Disk` stores track payloads (bytes) indexed by an integer track
position, and carries an operational/failed state.  Reading a failed disk
raises :class:`~repro.errors.DiskFailedError` — schedulers must check
:attr:`Disk.is_failed` and route around failures via parity reconstruction;
an exception here means a scheduler bug.

:class:`DiskArray` is the collection of drives of one server plus
convenience queries (failed set, spare accounting, total capacity).
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator, Optional

from repro.disk.specs import DiskSpec
from repro.errors import DiskFailedError, LayoutError


class DiskState(enum.Enum):
    """Operational state of one drive."""

    OPERATIONAL = "operational"
    FAILED = "failed"


class Disk:
    """One simulated drive: payload store + failure state + counters."""

    def __init__(self, disk_id: int, spec: DiskSpec):
        if disk_id < 0:
            raise ValueError(f"disk id must be non-negative, got {disk_id}")
        self.disk_id = disk_id
        self.spec = spec
        self.state = DiskState.OPERATIONAL
        self._tracks: dict[int, bytes] = {}
        # Lifetime counters, for reports.
        self.reads = 0
        self.writes = 0
        self.failures = 0

    def __repr__(self) -> str:
        return f"Disk(id={self.disk_id}, state={self.state.value}, " \
               f"tracks={len(self._tracks)})"

    @property
    def is_failed(self) -> bool:
        """True while the drive is down."""
        return self.state is DiskState.FAILED

    @property
    def stored_tracks(self) -> int:
        """Number of track payloads currently written."""
        return len(self._tracks)

    def write(self, position: int, payload: bytes) -> None:
        """Store a track payload at ``position`` (loading from tertiary)."""
        if position < 0:
            raise LayoutError(f"track position must be non-negative: {position}")
        if position >= self.spec.tracks_per_disk:
            raise LayoutError(
                f"track position {position} beyond disk capacity "
                f"({self.spec.tracks_per_disk} tracks)"
            )
        self._tracks[position] = bytes(payload)
        self.writes += 1

    def read(self, position: int) -> bytes:
        """Return the payload at ``position``.

        Raises
        ------
        DiskFailedError
            If the drive is failed — callers must reconstruct via parity.
        LayoutError
            If nothing was ever written there.
        """
        if self.is_failed:
            raise DiskFailedError(
                f"read from failed disk {self.disk_id} (position {position})"
            )
        if position not in self._tracks:
            raise LayoutError(
                f"disk {self.disk_id} has no data at track position {position}"
            )
        self.reads += 1
        return self._tracks[position]

    def fail(self) -> None:
        """Mark the drive failed.  Contents become unreadable (not erased:
        the replacement-drive rebuild rewrites them explicitly)."""
        if not self.is_failed:
            self.state = DiskState.FAILED
            self.failures += 1

    def repair(self) -> None:
        """Bring a (reloaded) drive back online."""
        self.state = DiskState.OPERATIONAL

    def erase(self) -> None:
        """Drop all contents (simulates swapping in a blank spare)."""
        self._tracks.clear()

    def discard(self, position: int) -> None:
        """Drop one track's payload (purging an object from disk)."""
        self._tracks.pop(position, None)

    def positions(self) -> Iterator[int]:
        """Iterate stored track positions (unspecified order)."""
        return iter(self._tracks)


class DiskArray:
    """All the drives of one multimedia server."""

    def __init__(self, count: int, spec: DiskSpec):
        if count <= 0:
            raise ValueError(f"disk count must be positive, got {count}")
        self.spec = spec
        self.disks = [Disk(disk_id, spec) for disk_id in range(count)]

    def __len__(self) -> int:
        return len(self.disks)

    def __getitem__(self, disk_id: int) -> Disk:
        if not 0 <= disk_id < len(self.disks):
            raise LayoutError(f"no such disk: {disk_id}")
        return self.disks[disk_id]

    def __iter__(self) -> Iterator[Disk]:
        return iter(self.disks)

    @property
    def failed_ids(self) -> list[int]:
        """Ids of currently failed drives, ascending."""
        return [d.disk_id for d in self.disks if d.is_failed]

    @property
    def operational_count(self) -> int:
        """Number of drives currently up."""
        return sum(1 for d in self.disks if not d.is_failed)

    def fail(self, disk_id: int) -> Disk:
        """Fail one drive and return it."""
        disk = self[disk_id]
        disk.fail()
        return disk

    def repair(self, disk_id: int) -> Disk:
        """Repair one drive and return it."""
        disk = self[disk_id]
        disk.repair()
        return disk

    def fail_many(self, disk_ids: Iterable[int]) -> None:
        """Fail several drives at once."""
        for disk_id in disk_ids:
            self.fail(disk_id)

    def total_capacity_mb(self) -> float:
        """Aggregate raw capacity of the array in MB."""
        return len(self.disks) * self.spec.capacity_mb

    def first_failed(self) -> Optional[Disk]:
        """The lowest-id failed drive, or None."""
        for disk in self.disks:
            if disk.is_failed:
                return disk
        return None
