"""Simulated disk drives and the disk array.

A :class:`Disk` stores track payloads (bytes) indexed by an integer track
position, and carries an operational/failed state.  Reading a failed disk
raises :class:`~repro.errors.DiskFailedError` — schedulers must check
:attr:`Disk.is_failed` and route around failures via parity reconstruction;
an exception here means a scheduler bug.

:class:`DiskArray` is the collection of drives of one server plus
convenience queries (failed set, spare accounting, total capacity).

Two I/O modes exist:

* **payload mode** (``store_payloads=True``, the default): every write
  stores real bytes and every read returns them, so XOR parity can be
  verified byte-for-byte;
* **metadata-only mode** (``store_payloads=False``): the drive tracks
  *occupancy* and read/write counters but stores no payload bytes — reads
  return the zero-length :data:`~repro.parity.xor.META_PAYLOAD` token.
  Occupancy, failure semantics, and counters are identical to payload
  mode, so cycle metrics match bit for bit while writes and reads are O(1)
  regardless of track size.  Actual payloads stay lazily derivable from
  the layout's deterministic seed function
  (:meth:`~repro.layout.base.DataLayout.resolve_payload`).
"""

from __future__ import annotations

import enum
from typing import Iterable, Iterator, Optional

from repro.disk.specs import DiskSpec
from repro.errors import (
    DiskFailedError,
    FaultStateError,
    LayoutError,
    MediaReadError,
)
from repro.parity.xor import META_PAYLOAD


class DiskState(enum.Enum):
    """Fault-domain state of one drive.

    The legal transitions form the per-disk state machine::

        OPERATIONAL --degrade()--> DEGRADED --restore()--> OPERATIONAL
        OPERATIONAL/DEGRADED --fail()--> FAILED
        FAILED --begin_rebuild()--> REBUILDING
        FAILED/REBUILDING/DEGRADED --repair()--> OPERATIONAL

    ``DEGRADED`` models a fail-slow drive: still serving, but at a reduced
    :attr:`Disk.service_fraction` of its nominal per-cycle track budget.
    ``REBUILDING`` is a failed drive whose spare is being reconstructed
    on-line; reads still fail (``is_failed`` stays True) until the rebuild
    finishes and :meth:`Disk.repair` completes the cycle.
    """

    OPERATIONAL = "operational"
    DEGRADED = "degraded"
    FAILED = "failed"
    REBUILDING = "rebuilding"


#: Sentinel stored per occupied position in metadata-only mode.
_META = None


class Disk:
    """One simulated drive: payload store + failure state + counters."""

    __slots__ = ("disk_id", "spec", "state", "is_failed", "store_payloads",
                 "service_fraction", "_tracks", "_media_errors", "reads",
                 "writes", "failures", "state_changes",
                 "media_errors_injected", "media_errors_cleared")

    def __init__(self, disk_id: int, spec: DiskSpec,
                 store_payloads: bool = True) -> None:
        if disk_id < 0:
            raise ValueError(f"disk id must be non-negative, got {disk_id}")
        self.disk_id = disk_id
        self.spec = spec
        self.state = DiskState.OPERATIONAL
        #: Kept in lockstep with ``state``: a plain attribute because the
        #: schedulers consult it once per planned read.
        self.is_failed = False
        #: Fraction of the nominal per-cycle track budget a fail-slow
        #: drive can still serve; 1.0 while fully operational.
        self.service_fraction = 1.0
        self.store_payloads = store_payloads
        #: position -> payload bytes (payload mode) or ``None`` (metadata).
        self._tracks: dict[int, Optional[bytes]] = {}
        #: position -> transient? — latent sector errors awaiting a scrub
        #: (persistent) or the next read attempt (transient).
        self._media_errors: dict[int, bool] = {}
        # Lifetime counters, for reports.
        self.reads = 0
        self.writes = 0
        self.failures = 0
        #: Fault-state transitions; the plan-cache invalidation epoch.
        self.state_changes = 0
        self.media_errors_injected = 0
        self.media_errors_cleared = 0

    def __repr__(self) -> str:
        return f"Disk(id={self.disk_id}, state={self.state.value}, " \
               f"tracks={len(self._tracks)})"

    @property
    def stored_tracks(self) -> int:
        """Number of track payloads currently written."""
        return len(self._tracks)

    def _check_position(self, position: int) -> None:
        if position < 0:
            raise LayoutError(f"track position must be non-negative: {position}")
        if position >= self.spec.tracks_per_disk:
            raise LayoutError(
                f"track position {position} beyond disk capacity "
                f"({self.spec.tracks_per_disk} tracks)"
            )

    def write(self, position: int, payload: bytes) -> None:
        """Store a track payload at ``position`` (loading from tertiary)."""
        self._check_position(position)
        if self.store_payloads:
            # Avoid a redundant copy when the payload is already bytes.
            self._tracks[position] = (payload if type(payload) is bytes
                                      else bytes(payload))
        else:
            self._tracks[position] = _META
        if self._media_errors and \
                self._media_errors.pop(position, None) is not None:
            # Rewriting a sector remaps it: the latent error is gone.
            self.media_errors_cleared += 1
            self.state_changes += 1
        self.writes += 1

    def write_meta(self, position: int) -> None:
        """Mark ``position`` occupied without materialising any payload.

        The metadata-mode loader path: occupancy and the write counter
        advance exactly as :meth:`write` would, but no bytes are generated
        or stored, so materialising a whole catalog is O(1) per track.
        """
        self._check_position(position)
        self._tracks[position] = _META if not self.store_payloads else \
            self._tracks.get(position, _META)
        self.writes += 1

    def read(self, position: int) -> bytes:
        """Return the payload at ``position``.

        In metadata-only mode the returned payload is the zero-length
        token; occupancy and failure checks are identical to payload mode.

        Raises
        ------
        DiskFailedError
            If the drive is failed — callers must reconstruct via parity.
        MediaReadError
            If the position carries a latent/transient media error.  A
            transient glitch clears itself on the failed attempt, so an
            immediate retry succeeds; a latent (persistent) error keeps
            failing until scrubbed, repaired, or rewritten.
        LayoutError
            If nothing was ever written there.
        """
        if self.is_failed:
            raise DiskFailedError(
                f"read from failed disk {self.disk_id} (position {position})"
            )
        if self._media_errors:
            transient = self._media_errors.get(position)
            if transient is not None:
                if transient:
                    del self._media_errors[position]
                    self.media_errors_cleared += 1
                    self.state_changes += 1
                raise MediaReadError(self.disk_id, position, transient)
        try:
            payload = self._tracks[position]
        except KeyError:
            raise LayoutError(
                f"disk {self.disk_id} has no data at track position {position}"
            ) from None
        self.reads += 1
        return META_PAYLOAD if payload is None else payload

    def peek(self, position: int) -> Optional[bytes]:
        """The stored payload without touching counters or failure state.

        Returns ``None`` for an occupied metadata-only position (the bytes
        are derivable from the layout's seed function, not stored here).

        Raises
        ------
        LayoutError
            If the position holds nothing at all.
        """
        try:
            return self._tracks[position]
        except KeyError:
            raise LayoutError(
                f"disk {self.disk_id} has no data at track position {position}"
            ) from None

    def fail(self) -> None:
        """Mark the drive failed.  Contents become unreadable (not erased:
        the replacement-drive rebuild rewrites them explicitly)."""
        if not self.is_failed:
            self.state = DiskState.FAILED
            self.is_failed = True
            self.failures += 1
            self.state_changes += 1

    def repair(self) -> None:
        """Bring a (reloaded/replaced) drive back online.

        A repair models a drive swap or full reload, so it also clears any
        fail-slow throttle and outstanding media errors.
        """
        if self.is_failed or self.state is not DiskState.OPERATIONAL \
                or self.service_fraction != 1.0 or self._media_errors:
            self.state_changes += 1
        self.state = DiskState.OPERATIONAL
        self.is_failed = False
        self.service_fraction = 1.0
        self._media_errors.clear()

    def degrade(self, service_fraction: float) -> None:
        """Enter fail-slow mode at the given fraction of nominal service.

        Raises
        ------
        FaultStateError
            If the drive is failed (a dead drive cannot be merely slow).
        """
        if not 0.0 <= service_fraction <= 1.0:
            raise ValueError(
                f"service fraction must be in [0, 1], got {service_fraction}"
            )
        if self.is_failed:
            raise FaultStateError(
                f"cannot degrade failed disk {self.disk_id}; repair it first"
            )
        self.state = (DiskState.OPERATIONAL if service_fraction >= 1.0
                      else DiskState.DEGRADED)
        self.service_fraction = service_fraction
        self.state_changes += 1

    def restore(self) -> None:
        """Leave fail-slow mode (the drive recovered full speed).

        Raises
        ------
        FaultStateError
            If the drive is failed — a failed drive needs :meth:`repair`.
        """
        if self.is_failed:
            raise FaultStateError(
                f"cannot restore failed disk {self.disk_id}; repair it first"
            )
        if self.state is DiskState.DEGRADED:
            self.state = DiskState.OPERATIONAL
            self.service_fraction = 1.0
            self.state_changes += 1

    def begin_rebuild(self) -> None:
        """Transition FAILED -> REBUILDING (spare reconstruction started).

        The drive stays unreadable (``is_failed`` remains True) until the
        rebuild completes and :meth:`repair` runs.
        """
        if self.state is not DiskState.FAILED:
            raise FaultStateError(
                f"disk {self.disk_id} is {self.state.value}, not failed; "
                "nothing to rebuild"
            )
        self.state = DiskState.REBUILDING
        self.state_changes += 1

    def inject_media_error(self, position: int,
                           transient: bool = False) -> None:
        """Plant a media error at one track position.

        ``transient=True`` models a recoverable glitch (vibration, a
        retryable ECC miss): the first read attempt fails and clears it.
        ``transient=False`` is a latent sector error: reads keep failing
        until the position is scrubbed, rewritten, or the drive repaired.
        """
        self._check_position(position)
        self._media_errors[position] = transient
        self.media_errors_injected += 1
        self.state_changes += 1

    def scrub(self, position: int) -> bool:
        """Background-scrub one position; True if an error was repaired."""
        if self._media_errors.pop(position, None) is None:
            return False
        self.media_errors_cleared += 1
        self.state_changes += 1
        return True

    def media_error_positions(self) -> list[int]:
        """Positions currently carrying a media error, ascending."""
        return sorted(self._media_errors)

    @property
    def has_media_errors(self) -> bool:
        """True while any position carries a media error."""
        return bool(self._media_errors)

    def effective_slots(self, base_slots: int) -> int:
        """Per-cycle read slots after the fail-slow throttle.

        A degraded drive still serves at least one track per cycle —
        a fully stalled drive should be failed, not degraded.
        """
        if self.service_fraction >= 1.0:
            return base_slots
        return max(1, int(base_slots * self.service_fraction))

    def erase(self) -> None:
        """Drop all contents (simulates swapping in a blank spare)."""
        self._tracks.clear()

    def discard(self, position: int) -> None:
        """Drop one track's payload (purging an object from disk)."""
        self._tracks.pop(position, None)

    def positions(self) -> Iterator[int]:
        """Iterate stored track positions (unspecified order)."""
        return iter(self._tracks)


class DiskArray:
    """All the drives of one multimedia server."""

    __slots__ = ("spec", "store_payloads", "disks")

    def __init__(self, count: int, spec: DiskSpec,
                 store_payloads: bool = True) -> None:
        if count <= 0:
            raise ValueError(f"disk count must be positive, got {count}")
        self.spec = spec
        self.store_payloads = store_payloads
        self.disks = [Disk(disk_id, spec, store_payloads=store_payloads)
                      for disk_id in range(count)]

    def __len__(self) -> int:
        return len(self.disks)

    def __getitem__(self, disk_id: int) -> Disk:
        if not 0 <= disk_id < len(self.disks):
            raise LayoutError(f"no such disk: {disk_id}")
        return self.disks[disk_id]

    def __iter__(self) -> Iterator[Disk]:
        return iter(self.disks)

    @property
    def failed_ids(self) -> list[int]:
        """Ids of currently failed drives, ascending."""
        return [d.disk_id for d in self.disks if d.is_failed]

    @property
    def degraded_ids(self) -> list[int]:
        """Ids of drives currently in fail-slow mode, ascending."""
        return [d.disk_id for d in self.disks
                if d.state is DiskState.DEGRADED]

    @property
    def media_error_count(self) -> int:
        """Outstanding media errors across all drives."""
        return sum(len(d._media_errors) for d in self.disks)

    @property
    def operational_count(self) -> int:
        """Number of drives currently up."""
        return sum(1 for d in self.disks if not d.is_failed)

    @property
    def state_epoch(self) -> int:
        """Total failure/repair transitions across all drives.

        Monotonic; any change means some disk's operational state flipped
        since the epoch was last sampled.  Schedulers key their cycle-plan
        caches on this (plus the layout's placement epoch).
        """
        return sum(d.state_changes for d in self.disks)

    def fail(self, disk_id: int) -> Disk:
        """Fail one drive and return it."""
        disk = self[disk_id]
        disk.fail()
        return disk

    def repair(self, disk_id: int) -> Disk:
        """Repair one drive and return it."""
        disk = self[disk_id]
        disk.repair()
        return disk

    def degrade(self, disk_id: int, service_fraction: float) -> Disk:
        """Put one drive into fail-slow mode and return it."""
        disk = self[disk_id]
        disk.degrade(service_fraction)
        return disk

    def restore(self, disk_id: int) -> Disk:
        """Return one fail-slow drive to full speed and return it."""
        disk = self[disk_id]
        disk.restore()
        return disk

    def fail_many(self, disk_ids: Iterable[int]) -> None:
        """Fail several drives at once."""
        for disk_id in disk_ids:
            self.fail(disk_id)

    def total_capacity_mb(self) -> float:
        """Aggregate raw capacity of the array in MB."""
        return len(self.disks) * self.spec.capacity_mb

    def first_failed(self) -> Optional[Disk]:
        """The lowest-id failed drive, or None."""
        for disk in self.disks:
            if disk.is_failed:
                return disk
        return None
