"""Catalog partitioner: balance, determinism, hot-title replication."""

from __future__ import annotations

import pytest

from repro.cluster import partition_catalog
from repro.media.catalog import Catalog
from repro.media.objects import MediaObject


def catalog(tracks: list[int], theta: float = 1.0) -> Catalog:
    built = Catalog(MediaObject(name=f"m{i}", bandwidth_mb_s=1.5,
                                num_tracks=count)
                    for i, count in enumerate(tracks))
    built.set_zipf_popularity(theta)
    return built


def test_every_object_gets_exactly_one_primary() -> None:
    placement = partition_catalog(catalog([10] * 8), shards=3)
    assert placement.shards == 3
    assert sorted(placement.copies) == [f"m{i}" for i in range(8)]
    for holders in placement.copies.values():
        assert len(holders) == 1
        assert 0 <= holders[0] < 3
    assert placement.replicated() == ()


def test_greedy_balances_track_load() -> None:
    placement = partition_catalog(catalog([100, 10, 10, 10, 10, 60]),
                                  shards=2)
    loads = [0, 0]
    for name, holders in placement.copies.items():
        loads[holders[0]] += 100 if name == "m0" else \
            (60 if name == "m5" else 10)
    # 200 tracks total; greedy keeps the split within one object.
    assert abs(loads[0] - loads[1]) <= 60
    # The 100-track object seeds shard 0 (empty-load tie -> lowest id).
    assert placement.holders("m0") == (0,)


def test_placement_is_deterministic() -> None:
    first = partition_catalog(catalog([30, 20, 10, 40]), shards=2,
                              replicate_top_k=2, seed=11)
    again = partition_catalog(catalog([30, 20, 10, 40]), shards=2,
                              replicate_top_k=2, seed=11)
    assert first == again
    other_seed = partition_catalog(catalog([30, 20, 10, 40]), shards=2,
                                   replicate_top_k=2, seed=12)
    assert other_seed.shards == first.shards  # layout may differ, shape not


def test_replication_copies_the_hottest_titles() -> None:
    # Zipf theta=1: m0 is the most popular, then m1, ...
    placement = partition_catalog(catalog([10] * 6), shards=3,
                                  replicate_top_k=2, seed=5)
    replicated = placement.replicated()
    assert set(replicated) == {"m0", "m1"}
    for name in replicated:
        holders = placement.holders(name)
        assert len(holders) == 2
        assert len(set(holders)) == 2  # distinct shards
    # Cold titles stay single-copy.
    assert len(placement.holders("m5")) == 1


def test_replicas_saturate_at_a_copy_per_shard() -> None:
    placement = partition_catalog(catalog([10] * 4), shards=3,
                                  replicate_top_k=1, seed=0, replicas=99)
    assert sorted(placement.holders("m0")) == [0, 1, 2]


def test_single_shard_ignores_replication() -> None:
    placement = partition_catalog(catalog([10, 20]), shards=1,
                                  replicate_top_k=2)
    assert placement.replicated() == ()
    assert placement.names == (("m0", "m1"),)


def test_names_follow_catalog_insertion_order() -> None:
    placement = partition_catalog(catalog([10] * 6), shards=2)
    for held in placement.names:
        indices = [int(name[1:]) for name in held]
        assert indices == sorted(indices)


def test_objects_for_resolves_against_the_catalog() -> None:
    source = catalog([10, 20, 30])
    placement = partition_catalog(source, shards=2)
    for shard in range(2):
        objects = placement.objects_for(shard, source)
        assert tuple(obj.name for obj in objects) == placement.names[shard]


def test_validation() -> None:
    source = catalog([10, 20])
    with pytest.raises(ValueError, match="shards"):
        partition_catalog(source, shards=0)
    with pytest.raises(ValueError, match="replicate_top_k"):
        partition_catalog(source, shards=2, replicate_top_k=-1)
    with pytest.raises(ValueError, match="replicas"):
        partition_catalog(source, shards=2, replicas=0)
    with pytest.raises(ValueError, match="cannot populate"):
        partition_catalog(source, shards=3)
