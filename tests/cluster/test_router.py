"""Cluster router: least-loaded-copy dispatch and barrier rebasing."""

from __future__ import annotations

import pytest

from repro.cluster import ClusterRouter, ShardPlacement
from repro.media.catalog import Catalog
from repro.media.objects import MediaObject


def fixture(tracks: dict[str, int],
            copies: dict[str, tuple[int, ...]],
            shards: int = 2) -> tuple[ShardPlacement, Catalog]:
    catalog = Catalog(MediaObject(name=name, bandwidth_mb_s=1.5,
                                  num_tracks=count)
                      for name, count in tracks.items())
    names: list[list[str]] = [[] for _ in range(shards)]
    for name in catalog.names():
        for shard in copies[name]:
            names[shard].append(name)
    placement = ShardPlacement(
        shards=shards, copies=dict(copies),
        names=tuple(tuple(held) for held in names))
    return placement, catalog


def two_copy_router() -> ClusterRouter:
    placement, catalog = fixture(
        {"hot": 4, "a": 4, "b": 4},
        {"hot": (0, 1), "a": (0,), "b": (1,)})
    return ClusterRouter(placement, catalog)


def test_single_copy_objects_go_to_their_holder() -> None:
    router = two_copy_router()
    assert router.route(0, "a") == 0
    assert router.route(0, "b") == 1
    assert router.routed == [1, 1]


def test_unknown_object_raises() -> None:
    router = two_copy_router()
    with pytest.raises(KeyError):
        router.route(0, "missing")


def test_replicated_object_goes_to_most_headroom() -> None:
    router = two_copy_router()
    router.observe(0, active=[0, 0], limits=[10, 10])
    # Load shard 0 with three singles; the replica then prefers shard 1.
    for _ in range(3):
        router.route(0, "a")
    assert router.route(0, "hot") == 1


def test_headroom_tie_breaks_to_lowest_shard() -> None:
    router = two_copy_router()
    router.observe(0, active=[0, 0], limits=[10, 10])
    assert router.route(0, "hot") == 0


def test_modelled_load_drains_at_stream_end() -> None:
    router = two_copy_router()
    router.observe(0, active=[0, 0], limits=[10, 10])
    router.route(0, "a")  # occupies shard 0 through cycle 3
    # While "a" plays, the replica steers to shard 1 ...
    assert router.route(1, "hot") == 1
    # ... after it ends (cycle 4), both shards carry one stream each and
    # the tie goes back to shard 0.
    assert router.route(4, "hot") == 0


def test_observe_rebases_on_actual_active_counts() -> None:
    router = two_copy_router()
    router.observe(0, active=[0, 0], limits=[10, 10])
    for _ in range(3):
        router.route(0, "a")  # model: shard 0 holds 3 streams
    # The shard actually rejected two of them (active=1): the barrier
    # bias makes shard 0 the emptier copy again.
    router.observe(1, active=[1, 2], limits=[10, 10])
    assert router.route(1, "hot") == 0


def test_observe_applies_degraded_limits() -> None:
    router = two_copy_router()
    # Shard 0 lost capacity (fault-aware limit 1) while shard 1 kept 10:
    # even though both are idle, headroom steers the replica to shard 1.
    router.observe(0, active=[0, 0], limits=[1, 10])
    assert router.route(0, "hot") == 1


def test_route_window_groups_batches_by_shard_and_cycle() -> None:
    router = two_copy_router()
    router.observe(0, active=[0, 0], limits=[10, 10])
    batches = router.route_window(
        [(0, "a"), (0, "hot"), (1, "b"), (2, "a")])
    assert batches[0] == {0: ["a"], 2: ["a"]}
    # "hot" routed to shard 1: shard 0 already booked "a" that cycle.
    assert batches[1] == {0: ["hot"], 1: ["b"]}
    assert router.routed == [2, 2]


def test_observe_validates_feedback_shape() -> None:
    router = two_copy_router()
    with pytest.raises(ValueError, match="expected feedback"):
        router.observe(0, active=[0], limits=[10, 10])
    with pytest.raises(ValueError, match="expected feedback"):
        router.observe(0, active=[0, 0], limits=[10])
