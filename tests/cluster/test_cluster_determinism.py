"""The cluster determinism contract: workers=1 == workers=4, bit for bit.

The acceptance test for the scale-out tentpole — every scheme runs the
same 4-shard cluster spec serially and through a four-worker session
pool, and the :meth:`ClusterReport.digest` fingerprints (which fold
every admit/reject decision, shard metric, and per-disk read counter)
must match exactly.  One parametrisation scripts a mid-trace disk
failure (with repair) on shard 1, so the contract is checked through
degraded-mode routing too, not just the quiescent path.
"""

from __future__ import annotations

import pytest

from repro.cluster import ClusterFault, ClusterSpec, run_cluster
from repro.schemes import ALL_IMPLEMENTED_SCHEMES, Scheme

#: One mid-trace failure on shard 1, repaired before the run ends: the
#: faulted shard sheds capacity, the router steers replicas away, and
#: the repair restores the limit — all of it must replay identically.
SHARD1_FAULT = (ClusterFault(shard=1, cycle=5, disk_id=3, mid_cycle=True,
                             repair_cycle=10),)


def spec(scheme: Scheme,
         faults: tuple[ClusterFault, ...] = ()) -> ClusterSpec:
    return ClusterSpec(
        scheme=scheme,
        shards=4,
        # 20 divides by the SR/SG/PD group size (5) and the IB data
        # stripe width (4), so one spec shape serves every scheme.
        disks_per_shard=20,
        parity_group_size=5,
        objects=8,
        tracks_per_object=30,
        slots_per_disk=8,
        admission_limit=10,
        cycles=14,
        window=7,
        arrivals_per_cycle=5.0,
        replicate_top_k=2,
        seed=29,
        fast_forward=True,
        faults=faults,
    )


def assert_bit_identical(cluster_spec: ClusterSpec) -> None:
    serial = run_cluster(cluster_spec, workers=1)
    pooled = run_cluster(cluster_spec, workers=4)
    assert serial.digest() == pooled.digest()
    # The digest covers these, but asserting them directly localises a
    # regression to the field that moved.
    assert serial.admitted == pooled.admitted
    assert serial.rejected == pooled.rejected
    assert serial.per_shard == pooled.per_shard
    assert serial.report.total_delivered == pooled.report.total_delivered
    assert serial.report.total_hiccups == pooled.report.total_hiccups
    # Some work actually happened on several shards.
    assert serial.admitted > 0
    assert sum(1 for s in serial.per_shard if s.admitted > 0) >= 2


@pytest.mark.parametrize("scheme", ALL_IMPLEMENTED_SCHEMES,
                         ids=lambda s: s.value)
def test_workers_do_not_change_the_cluster(scheme: Scheme) -> None:
    assert_bit_identical(spec(scheme))


def test_mid_trace_disk_failure_replays_identically() -> None:
    faulted_spec = spec(Scheme.STREAMING_RAID, faults=SHARD1_FAULT)
    faulted = run_cluster(faulted_spec, workers=1)
    quiet = run_cluster(spec(Scheme.STREAMING_RAID), workers=1)
    # The fault actually changed the run ...
    assert faulted.digest() != quiet.digest()
    # ... and still replays bit-identically under a worker pool.
    assert_bit_identical(faulted_spec)


def test_parity_declustered_fault_replays_identically() -> None:
    # PD rides its distributed-rebuild path through the same contract.
    assert_bit_identical(spec(Scheme.PARITY_DECLUSTERED,
                              faults=SHARD1_FAULT))
